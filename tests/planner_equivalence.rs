//! Planner-equivalence differential sweep (tier-1).
//!
//! The cost-based planner must be invisible in results: for every
//! QA-generated query, planned evaluation (store pipeline and OBDA
//! virtual workflow with `EvalOptions::planner(true)`) must return the
//! same canonical multiset as the written-order engines and the
//! reference oracle. Three seeds × 2000 cases stream through
//! [`Harness::run_text_planned`], which runs all four standard engines
//! plus the two planner-on configurations per case.
//!
//! Any disagreement is shrunk to a minimal (query, dataset) pair and
//! persisted under `qa/failing/` — same artifact discipline as the
//! chaos harnesses — so a red run leaves a replayable witness behind.

use applab_qa::corpus::CorpusCase;
use applab_qa::gen::QueryIr;
use applab_qa::{case_seed, generate, shrink, DatasetSpec, Harness, Verdict};
use std::path::PathBuf;

const SEEDS: [u64; 3] = [1, 2, 3];
const CASES_PER_SEED: u64 = 2000;

/// Shrink a disagreeing case against the planner-aware verdict and write
/// it out as a replayable corpus artifact; returns the path.
fn persist_failure(run_seed: u64, index: u64, ir: &QueryIr, spec: &DatasetSpec) -> PathBuf {
    let mut cache: Option<(DatasetSpec, Harness)> = None;
    let mut fails = |candidate: &QueryIr, candidate_spec: &DatasetSpec| -> bool {
        let rebuild = cache.as_ref().is_none_or(|(s, _)| s != candidate_spec);
        if rebuild {
            match Harness::new(candidate_spec.clone()) {
                Ok(h) => cache = Some((candidate_spec.clone(), h)),
                Err(_) => return false,
            }
        }
        let (_, h) = cache.as_ref().expect("cache populated above");
        h.run_text_planned(&candidate.render()).is_disagreement()
    };
    let shrunk = shrink(ir, spec, 400, &mut fails);
    let case = CorpusCase {
        name: format!("planner_{run_seed}_{index}"),
        seed: case_seed(run_seed, index),
        dataset: shrunk.spec.clone(),
        query: shrunk.ir.render(),
        note: format!(
            "found by planner_equivalence seed {run_seed} (case {index}): \
             planner-on diverged from the written-order engines"
        ),
    };
    let dir = PathBuf::from("qa/failing");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let path = dir.join(format!("{}.ron", case.name));
    std::fs::write(&path, case.to_ron()).expect("write failure artifact");
    path
}

#[test]
fn planned_and_unplanned_engines_agree_on_generated_corpus() {
    let mut disagreements = Vec::new();
    for seed in SEEDS {
        let spec = DatasetSpec::small(seed);
        let harness = Harness::new(spec.clone()).expect("dataset builds");
        for i in 0..CASES_PER_SEED {
            let ir = generate(case_seed(seed, i), &spec);
            if let Verdict::Disagree(reason) = harness.run_text_planned(&ir.render()) {
                let path = persist_failure(seed, i, &ir, &spec);
                disagreements.push(format!(
                    "seed {seed} case {i} (case_seed {}): {reason}\n  query: {}\n  artifact: {}",
                    case_seed(seed, i),
                    ir.render(),
                    path.display()
                ));
            }
        }
    }
    assert!(
        disagreements.is_empty(),
        "{} planner disagreement(s):\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
}
