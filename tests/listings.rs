//! L1/L2/L3: the paper's listings, near verbatim.

use copernicus_app_lab::core::{MaterializedWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{grids, ParisFixture};
use copernicus_app_lab::geotriples::parse_mappings;
use copernicus_app_lab::obda::sql::{FromClause, SourceQuery};
use copernicus_app_lab::rdf::Graph;
use std::time::Duration;

/// Listing 1: "retrieves the LAI values of the area occupied by the Bois
/// de Boulogne park in Paris".
#[test]
fn listing1_bois_de_boulogne() {
    let fixture = ParisFixture::generate(5, 14, 8);
    let mut wf = MaterializedWorkflow::new();
    wf.load_table(
        &fixture.world.osm_table(),
        copernicus_app_lab::data::mappings::OSM_MAPPING,
    )
    .unwrap();
    // Observations: two inside the park, one outside.
    let mut g = Graph::new();
    for (id, lai, wkt) in [
        ("in1", 4.1, "POINT (2.23 48.86)"),
        ("in2", 3.7, "POINT (2.25 48.87)"),
        ("out", 0.6, "POINT (2.45 48.75)"),
    ] {
        copernicus_app_lab::store::store::lai_observation(&mut g, id, lai, 0, wkt);
    }
    wf.load_graph(&g);

    let r = wf
        .query(
            r#"SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne" .
  ?areaB lai:hasLai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA, ?geoB))
}"#,
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    let mut values: Vec<f64> = (0..r.len())
        .map(|i| {
            r.value(i, "lai")
                .unwrap()
                .as_literal()
                .unwrap()
                .as_f64()
                .unwrap()
        })
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(values, vec![3.7, 4.1]);
}

/// Listing 2: the mapping parses (with the paper's URL form, cache window
/// of 10 minutes, and `WHERE LAI > 0` noise filter).
#[test]
fn listing2_mapping_parses_verbatim() {
    let doc = r#"
mappingId opendap_mapping
target lai:{id} rdf:type lai:Observation .
       lai:{id} lai:lai {LAI}^^xsd:float ;
       time:hasTime {ts}^^xsd:dateTime .
       lai:{id} geo:hasGeometry _:g .
       _:g geo:asWKT {loc}^^geo:wktLiteral .
source SELECT id, LAI , ts, loc FROM (ordered opendap url:https://analytics.ramani.ujuizi.com/thredds/dodsC/Copernicus-Land-timeseries-global-LAI%29/readdods/LAI/, 10) WHERE LAI > 0
"#;
    let ms = parse_mappings(doc).unwrap();
    assert_eq!(ms.len(), 1);
    assert_eq!(ms[0].id, "opendap_mapping");
    assert_eq!(ms[0].target.len(), 5);

    let sq = SourceQuery::parse(&ms[0].source).unwrap();
    match &sq.from {
        FromClause::Opendap {
            dataset,
            variable,
            window_secs,
        } => {
            assert_eq!(dataset, "Copernicus-Land-timeseries-global-LAI%29");
            assert_eq!(variable, "LAI");
            assert_eq!(*window_secs, 600); // w = 10 minutes
        }
        other => panic!("expected opendap source, got {other:?}"),
    }
    assert_eq!(sq.predicates.len(), 1); // LAI > 0
}

/// Listing 3: "retrieve the LAI values and the geometries of the
/// corresponding areas", over the virtual graph of Listing 2's mapping.
#[test]
fn listing3_virtual_query() {
    let fixture = ParisFixture::generate(6, 10, 8);
    let mut lai = grids::lai_dataset(
        &fixture.world,
        &grids::GridSpec {
            resolution: 10,
            times: vec![0, 30 * 86_400],
            noise: 0.05,
            seed: 6,
        },
    );
    lai.name = "Copernicus-Land-timeseries-global-LAI".into();

    let mut builder = VirtualWorkflowBuilder::local();
    builder.publish(lai);
    builder.add_opendap(
        "Copernicus-Land-timeseries-global-LAI",
        "LAI",
        Duration::from_secs(600),
    );
    builder
        .add_mappings(&copernicus_app_lab::data::mappings::opendap_lai_mapping(
            "Copernicus-Land-timeseries-global-LAI",
            10,
        ))
        .unwrap();
    let wf = builder.seal().unwrap();

    let r = wf
        .query(
            r#"SELECT DISTINCT ?s ?wkt ?lai
WHERE { ?s lai:hasLai ?lai .
        ?s geo:hasGeometry ?g .
        ?g geo:asWKT ?wkt }"#,
        )
        .unwrap();
    assert!(r.len() > 10);
    // DISTINCT subjects: the id construction ("from the location and the
    // time of observation") must deduplicate.
    let mut subjects: Vec<String> = (0..r.len())
        .map(|i| r.value(i, "s").unwrap().to_string())
        .collect();
    subjects.sort();
    subjects.dedup();
    assert_eq!(subjects.len(), r.len());
}
