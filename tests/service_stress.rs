//! Concurrency stress for `applab-service`: 32 threads firing mixed
//! Geographica queries at one shared service over both backends. Accepted
//! results must be byte-identical to a single-threaded run, and a tiny
//! evaluation budget must yield `CoreError::Timeout` — never truncated
//! results.

use applab_bench::geographica_queries;
use copernicus_app_lab::core::{CoreError, MaterializedWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{mappings, ParisFixture};
use copernicus_app_lab::obs::{QueryLog, QueryLogRecord, SamplingPolicy, VecSink};
use copernicus_app_lab::service::{ApplabService, QueryRequest, ServiceConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Both workflows over the same synthetic Paris tables, behind one service.
fn build_service() -> ApplabService {
    let fixture = ParisFixture::generate(7, 14, 8);
    let tables = [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ];

    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in &tables {
        mat.load_table(table, doc).unwrap();
    }

    let mut builder = VirtualWorkflowBuilder::local();
    for (table, doc) in tables {
        builder.add_table(table);
        builder.add_mappings(doc).unwrap();
    }
    let virt = builder.seal().unwrap();

    ApplabService::new(ServiceConfig {
        max_in_flight: 4,
        // Wide enough that the 32-thread burst queues instead of shedding:
        // this test is about result integrity, not load shedding.
        max_queue: 64,
        queue_timeout: Duration::from_secs(120),
        ..ServiceConfig::default()
    })
    .with_endpoint("store", Arc::new(mat))
    .with_endpoint("obda", Arc::new(virt))
}

#[test]
fn thirty_two_threads_get_byte_identical_results() {
    // The full burst runs with a rate-1.0 query log attached: under
    // contention every served query must still produce exactly one
    // well-formed JSONL line, with nothing dropped.
    let (sink, lines) = VecSink::new();
    let log = Arc::new(QueryLog::new(sink, SamplingPolicy::always(), 4096));
    let service = build_service().with_query_log(Arc::clone(&log));
    let jobs: Vec<(&'static str, &'static str, String)> = ["store", "obda"]
        .into_iter()
        .flat_map(|ep| {
            geographica_queries()
                .into_iter()
                .map(move |(name, sparql)| (ep, name, sparql))
        })
        .collect();

    // Single-threaded reference pass through the same service.
    let mut baseline: HashMap<(&str, &str), String> = HashMap::new();
    for (ep, name, sparql) in &jobs {
        let out = service.query(ep, sparql);
        let results = out
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("baseline {ep}/{name}: {e}"));
        baseline.insert((*ep, *name), results.to_json());
    }

    // 32 threads, each replaying a rotated slice of the mixed job list.
    std::thread::scope(|scope| {
        for t in 0..32 {
            let service = &service;
            let jobs = &jobs;
            let baseline = &baseline;
            scope.spawn(move || {
                for k in 0..4 {
                    let (ep, name, sparql) = &jobs[(t * 5 + k * 7) % jobs.len()];
                    let out = service.query(ep, sparql);
                    let results = out
                        .result
                        .as_ref()
                        .unwrap_or_else(|e| panic!("thread {t} {ep}/{name}: {e}"));
                    assert_eq!(
                        &results.to_json(),
                        &baseline[&(*ep, *name)],
                        "thread {t}: concurrent result for {ep}/{name} drifted"
                    );
                }
            });
        }
    });
    assert_eq!(service.load(), (0, 0), "all permits released");

    // One JSONL line per served query — the baseline pass plus the
    // 32-thread burst — every one of them parseable.
    log.flush();
    let served = jobs.len() + 32 * 4;
    let lines = lines.lock().expect("sink lines");
    assert_eq!(lines.len(), served, "one log line per served query");
    assert_eq!(log.dropped(), 0, "the log must not shed under this load");
    let mut seqs: Vec<u64> = Vec::with_capacity(lines.len());
    for line in lines.iter() {
        let rec = QueryLogRecord::from_json(line).expect("log line parses");
        assert_eq!(rec.code, "ok");
        assert!(
            rec.stats.rows_scanned > 0,
            "accounting survives concurrency"
        );
        seqs.push(rec.seq);
    }
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), served, "sequence numbers are unique");
}

/// An `io::Write` that records chunk sizes and total bytes but keeps
/// nothing, so streaming through it proves the serialization path never
/// needed the document in one allocation.
#[derive(Default)]
struct CountingWriter {
    total: usize,
    chunks: usize,
    max_chunk: usize,
    digest: u64,
}

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.total += buf.len();
        self.chunks += 1;
        self.max_chunk = self.max_chunk.max(buf.len());
        for &b in buf {
            self.digest = self.digest.wrapping_mul(1099511628211) ^ u64::from(b);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(0u64, |h, &b| h.wrapping_mul(1099511628211) ^ u64::from(b))
}

/// The wire path: `QueryOutcome::write_json_results` must emit exactly the
/// `to_json` bytes while flushing in bounded chunks — peak response memory
/// on the service stays one flush window, flat in the result size.
#[test]
fn streamed_json_matches_to_json_in_bounded_chunks() {
    let service = build_service();
    for (ep, (name, sparql)) in ["store", "obda"]
        .into_iter()
        .flat_map(|ep| geographica_queries().into_iter().map(move |q| (ep, q)))
    {
        let out = service.query(ep, &sparql);
        let golden = out
            .results()
            .unwrap_or_else(|| panic!("{ep}/{name} failed: {:?}", out.code()))
            .to_json();
        let mut w = CountingWriter::default();
        assert!(out
            .write_json_results(&mut w)
            .expect("counting writer never errors"));
        assert_eq!(w.total, golden.len(), "{ep}/{name}: byte count drifted");
        assert_eq!(
            w.digest,
            fnv(golden.as_bytes()),
            "{ep}/{name}: bytes drifted"
        );
        assert!(
            w.max_chunk <= 64 * 1024,
            "{ep}/{name}: {} byte chunk — streaming is buffering whole documents",
            w.max_chunk
        );
    }

    // Rejected queries write nothing and report false.
    let out = service.query("nope", "SELECT * WHERE { ?s ?p ?o }");
    let mut w = CountingWriter::default();
    assert!(!out.write_json_results(&mut w).unwrap());
    assert_eq!(w.total, 0);
}

#[test]
fn zero_budget_times_out_on_both_backends() {
    let service = build_service();
    let spatial_join = &geographica_queries()
        .into_iter()
        .find(|(name, _)| name.starts_with("Join"))
        .expect("geographica has a spatial join class")
        .1;
    for ep in ["store", "obda"] {
        let out = service.query_with(
            ep,
            spatial_join,
            &QueryRequest::new().deadline(Duration::ZERO),
        );
        assert_eq!(out.code(), "timeout", "{ep}: {:?}", out.result);
        assert!(
            matches!(out.result, Err(CoreError::Timeout(_))),
            "{ep}: {:?}",
            out.result
        );
    }
}

#[test]
fn tight_budgets_never_yield_truncated_results() {
    let service = build_service();
    let (name, sparql) = geographica_queries().swap_remove(0);
    let full = service
        .query("store", &sparql)
        .result
        .expect("unlimited run succeeds")
        .to_json();

    // Deadlines in the race window between "instant" and the query's real
    // runtime: each attempt must either time out or return the *complete*
    // answer — partial results must never escape.
    for micros in [1u64, 10, 50, 100, 500, 1_000, 5_000] {
        for _ in 0..3 {
            let out = service.query_with(
                "store",
                &sparql,
                &QueryRequest::new().deadline(Duration::from_micros(micros)),
            );
            match out.result {
                Ok(results) => assert_eq!(
                    results.to_json(),
                    full,
                    "{name} @ {micros}µs returned truncated results"
                ),
                Err(CoreError::Timeout(_)) => {}
                Err(other) => panic!("{name} @ {micros}µs: unexpected {other}"),
            }
        }
    }
}
