//! The eleven Maps-API request methods of Section 3.3, end to end.

use copernicus_app_lab::core::{VirtualWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{grids, ParisFixture};
use copernicus_app_lab::geo::{Coord, Envelope};
use copernicus_app_lab::sdl::analytics::CentralTendency;
use copernicus_app_lab::sdl::sdl::{Derivation, DerivedData};

fn workflow() -> VirtualWorkflow {
    let fixture = ParisFixture::generate(21, 12, 10);
    let mut lai = grids::lai_dataset(&fixture.world, &grids::GridSpec::monthly_2017(20, 21));
    lai.name = "lai".into();
    let builder = VirtualWorkflowBuilder::local();
    builder.publish(lai);
    builder.seal().unwrap()
}

const JULY: i64 = 1_500_076_800; // 2017-07-15

#[test]
fn all_request_methods() {
    let wf = workflow();
    let sdl = wf.sdl();
    let at = Coord::new(2.3, 48.85);

    // getMetadata
    let meta = sdl.get_metadata("lai").unwrap();
    assert!(meta.extent.is_some());
    assert_eq!(meta.dds.dataset, "lai");

    // getPoint
    let v = sdl.get_point("lai", "LAI", at, JULY).unwrap();
    assert!(v.is_finite() && v >= 0.0);

    // getArea
    let area = sdl
        .get_area("lai", "LAI", &Envelope::new(2.1, 48.8, 2.5, 48.95), JULY)
        .unwrap();
    assert_eq!(area.ndim(), 2);
    assert!(area.len() > 4);

    // getTimeseriesProfile
    let series = sdl.get_timeseries_profile("lai", "LAI", at).unwrap();
    assert_eq!(series.len(), 12);

    // getTransect
    let transect = sdl
        .get_transect(
            "lai",
            "LAI",
            Coord::new(2.05, 48.75),
            Coord::new(2.55, 48.95),
            JULY,
            10,
        )
        .unwrap();
    assert_eq!(transect.len(), 10);

    // getMap
    let map = sdl
        .get_map(
            "lai",
            "LAI",
            &Envelope::new(2.1, 48.8, 2.5, 48.95),
            JULY,
            16,
            16,
        )
        .unwrap();
    assert_eq!(map.shape(), &[16, 16]);

    // getAnimation
    let frames = sdl
        .get_animation(
            "lai",
            "LAI",
            &Envelope::new(2.1, 48.8, 2.5, 48.95),
            &[0, JULY],
            8,
            8,
        )
        .unwrap();
    assert_eq!(frames.len(), 2);
    // Seasonal signal: July frame greener than January.
    assert!(frames[1].mean() > frames[0].mean());

    // getMapSwipe
    let (left, right) = sdl
        .get_map_swipe(
            ("lai", "LAI"),
            ("lai", "LAI"),
            &Envelope::new(2.1, 48.8, 2.5, 48.95),
            JULY,
            8,
            8,
        )
        .unwrap();
    assert_eq!(left, right);

    // getDerivedData: moving average + seasonal + anomaly + city-average.
    match sdl
        .get_derived_data("lai", "LAI", at, &Derivation::MovingAverage { k: 1 }, JULY)
        .unwrap()
    {
        DerivedData::Series(s) => assert_eq!(s.len(), 12),
        other => panic!("{other:?}"),
    }
    match sdl
        .get_derived_data(
            "lai",
            "LAI",
            at,
            &Derivation::SeasonalMovingAverage {
                k: 1,
                months: vec![6, 7, 8],
            },
            JULY,
        )
        .unwrap()
    {
        DerivedData::Series(s) => assert_eq!(s.len(), 3),
        other => panic!("{other:?}"),
    }
    match sdl
        .get_derived_data(
            "lai",
            "LAI",
            at,
            &Derivation::SpatialAggregate {
                envelope: Envelope::new(2.1, 48.8, 2.5, 48.95),
                how: CentralTendency::Median,
            },
            JULY,
        )
        .unwrap()
    {
        DerivedData::Scalar(v) => assert!(v.is_finite()),
        other => panic!("{other:?}"),
    }

    // getVerticalProfile / getSpectralProfile require level/band dims —
    // this product has neither, and the SDL reports that cleanly.
    assert!(sdl.get_vertical_profile("lai", "LAI", at, JULY).is_err());
    assert!(sdl.get_spectral_profile("lai", "LAI", at, JULY).is_err());
}

#[test]
fn token_protected_access() {
    let fixture = ParisFixture::generate(22, 10, 8);
    let mut lai = grids::lai_dataset(&fixture.world, &grids::GridSpec::monthly_2017(8, 22));
    lai.name = "lai".into();
    let builder = VirtualWorkflowBuilder::local();
    builder.publish(lai);
    let wf = builder.seal().unwrap();
    // Register a token: unauthenticated clients lose access, and accesses
    // are tracked per user ("this will allow the tracking of which users
    // access which datasets").
    wf.server().register_token("secret", "esa-app-camp");
    assert!(wf.sdl().get_metadata("lai").is_err());
    assert!(wf.server().access_log().is_empty());
}
