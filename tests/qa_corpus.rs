//! The pinned QA corpus: every `qa/corpus/*.ron` case replays through all
//! engines (reference, hash-join pipeline sequential + parallel, virtual
//! workflow) forever. Each case is a shrunk witness of a bug the
//! differential harness once found; a regression here means an old bug
//! came back.
//!
//! New cases are added by `exp_qa` (in `applab-bench`): any disagreement
//! it finds is shrunk and written out as a replayable `.ron` artifact —
//! move the artifact into `qa/corpus/` once the underlying bug is fixed.

use applab_qa::{load_dir, CorpusCase, DatasetSpec, Harness, Verdict};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("qa/corpus")
}

#[test]
fn corpus_cases_agree_across_all_engines() {
    let cases = load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        cases.len() >= 3,
        "the corpus must keep at least three shrunk cases, found {}",
        cases.len()
    );
    // Cases sharing a dataset reuse one harness build.
    let mut cache: Option<(DatasetSpec, Harness)> = None;
    for (path, case) in &cases {
        if cache.as_ref().is_none_or(|(s, _)| s != &case.dataset) {
            let h = Harness::new(case.dataset.clone())
                .unwrap_or_else(|e| panic!("{}: dataset builds: {e}", path.display()));
            cache = Some((case.dataset.clone(), h));
        }
        let (_, h) = cache.as_ref().expect("cache populated above");
        // Planner-on engines included: the planner_* pins only bite when
        // the cost-based path replays them, and the older pins get the
        // planned configurations as extra coverage for free.
        let verdict = h.run_text_planned(&case.query);
        assert_eq!(
            verdict,
            Verdict::Agree,
            "{}: regression — this case pins: {}",
            path.display(),
            case.note
        );
    }
}

/// The handwritten batch-edge pins only pin something if the dataset
/// really crosses the harness batch windows: the slice must come back
/// full (the cuts land inside the data, not past its end), and at least
/// one COUNT group must be wider than the widest window (7), so grouped
/// state provably survives batch boundaries.
#[test]
fn batch_boundary_pins_are_non_vacuous() {
    let cases = load_dir(&corpus_dir()).expect("corpus loads");
    let find = |name: &str| {
        cases
            .iter()
            .map(|(_, c)| c)
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("corpus must keep the {name} pin"))
    };

    let straddle = find("limit_offset_straddles_batch_edge");
    let h = Harness::new(straddle.dataset.clone()).expect("dataset builds");
    let sliced = h
        .eval_pipeline_seq(&straddle.query)
        .expect("pinned query evaluates");
    assert_eq!(
        sliced.len(),
        4,
        "OFFSET 5 LIMIT 4 must return a full slice — the dataset shrank below 9 matching rows"
    );

    let groups = find("count_groups_span_batch_edges");
    assert_eq!(
        groups.dataset, straddle.dataset,
        "the two pins share one dataset so the replay builds one harness"
    );
    let counted = h
        .eval_pipeline_seq(&groups.query)
        .expect("pinned query evaluates");
    let applab_qa::Canon::Solutions { variables, rows } = &counted else {
        panic!("grouped COUNT must yield solutions, got {counted:?}");
    };
    // Canonical columns are sorted by name; ?n (the count) sorts first.
    assert_eq!(variables, &["n", "t"]);
    let widest = rows
        .iter()
        .filter_map(|r| r[0].as_deref())
        .filter_map(|c| c.strip_prefix('"')?.split('"').next()?.parse::<f64>().ok())
        .fold(0.0f64, f64::max);
    assert!(
        rows.len() >= 2,
        "grouped COUNT must produce several groups, got {}",
        rows.len()
    );
    assert!(
        widest > 7.0,
        "widest group has {widest} members — no group spans the sequential batch window of 7"
    );
}

#[test]
fn corpus_files_are_well_formed_and_stable() {
    let cases = load_dir(&corpus_dir()).expect("corpus loads");
    for (path, case) in &cases {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        assert_eq!(
            case.name,
            stem,
            "{}: case name must match the file stem",
            path.display()
        );
        assert!(
            !case.note.trim().is_empty(),
            "{}: every corpus case must say what it pins",
            path.display()
        );
        // The on-disk text is exactly what the writer would emit, so
        // regenerating a case never produces a spurious diff.
        let text = std::fs::read_to_string(path).expect("corpus file reads");
        assert_eq!(
            case.to_ron(),
            text,
            "{}: file must be the to_ron fixed point",
            path.display()
        );
        // And the round trip is lossless.
        assert_eq!(&CorpusCase::from_ron(&text).unwrap(), case);
    }
}
