//! B8: the metadata tooling of Section 3.1 over synthetic CSP holdings.
//!
//! Exercises the DRS validator, the ACDD completeness checker with its
//! recommendation / post-hoc augmentation loop, the NcML service, and the
//! VITO reprocessing-version behaviour.

use copernicus_app_lab::array::acdd;
use copernicus_app_lab::array::ncml::{aggregate_time, latest_versions, Granule};
use copernicus_app_lab::dap::drs;
use copernicus_app_lab::dap::server::grid_dataset;
use copernicus_app_lab::dap::DapServer;
use copernicus_app_lab::data::{grids, ParisFixture};

#[test]
fn drs_validator_flags_and_passes() {
    let fixture = ParisFixture::generate(9, 10, 8);
    let good = grids::lai_dataset(&fixture.world, &grids::GridSpec::monthly_2017(8, 9));
    // The generator emits DRS-required attributes.
    assert!(drs::validate("cgls.land.lai.300m.v1.2017-01-15", &good).is_empty());

    // A defective CSP holding: bad id facets and missing attributes.
    let mut bad = grid_dataset("mystery", &[0.0], &[48.0], &[2.0], |_, _, _| 1.0);
    bad.attributes.clear();
    let violations = drs::validate("MYSTERY.unknown", &bad);
    assert!(!violations.is_empty());
    let messages: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(messages.iter().any(|m| m.contains("facets")));
}

#[test]
fn acdd_recommendation_and_augmentation_loop() {
    // A CSP publishes a dataset with thin metadata...
    let mut ds = grid_dataset("thin", &[0.0], &[48.0], &[2.0], |_, _, _| 1.0);
    ds.attributes.remove("title");
    let before = acdd::check_completeness(&ds);
    assert!(!before.is_complete());
    assert!(!before.recommendations().is_empty());

    // ...the CMS augments post-hoc with NcML-blended defaults...
    let added = acdd::augment(
        &mut ds,
        &[
            ("title", "Synthetic LAI"),
            ("summary", "Synthetic leaf area index over Paris"),
            ("keywords", "lai, vegetation, copernicus"),
            ("license", "CC-BY-4.0"),
            ("creator_name", "VITO (synthetic)"),
        ],
    );
    assert!(added >= 4);
    let after = acdd::check_completeness(&ds);
    assert!(after.score > before.score);
}

#[test]
fn ncml_service_joins_das_and_dds() {
    let server = DapServer::new();
    let fixture = ParisFixture::generate(10, 10, 8);
    let mut lai = grids::lai_dataset(&fixture.world, &grids::GridSpec::monthly_2017(8, 10));
    lai.name = "lai".into();
    server.publish(lai);
    let doc = copernicus_app_lab::dap::ncml_service::render(&server, "lai", None).unwrap();
    // One XML document with structure (DDS) and attributes (DAS).
    assert!(doc.contains("<dimension name=\"time\""));
    assert!(doc.contains("<variable name=\"LAI\""));
    assert!(doc.contains("attribute name=\"units\""));
    assert!(doc.contains("serverFunctions"));
}

#[test]
fn reprocessed_versions_expose_only_the_latest() {
    // "the production centre reprocesses data at several days when more
    // accurate meteorological data becomes available" — build granules
    // with duplicate dates and differing versions.
    let fixture = ParisFixture::generate(11, 8, 8);
    let make = |day: i64, version: u32, seed: u64| {
        let ds = grids::lai_dataset(
            &fixture.world,
            &grids::GridSpec {
                resolution: 6,
                times: vec![day * 86_400],
                noise: 0.01,
                seed,
            },
        );
        Granule {
            date: day * 86_400,
            version,
            dataset: ds,
        }
    };
    let granules = vec![
        make(0, 0, 1),
        make(0, 1, 2), // reprocessed day 0
        make(10, 0, 3),
        make(20, 0, 4),
        make(20, 2, 5), // reprocessed twice
        make(20, 1, 6),
    ];
    let latest = latest_versions(granules);
    assert_eq!(latest.len(), 3);
    assert_eq!(
        latest.iter().map(|g| g.version).collect::<Vec<_>>(),
        vec![1, 0, 2]
    );
    let agg = aggregate_time(&latest).unwrap();
    assert_eq!(agg.dim_len("time"), Some(3));
    // The aggregation is itself servable over DAP.
    let server = DapServer::new();
    server.publish(agg);
    assert!(server.dds("lai_300m_aggregated", None).is_ok());
}
