//! End-to-end checks for the production observability plane: per-query
//! resource accounting surfaced on `QueryOutcome::stats` for both
//! backends, the structured query log (JSONL round-trip, reconciliation
//! against `applab_service_outcomes_total`, deterministic sampling),
//! and the flight recorder attached to a live service.

use applab_bench::geographica_queries;
use copernicus_app_lab::core::{MaterializedWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::dap::clock::ManualClock;
use copernicus_app_lab::dap::transport::Local;
use copernicus_app_lab::data::{grids, mappings, ParisFixture};
use copernicus_app_lab::obs::querylog::{QueryLogRecord, SamplingPolicy};
use copernicus_app_lab::obs::{FlightRecorder, QueryLog, VecSink};
use copernicus_app_lab::service::{ApplabService, ServiceConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const LAI_QUERY: &str = "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }";

/// Store + virtual endpoints over one service; the virtual side includes
/// the OPeNDAP-backed LAI product so queries exercise the remote DAP
/// path. Endpoint names are parameterized so each test owns distinct
/// `applab_service_outcomes_total` label series in the global registry.
fn build_service(store_name: &str, obda_name: &str) -> ApplabService {
    let fixture = ParisFixture::generate(5, 12, 8);
    let tables = [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ];

    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in &tables {
        mat.load_table(table, doc).unwrap();
    }

    let mut lai = grids::lai_dataset(
        &fixture.world,
        &grids::GridSpec {
            resolution: 8,
            times: vec![0, 86_400 * 30],
            noise: 0.0,
            seed: 3,
        },
    );
    lai.name = "lai_300m".into();
    let mut b = VirtualWorkflowBuilder::with_transport_and_clock(
        Arc::new(Local::new()),
        ManualClock::new(),
    );
    b.publish(lai);
    for (table, doc) in tables {
        b.add_table(table);
        b.add_mappings(doc).unwrap();
    }
    b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
    b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
        .unwrap();
    let virt = b.seal().unwrap();

    ApplabService::new(ServiceConfig::default())
        .with_endpoint(store_name, Arc::new(mat))
        .with_endpoint(obda_name, Arc::new(virt))
}

/// The acceptance check for the accounting tentpole: stats populated on
/// both backends, rows-scanned nonzero on both, DAP bytes nonzero on
/// the remote path — plus every emitted JSONL line parses back and the
/// per-(endpoint, code) line counts reconcile with the
/// `applab_service_outcomes_total` counters.
#[test]
fn stats_and_query_log_cover_both_backends() {
    let (sink, lines) = VecSink::new();
    let log = Arc::new(QueryLog::new(sink, SamplingPolicy::always(), 4096));
    let recorder = Arc::new(FlightRecorder::new(16));
    let svc = build_service("store_ql", "obda_ql")
        .with_query_log(Arc::clone(&log))
        .with_flight_recorder(Arc::clone(&recorder));

    let mut served = 0u64;
    for (name, sparql) in geographica_queries() {
        let out = svc.query("store_ql", &sparql);
        assert_eq!(out.code(), "ok", "{name}");
        assert!(
            out.stats.rows_scanned > 0,
            "{name}: store-backed query scanned no rows"
        );
        served += 1;
    }
    let out = svc.query("obda_ql", LAI_QUERY);
    assert_eq!(out.code(), "ok");
    assert!(
        out.stats.rows_scanned > 0,
        "virtual backend scanned no rows"
    );
    assert!(
        out.stats.dap_bytes > 0 && out.stats.dap_round_trips > 0,
        "LAI query must fetch over DAP during evaluation: {:?}",
        out.stats
    );
    assert!(out.stats.source_queries > 0, "OBDA source queries counted");
    served += 1;
    // A failing query is always logged (never sampled out) and carries
    // its typed code.
    let bad = svc.query("store_ql", "SELECT WHERE this is not sparql");
    assert_eq!(bad.code(), "parse");
    served += 1;

    log.flush();
    let lines = lines.lock().expect("lines");
    assert_eq!(lines.len() as u64, served, "rate 1.0 logs every outcome");
    assert_eq!(log.dropped(), 0);

    // Every line parses, round-trips, and reconciles with the outcome
    // counters for its (endpoint, code) series.
    let mut by_label: HashMap<(String, String), u64> = HashMap::new();
    for line in lines.iter() {
        let rec = QueryLogRecord::from_json(line)
            .unwrap_or_else(|e| panic!("unparseable query-log line ({e}): {line}"));
        assert_eq!(
            QueryLogRecord::from_json(&rec.to_json()).expect("re-parse"),
            rec,
            "record did not round-trip"
        );
        assert!(!rec.query.is_empty());
        *by_label
            .entry((rec.endpoint.clone(), rec.code.clone()))
            .or_default() += 1;
    }
    for ((endpoint, code), n) in &by_label {
        let counted = copernicus_app_lab::obs::global()
            .counter_with(
                "applab_service_outcomes_total",
                &[("endpoint", endpoint), ("code", code)],
            )
            .get();
        assert_eq!(
            counted, *n,
            "outcomes counter for ({endpoint}, {code}) disagrees with the log"
        );
    }

    // The flight recorder kept the most recent records, unsampled.
    let tape = recorder.dump();
    assert_eq!(tape.len(), 16.min(served as usize));
    assert_eq!(tape.last().expect("nonempty").code, "parse");
    assert_eq!(recorder.recorded(), served);
}

/// EXPLAIN carries the same accounting on both facades.
#[test]
fn explain_surfaces_query_stats() {
    let fixture = ParisFixture::generate(5, 12, 8);
    let mut mat = MaterializedWorkflow::new();
    mat.load_table(&fixture.world.osm_table(), mappings::OSM_MAPPING)
        .unwrap();
    let explained = mat
        .query_explained("SELECT ?s ?wkt WHERE { ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }")
        .unwrap();
    assert!(explained.stats.rows_scanned > 0);
    assert!(explained.report().contains("rows_scanned="));
    assert!(explained.to_json().contains("\"rows_scanned\""));
}

/// The sampled keep/drop sequence is a pure function of the seed: two
/// identical request sequences against two same-seed logs keep exactly
/// the same records.
#[test]
fn sampling_is_deterministic_across_identical_runs() {
    let kept_seqs = |seed: u64, store: &str, obda: &str| -> Vec<u64> {
        let (sink, lines) = VecSink::new();
        let log = Arc::new(QueryLog::new(
            sink,
            SamplingPolicy {
                ok_sample_rate: 0.5,
                slow_threshold_ns: None,
                seed,
            },
            4096,
        ));
        let svc = build_service(store, obda).with_query_log(Arc::clone(&log));
        for _ in 0..4 {
            for (_, sparql) in geographica_queries() {
                assert!(svc.query(store, &sparql).is_ok());
            }
        }
        log.flush();
        let lines = lines.lock().expect("lines");
        lines
            .iter()
            .map(|l| QueryLogRecord::from_json(l).expect("parse").seq)
            .collect()
    };
    let a = kept_seqs(11, "store_da", "obda_da");
    let b = kept_seqs(11, "store_db", "obda_db");
    assert_eq!(a, b, "same seed must keep the same request positions");
    assert!(!a.is_empty(), "rate 0.5 kept nothing — sampling broken");
    let c = kept_seqs(12, "store_dc", "obda_dc");
    assert_ne!(a, c, "different seeds should diverge");
}
