//! Chaos stress: the mini-Geographica mix through `ApplabService` over a
//! `ChaosTransport` injecting transient errors, timeouts, stalls,
//! truncations, and corruptions into every OPeNDAP delivery.
//!
//! The contract under fault injection is a strict trichotomy — every query
//! returns either
//!
//! 1. results byte-identical to a fault-free run,
//! 2. a degraded-but-well-formed stale answer (flagged on the outcome), or
//! 3. a typed `CoreError` (`Unavailable` / `Source` / `Timeout`),
//!
//! never a panic, a truncated answer, or a silent partial result. Fault
//! injection is fully deterministic per seed: replaying a pass with the
//! same seed yields the same outcome sequence. Set `CHAOS_SEED=<n>` to
//! pin one seed (the CI matrix does), otherwise three defaults run.

use applab_bench::geographica_queries;
use copernicus_app_lab::core::{CoreError, VirtualWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::dap::chaos::{ChaosConfig, ChaosTransport};
use copernicus_app_lab::dap::clock::ManualClock;
use copernicus_app_lab::dap::transport::Local;
use copernicus_app_lab::dap::ResilienceConfig;
use copernicus_app_lab::data::{grids, mappings, ParisFixture};
use copernicus_app_lab::obs::report::SpanNode;
use copernicus_app_lab::obs::FlightRecorder;
use copernicus_app_lab::service::{ApplabService, ServiceConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const LAI_QUERY: &str = "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }";

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![0xA11AB, 42, 7],
    }
}

/// The query mix: the full mini-Geographica suite (local Paris tables)
/// plus the Listing-3 LAI query, whose triples come from the remote,
/// fault-injected OPeNDAP path.
fn jobs() -> Vec<(String, String)> {
    let mut jobs: Vec<(String, String)> = geographica_queries()
        .into_iter()
        .map(|(name, sparql)| (name.to_string(), sparql))
        .collect();
    jobs.push(("LAI_listing3".to_string(), LAI_QUERY.to_string()));
    jobs
}

/// One virtual workflow: Paris fixture tables + the LAI product published
/// on the embedded OPeNDAP server, reached through a `ChaosTransport`.
fn build_workflow(seed: u64, config: ChaosConfig) -> (VirtualWorkflow, Arc<ManualClock>) {
    let fixture = ParisFixture::generate(5, 12, 8);
    let mut lai = grids::lai_dataset(
        &fixture.world,
        &grids::GridSpec {
            resolution: 8,
            times: vec![0, 86_400 * 30],
            noise: 0.0,
            seed: 3,
        },
    );
    lai.name = "lai_300m".into();

    let clock = ManualClock::new();
    let chaos = Arc::new(ChaosTransport::new(Arc::new(Local::new()), config, seed));
    let mut b = VirtualWorkflowBuilder::with_transport_and_clock(chaos, clock.clone());
    b.publish(lai);
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        b.add_table(table);
        b.add_mappings(doc).unwrap();
    }
    b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
    b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
        .unwrap();
    b.set_stale_grace(Duration::from_secs(100_000));
    b.enable_resilience(ResilienceConfig::no_sleep(), seed);
    (b.seal().unwrap(), clock)
}

fn build_service(seed: u64, config: ChaosConfig) -> (ApplabService, Arc<ManualClock>) {
    let (wf, clock) = build_workflow(seed, config);
    let svc = ApplabService::new(ServiceConfig {
        max_in_flight: 4,
        max_queue: 64,
        queue_timeout: Duration::from_secs(120),
        ..ServiceConfig::default()
    })
    .with_endpoint("obda", Arc::new(wf))
    .with_flight_recorder(flight_recorder());
    (svc, clock)
}

/// One shared flight recorder across every service this harness builds,
/// so a failing pass dumps the requests that led up to it regardless of
/// which service instance served them.
fn flight_recorder() -> Arc<FlightRecorder> {
    use std::sync::OnceLock;
    static RECORDER: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    Arc::clone(RECORDER.get_or_init(|| Arc::new(FlightRecorder::new(64))))
}

/// Write the flight-recorder tape next to the QA failure artifacts and
/// return the path for the panic message. Called only on a trichotomy
/// violation, right before the harness panics.
fn dump_flight_tape() -> String {
    let path = PathBuf::from("qa/failing/chaos_stress_flight.jsonl");
    match flight_recorder().dump_to_file(&path) {
        Ok(()) => format!("flight tape: {}", path.display()),
        Err(e) => format!("flight tape dump failed: {e}"),
    }
}

/// Fault-free reference answers, keyed by job name.
fn baseline(jobs: &[(String, String)]) -> HashMap<String, String> {
    let (svc, _clock) = build_service(0, ChaosConfig::uniform(0.0));
    jobs.iter()
        .map(|(name, sparql)| {
            let out = svc.query("obda", sparql);
            let results = out
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("fault-free baseline {name}: {e}"));
            (name.clone(), results.to_json())
        })
        .collect()
}

/// Enforce the trichotomy for one outcome and reduce it to a comparable
/// `(code, degraded)` pair.
fn check(
    name: &str,
    out: &copernicus_app_lab::service::QueryOutcome,
    baseline: &HashMap<String, String>,
) -> (&'static str, bool) {
    match &out.result {
        Ok(results) => {
            // Data never changes under the test, so even a stale answer is
            // byte-identical to the fault-free run — and a fresh one must be.
            if results.to_json() != baseline[name] {
                panic!(
                    "{name}: results drifted under fault injection (degraded={}); {}",
                    out.degraded,
                    dump_flight_tape()
                );
            }
        }
        Err(CoreError::Unavailable { .. } | CoreError::Source(_) | CoreError::Timeout(_)) => {}
        Err(other) => panic!(
            "{name}: untyped failure escaped: {other}; {}",
            dump_flight_tape()
        ),
    }
    (out.code(), out.degraded)
}

/// One sequential pass: two rounds over the job mix with the clock pushed
/// past the cache window in between, so the second round refetches (or
/// stale-serves) instead of riding the warm cache.
fn run_pass(
    seed: u64,
    rate: f64,
    jobs: &[(String, String)],
    baseline: &HashMap<String, String>,
) -> Vec<(&'static str, bool)> {
    let (svc, clock) = build_service(seed, ChaosConfig::uniform(rate));
    let mut outcomes = Vec::new();
    for round in 0..2 {
        if round > 0 {
            clock.advance(Duration::from_secs(601));
        }
        for (name, sparql) in jobs {
            let out = svc.query("obda", sparql);
            outcomes.push(check(name, &out, baseline));
        }
    }
    outcomes
}

#[test]
fn chaos_mix_holds_the_trichotomy_deterministically() {
    let jobs = jobs();
    let baseline = baseline(&jobs);
    for seed in seeds() {
        for rate in [0.10, 0.30] {
            let first = run_pass(seed, rate, &jobs, &baseline);
            let second = run_pass(seed, rate, &jobs, &baseline);
            if first != second {
                panic!(
                    "seed {seed} @ {rate}: fault injection must replay deterministically\n\
                     first:  {first:?}\n second: {second:?}\n {}",
                    dump_flight_tape()
                );
            }
        }
    }
}

#[test]
fn concurrent_chaos_holds_the_trichotomy() {
    let jobs = jobs();
    let baseline = baseline(&jobs);
    let (svc, _clock) = build_service(seeds()[0], ChaosConfig::uniform(0.30));
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let svc = &svc;
            let jobs = &jobs;
            let baseline = &baseline;
            scope.spawn(move || {
                for k in 0..6 {
                    let (name, sparql) = &jobs[(t * 5 + k * 3) % jobs.len()];
                    let out = svc.query("obda", sparql);
                    check(name, &out, baseline);
                }
            });
        }
    });
    assert_eq!(svc.load(), (0, 0), "all permits released");
}

#[test]
fn hard_outage_is_typed_and_observable() {
    // Every delivery is a connection reset: nothing is cached, so the LAI
    // query must come back `unavailable` — and the whole resilience
    // pipeline must be visible in the metrics snapshot.
    let config = ChaosConfig {
        transient_rate: 1.0,
        ..ChaosConfig::default()
    };
    let (svc, _clock) = build_service(seeds()[0], config);
    let out = svc.query("obda", LAI_QUERY);
    assert_eq!(out.code(), "unavailable", "{:?}", out.result);
    assert!(!out.degraded, "failures are not degraded answers");
    assert!(matches!(
        out.result,
        Err(CoreError::Unavailable { ref dataset, retries }) if dataset == "lai_300m" && retries > 0
    ));

    let snapshot = copernicus_app_lab::obs::global().to_prometheus();
    assert!(
        snapshot.contains("applab_dap_retries_total"),
        "retries must be counted"
    );
    assert!(
        snapshot.contains("applab_dap_breaker_state"),
        "breaker state must be gauged"
    );
    assert!(
        snapshot.contains("applab_dap_faults_injected_total"),
        "injected faults must be counted"
    );
    assert!(
        snapshot
            .lines()
            .any(|l| l.starts_with("applab_service_outcomes_total") && l.contains("unavailable")),
        "the service must report the unavailable outcome"
    );
}

#[test]
fn retry_spans_surface_in_explain() {
    fn tree_contains(node: &SpanNode, name: &str) -> bool {
        node.name() == name || node.children.iter().any(|c| tree_contains(c, name))
    }
    // Find a seed where the first LAI fetch fails at least once but the
    // retry succeeds: the EXPLAIN profile must show the dap.retry span
    // nested under the request.
    let config = ChaosConfig {
        transient_rate: 0.45,
        ..ChaosConfig::default()
    };
    for seed in 0..64 {
        let (wf, _clock) = build_workflow(seed, config.clone());
        if let Ok(explain) = wf.query_explained(LAI_QUERY) {
            assert!(!explain.results.is_empty());
            if tree_contains(&explain.profile, "dap.retry") {
                return;
            }
        }
    }
    panic!("no seed in 0..64 produced a retried-then-successful query");
}
