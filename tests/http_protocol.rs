//! SPARQL Protocol conformance for the `applab-http` wire plane.
//!
//! One shared server (store + obda endpoints over the Paris fixture) is
//! exercised through real sockets: the three protocol bindings
//! (URL-encoded GET, form POST, direct `application/sparql-query` POST)
//! must return byte-identical W3C Results JSON, streamed chunked bodies
//! must de-chunk to exactly `to_json()`, and every failure class —
//! malformed query, oversized body, expired deadline, wrong media type,
//! unknown endpoint — must answer with its typed JSON error at the
//! mapped status.

use applab_bench::geographica_queries;
use applab_bench::httpload::{percent_encode, HttpClient};
use copernicus_app_lab::core::{MaterializedWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{mappings, ParisFixture};
use copernicus_app_lab::http::{HttpConfig, HttpServer};
use copernicus_app_lab::service::{ApplabService, ServiceConfig};
use copernicus_app_lab::sparql::JSON_FLUSH_BYTES;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Harness {
    addr: SocketAddr,
    service: Arc<ApplabService>,
    _server: HttpServer,
}

/// One server shared by every test in this file (tests run in parallel;
/// the worker pool serves them concurrently, which is itself coverage).
fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let fixture = ParisFixture::generate(7, 12, 8);
        let tables = [
            (fixture.world.osm_table(), mappings::OSM_MAPPING),
            (fixture.world.gadm_table(), mappings::GADM_MAPPING),
            (fixture.world.corine_table(), mappings::CORINE_MAPPING),
            (
                fixture.world.urban_atlas_table(),
                mappings::URBAN_ATLAS_MAPPING,
            ),
        ];
        let mut mat = MaterializedWorkflow::new();
        for (table, doc) in &tables {
            mat.load_table(table, doc).unwrap();
        }
        let mut builder = VirtualWorkflowBuilder::local();
        for (table, doc) in tables {
            builder.add_table(table);
            builder.add_mappings(doc).unwrap();
        }
        let service = Arc::new(
            ApplabService::new(ServiceConfig {
                max_in_flight: 4,
                max_queue: 64,
                queue_timeout: Duration::from_secs(60),
                ..ServiceConfig::default()
            })
            .with_endpoint("store", Arc::new(mat))
            .with_endpoint("obda", Arc::new(builder.seal().unwrap())),
        );
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service), HttpConfig::default())
            .expect("bind conformance server");
        Harness {
            addr: server.local_addr(),
            service,
            _server: server,
        }
    })
}

fn client() -> HttpClient {
    HttpClient::connect(harness().addr).expect("connect to conformance server")
}

/// Raw bytes in, full response text out (for requests the well-behaved
/// client refuses to produce). The server closes after wire errors, so
/// read-to-EOF is the framing.
fn raw_roundtrip(request: &[u8]) -> String {
    let mut stream = TcpStream::connect(harness().addr).unwrap();
    stream.write_all(request).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn reference_json(endpoint: &str, sparql: &str) -> String {
    harness()
        .service
        .query(endpoint, sparql)
        .result
        .expect("reference query succeeds")
        .to_json()
}

/// A query from the Geographica mix whose result document is the largest
/// (forces chunked streaming) and one whose document stays under one
/// flush window (forces fixed-length framing).
fn large_and_small_queries() -> (String, String) {
    let mut sized: Vec<(usize, String)> = geographica_queries()
        .into_iter()
        .map(|(_, q)| (reference_json("store", &q).len(), q))
        .collect();
    sized.sort_by_key(|(len, _)| *len);
    let (small_len, small) = sized.first().cloned().unwrap();
    let (large_len, large) = sized.last().cloned().unwrap();
    assert!(
        small_len < JSON_FLUSH_BYTES && large_len >= JSON_FLUSH_BYTES,
        "fixture must produce both framings (got {small_len} and {large_len} \
         around the {JSON_FLUSH_BYTES}-byte window)"
    );
    (large, small)
}

// ---------------------------------------------------------------------
// The three protocol bindings agree, byte for byte.
// ---------------------------------------------------------------------

#[test]
fn get_form_post_and_direct_post_are_byte_identical() {
    let sparql = &geographica_queries()[2].1; // Selection_Intersects_Small: quotes, spaces, ^^
    let expected = reference_json("store", sparql);
    let mut c = client();

    let get = c
        .get(&format!("/sparql?query={}", percent_encode(sparql)))
        .unwrap();
    assert_eq!(get.status, 200);
    assert_eq!(
        get.header("content-type"),
        Some("application/sparql-results+json")
    );
    assert_eq!(get.text(), expected);

    let form = c
        .post(
            "/sparql",
            "application/x-www-form-urlencoded",
            format!("query={}", percent_encode(sparql)).as_bytes(),
        )
        .unwrap();
    assert_eq!(form.status, 200);
    assert_eq!(form.text(), expected);

    let direct = c
        .post("/sparql", "application/sparql-query", sparql.as_bytes())
        .unwrap();
    assert_eq!(direct.status, 200);
    assert_eq!(direct.text(), expected);
}

#[test]
fn named_endpoint_path_selects_the_backend() {
    let sparql = &geographica_queries()[6].1; // aggregation: small, deterministic
    let mut c = client();
    for endpoint in ["store", "obda"] {
        let resp = c
            .get(&format!(
                "/sparql/{endpoint}?query={}",
                percent_encode(sparql)
            ))
            .unwrap();
        assert_eq!(resp.status, 200, "endpoint {endpoint}");
        assert_eq!(resp.text(), reference_json(endpoint, sparql));
    }
}

// ---------------------------------------------------------------------
// Framing: chunked streaming vs exact Content-Length.
// ---------------------------------------------------------------------

#[test]
fn large_results_stream_chunked_and_dechunk_to_to_json() {
    let (large, _) = large_and_small_queries();
    let expected = reference_json("store", &large);
    let resp = client()
        .get(&format!("/sparql?query={}", percent_encode(&large)))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.chunked,
        "a {}-byte document must stream chunked",
        expected.len()
    );
    assert!(resp.header("content-length").is_none());
    assert_eq!(resp.text(), expected, "de-chunked body != to_json()");
}

#[test]
fn small_results_get_exact_content_length() {
    let (_, small) = large_and_small_queries();
    let expected = reference_json("store", &small);
    let resp = client()
        .get(&format!("/sparql?query={}", percent_encode(&small)))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.chunked);
    assert_eq!(
        resp.header("content-length"),
        Some(expected.len().to_string().as_str())
    );
    assert_eq!(resp.text(), expected);
}

// ---------------------------------------------------------------------
// Typed failures at mapped statuses.
// ---------------------------------------------------------------------

#[test]
fn malformed_query_is_400_with_parse_code() {
    let resp = client()
        .get(&format!(
            "/sparql?query={}",
            percent_encode("SELECT WHERE {{{ nonsense")
        ))
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let body = resp.text();
    assert!(
        body.contains("\"code\":\"parse\"") && body.contains("\"status\":400"),
        "typed parse error body, got: {body}"
    );
}

#[test]
fn oversized_body_is_413_before_reading() {
    // Content-Length alone triggers the refusal; the body never needs
    // to be sent (the server must not wait for 2 MB that will not come).
    let response = raw_roundtrip(
        b"POST /sparql HTTP/1.1\r\nHost: t\r\n\
          Content-Type: application/sparql-query\r\nContent-Length: 2000000\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 413 "), "got: {response}");
    assert!(response.contains("\"code\":\"body_too_large\""));
}

#[test]
fn expired_deadline_maps_to_retryable_5xx() {
    let sparql = &geographica_queries()[5].1; // the spatial join: slowest in the mix
    let resp = client()
        .get(&format!(
            "/sparql?query={}&timeout=0",
            percent_encode(sparql)
        ))
        .unwrap();
    assert!(
        resp.status == 503 || resp.status == 504,
        "expired deadline must be 503/504, got {}",
        resp.status
    );
    let body = resp.text();
    assert!(
        body.contains("\"code\":\"timeout\"") || body.contains("\"code\":\"cancelled\""),
        "typed deadline error, got: {body}"
    );
}

#[test]
fn bad_timeout_value_is_400() {
    let resp = client()
        .get("/sparql?query=ASK%20%7B%7D&timeout=soon")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"code\":\"bad_request\""));
}

#[test]
fn missing_query_unknown_endpoint_and_wrong_media_type() {
    let mut c = client();

    let missing = c.get("/sparql").unwrap();
    assert_eq!(missing.status, 400);
    assert!(missing.text().contains("\"code\":\"missing_query\""));

    let unknown = c.get("/sparql/nope?query=ASK%20%7B%7D").unwrap();
    assert_eq!(unknown.status, 404);
    assert!(unknown.text().contains("\"code\":\"unknown_endpoint\""));

    let csv = c.post("/sparql", "text/csv", b"query").unwrap();
    assert_eq!(csv.status, 415);
    assert!(csv.text().contains("\"code\":\"unsupported_media_type\""));

    let lost = c.get("/no/such/route").unwrap();
    assert_eq!(lost.status, 404);
    assert!(lost.text().contains("\"code\":\"not_found\""));
}

#[test]
fn wire_level_violations_get_wire_level_statuses() {
    let unsupported = raw_roundtrip(b"GET /healthz HTTP/2.0\r\nHost: t\r\n\r\n");
    assert!(
        unsupported.starts_with("HTTP/1.1 505 "),
        "got: {unsupported}"
    );

    let bad_method = raw_roundtrip(b"BREW /coffee HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(bad_method.starts_with("HTTP/1.1 405 "), "got: {bad_method}");
    assert!(bad_method.contains("Allow: GET, HEAD, POST"));

    let no_length = raw_roundtrip(
        b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\n\r\n",
    );
    assert!(no_length.starts_with("HTTP/1.1 411 "), "got: {no_length}");

    let oversized_head = {
        let mut req = b"GET /sparql?query=ASK HTTP/1.1\r\nHost: t\r\n".to_vec();
        req.extend_from_slice(format!("X-Padding: {}\r\n\r\n", "y".repeat(9000)).as_bytes());
        raw_roundtrip(&req)
    };
    assert!(
        oversized_head.starts_with("HTTP/1.1 431 "),
        "got: {oversized_head}"
    );
}

// ---------------------------------------------------------------------
// Operational surface: keep-alive, /healthz, /metrics.
// ---------------------------------------------------------------------

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let sparql = &geographica_queries()[6].1;
    let expected = reference_json("store", sparql);
    let mut c = client();
    for _ in 0..3 {
        let health = c.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.text(), "ok\n");
        let query = c
            .get(&format!("/sparql?query={}", percent_encode(sparql)))
            .unwrap();
        assert_eq!(query.status, 200);
        assert_eq!(query.text(), expected);
    }
}

#[test]
fn head_healthz_has_no_body() {
    let mut c = client();
    let resp = c.request("HEAD", "/healthz", None, &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-length"), Some("3"));
    assert!(resp.body.is_empty());
    // The connection must still be usable (no stray body bytes queued).
    assert_eq!(c.get("/healthz").unwrap().text(), "ok\n");
}

#[test]
fn readyz_reports_ready_while_running() {
    let mut c = client();
    let resp = c.get("/readyz").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), "ready\n");

    let post = c.post("/readyz", "text/plain", b"x").unwrap();
    assert_eq!(post.status, 405);
    assert_eq!(post.header("allow"), Some("GET, HEAD"));
}

#[test]
fn metrics_speak_prometheus_text_exposition() {
    let mut c = client();
    // At least one query beforehand so the wire counters exist.
    c.get("/sparql?query=ASK%20%7B%7D").unwrap();
    let resp = c.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let body = resp.text();
    assert!(
        body.contains("applab_http_requests_total"),
        "wire metrics must be exported, got:\n{body}"
    );

    let post = c.post("/metrics", "text/plain", b"x").unwrap();
    assert_eq!(post.status, 405);
    assert_eq!(post.header("allow"), Some("GET, HEAD"));
}
