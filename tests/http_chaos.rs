//! Wire-plane chaos: the SPARQL Protocol endpoint driven through a
//! [`ChaosListener`](copernicus_app_lab::http::ChaosListener) injecting
//! socket-level faults — mid-response resets, read/write stalls,
//! slowloris header drip, partial writes, early-byte corruption — plus
//! real-client hostility (disconnects mid-stream, stalled readers, true
//! slowloris) and lifecycle stress (graceful drain, shutdown races,
//! worker panics).
//!
//! The wire-level contract under fault injection is a strict trichotomy:
//! every request ends as
//!
//! 1. a complete, valid response byte-identical to the fault-free
//!    answer,
//! 2. a typed JSON error body at its mapped status, or
//! 3. a clean connection error (reset / EOF / broken pipe),
//!
//! never a hung connection, a corrupt chunked frame, a leaked admission
//! permit, or a stuck worker. Fault scheduling is deterministic in
//! accept order, so replaying a pass with the same seed yields the same
//! outcome sequence. Set `CHAOS_SEED=<n>` to pin one seed (the CI matrix
//! does), otherwise three defaults run. A violation dumps the service
//! flight recorder to `qa/failing/` for replay.

use applab_bench::geographica_queries;
use applab_bench::httpload::{percent_encode, HttpClient, HttpResponse};
use copernicus_app_lab::core::{CoreError, Explain, MaterializedWorkflow, QueryEndpoint};
use copernicus_app_lab::data::{mappings, ParisFixture};
use copernicus_app_lab::http::{HttpConfig, HttpServer, SocketChaos};
use copernicus_app_lab::obs::FlightRecorder;
use copernicus_app_lab::service::{ApplabService, ServiceConfig};
use copernicus_app_lab::sparql::{EvalOptions, QueryResults, JSON_FLUSH_BYTES};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A cross join big enough that its response can never fit in the kernel
/// socket buffers of a non-reading client (tcp_wmem autotunes to ~4 MiB;
/// this answer is ~13 MiB) — the lever the disconnect and stalled-reader
/// tests use to force a write-path stall.
const CROSS_JOIN: &str =
    "SELECT ?a ?b WHERE { ?a geo:hasGeometry ?ga . ?b geo:hasGeometry ?gb } LIMIT 100000";

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![0xC0FFEE, 11, 29],
    }
}

/// An endpoint that panics on every query: the worker-isolation tests
/// route `/sparql/boom` here to simulate a bug escaping the query plane.
struct PanicEndpoint;

impl QueryEndpoint for PanicEndpoint {
    fn query_with(&self, _sparql: &str, _opts: &EvalOptions) -> Result<QueryResults, CoreError> {
        panic!("simulated worker bug (PanicEndpoint)");
    }

    fn query_explained(&self, _sparql: &str) -> Result<Explain, CoreError> {
        unimplemented!("not used by the chaos tests")
    }

    fn backend(&self) -> &'static str {
        "panic"
    }
}

/// One shared flight recorder across every server this harness binds, so
/// a failing pass dumps the requests that led up to it.
fn flight_recorder() -> Arc<FlightRecorder> {
    static RECORDER: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    Arc::clone(RECORDER.get_or_init(|| Arc::new(FlightRecorder::new(64))))
}

/// Write the flight tape next to the QA failure artifacts and return the
/// path for the panic message. Called only on a trichotomy violation.
fn dump_flight_tape() -> String {
    let path = PathBuf::from("qa/failing/http_chaos_flight.jsonl");
    match flight_recorder().dump_to_file(&path) {
        Ok(()) => format!("flight tape: {}", path.display()),
        Err(e) => format!("flight tape dump failed: {e}"),
    }
}

/// One service shared by every test: the Paris fixture materialized
/// behind `store`, plus the panicking `boom` endpoint.
fn harness_service() -> Arc<ApplabService> {
    static SERVICE: OnceLock<Arc<ApplabService>> = OnceLock::new();
    Arc::clone(SERVICE.get_or_init(|| {
        let fixture = ParisFixture::generate(5, 12, 8);
        let mut mat = MaterializedWorkflow::new();
        for (table, doc) in [
            (fixture.world.osm_table(), mappings::OSM_MAPPING),
            (fixture.world.gadm_table(), mappings::GADM_MAPPING),
            (fixture.world.corine_table(), mappings::CORINE_MAPPING),
            (
                fixture.world.urban_atlas_table(),
                mappings::URBAN_ATLAS_MAPPING,
            ),
        ] {
            mat.load_table(&table, doc).unwrap();
        }
        Arc::new(
            ApplabService::new(ServiceConfig {
                max_in_flight: 4,
                max_queue: 64,
                queue_timeout: Duration::from_secs(60),
                ..ServiceConfig::default()
            })
            .with_endpoint("store", Arc::new(mat))
            .with_endpoint("boom", Arc::new(PanicEndpoint))
            .with_flight_recorder(flight_recorder()),
        )
    }))
}

fn reference_json(sparql: &str) -> String {
    harness_service()
        .query("store", sparql)
        .result
        .expect("fault-free reference query succeeds")
        .to_json()
}

// Resolve through the registry each call: the `counter!` macro caches
// its handle per *call site*, which would pin this helper to whichever
// name it saw first.
fn counter(name: &'static str) -> u64 {
    copernicus_app_lab::obs::global().counter(name).get()
}

fn cancelled_outcomes() -> u64 {
    copernicus_app_lab::obs::global()
        .counter_with(
            "applab_service_outcomes_total",
            &[("endpoint", "store"), ("code", "cancelled")],
        )
        .get()
}

/// Tests in this binary share one service (its admission permits), one
/// global metrics registry, and the kernel's socket buffers; in parallel
/// the counter-delta and permit-leak assertions would race each other.
/// Every test takes this lock first, serializing the suite.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn bind(config: HttpConfig) -> HttpServer {
    HttpServer::bind("127.0.0.1:0", harness_service(), config).expect("bind chaos server")
}

// ---------------------------------------------------------------------
// The trichotomy under injected socket faults.
// ---------------------------------------------------------------------

/// One request target plus its fault-free 200 body; `None` means the
/// fault-free answer is already a typed error (the malformed query).
struct Job {
    name: &'static str,
    target: String,
    expect_200: Option<String>,
}

/// The request mix: liveness/readiness probes, small (fixed-length) and
/// large (chunked) query answers, and a malformed query.
fn jobs() -> Vec<Job> {
    let queries = geographica_queries();
    let mut sized: Vec<(usize, String)> = queries
        .iter()
        .map(|(_, q)| (reference_json(q).len(), q.clone()))
        .collect();
    sized.sort_by_key(|(len, _)| *len);
    let small = sized.first().unwrap().1.clone();
    let (large_len, large) = sized.last().unwrap().clone();
    assert!(
        large_len >= JSON_FLUSH_BYTES,
        "the mix must exercise chunked framing"
    );
    let query_job = |name, sparql: &str| Job {
        name,
        target: format!("/sparql?query={}", percent_encode(sparql)),
        expect_200: Some(reference_json(sparql)),
    };
    vec![
        Job {
            name: "healthz",
            target: "/healthz".into(),
            expect_200: Some("ok\n".into()),
        },
        Job {
            name: "readyz",
            target: "/readyz".into(),
            expect_200: Some("ready\n".into()),
        },
        query_job("small_query", &small),
        query_job("large_query", &large),
        query_job("mid_query", &queries[2].1),
        query_job("agg_query", &queries[6].1),
        Job {
            name: "malformed",
            target: format!("/sparql?query={}", percent_encode("SELECT WHERE {{{ nope")),
            expect_200: None,
        },
    ]
}

/// Enforce the wire trichotomy for one exchange and reduce it to a
/// comparable label. Panics (with a flight-tape dump) on any violation:
/// drifted 200 body, untyped error body, corrupt framing, or a hang.
fn classify(job: &Job, result: io::Result<HttpResponse>) -> String {
    match result {
        Ok(resp) if resp.status == 200 => {
            let expected = job.expect_200.as_deref().unwrap_or_else(|| {
                panic!(
                    "{}: fault injection turned an invalid request into a 200; {}",
                    job.name,
                    dump_flight_tape()
                )
            });
            if resp.text() != expected {
                panic!(
                    "{}: 200 body drifted under fault injection ({} vs {} bytes); {}",
                    job.name,
                    resp.body.len(),
                    expected.len(),
                    dump_flight_tape()
                );
            }
            "ok".to_string()
        }
        Ok(resp) => {
            let body = resp.text();
            let typed = resp.header("content-type") == Some("application/json")
                && body.contains("\"error\"")
                && body.contains(&format!("\"status\":{}", resp.status));
            if !typed {
                panic!(
                    "{}: untyped {} response escaped: {body:?}; {}",
                    job.name,
                    resp.status,
                    dump_flight_tape()
                );
            }
            format!("typed:{}", resp.status)
        }
        Err(e) => match e.kind() {
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => "conn".to_string(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => panic!(
                "{}: connection hung past the client deadline; {}",
                job.name,
                dump_flight_tape()
            ),
            io::ErrorKind::InvalidData => panic!(
                "{}: corrupt response framing escaped: {e}; {}",
                job.name,
                dump_flight_tape()
            ),
            _ => panic!(
                "{}: unexpected transport error {e:?}; {}",
                job.name,
                dump_flight_tape()
            ),
        },
    }
}

/// One serial pass: every job twice, one fresh connection per request
/// (fault plans are drawn per accepted connection, so serial connects
/// make the schedule — and therefore the outcome sequence — replayable).
fn run_wire_pass(seed: u64, rate: f64, jobs: &[Job]) -> Vec<String> {
    let server = bind(HttpConfig {
        workers: 2,
        keep_alive_timeout: Duration::from_millis(400),
        write_deadline: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(2),
        chaos: Some(SocketChaos::uniform(rate, seed)),
        ..HttpConfig::default()
    });
    let addr = server.local_addr();
    let mut outcomes = Vec::new();
    for _round in 0..2 {
        for job in jobs {
            outcomes.push(classify(job, one_request(addr, &job.target)));
        }
    }
    // A reset connection errors on the client before the server-side
    // query finishes unwinding, so give the permit a beat to release.
    let svc = harness_service();
    assert!(
        wait_until(Duration::from_secs(5), || svc.load() == (0, 0)),
        "admission permits leaked under chaos: {:?}",
        svc.load()
    );
    server.shutdown();
    outcomes
}

fn one_request(addr: SocketAddr, target: &str) -> io::Result<HttpResponse> {
    let mut client = HttpClient::connect(addr)?;
    client.set_read_timeout(Some(Duration::from_secs(10)))?;
    client.get(target)
}

#[test]
fn chaos_wire_mix_holds_the_trichotomy_deterministically() {
    let _exclusive = exclusive();
    let jobs = jobs();
    for seed in seeds() {
        for rate in [0.10, 0.30] {
            let first = run_wire_pass(seed, rate, &jobs);
            let second = run_wire_pass(seed, rate, &jobs);
            assert!(
                first.iter().any(|o| o != "ok"),
                "seed {seed} @ {rate}: chaos injected nothing — the suite is vacuous"
            );
            if first != second {
                panic!(
                    "seed {seed} @ {rate}: socket faults must replay deterministically\n\
                     first:  {first:?}\n second: {second:?}\n {}",
                    dump_flight_tape()
                );
            }
        }
    }
}

#[test]
fn concurrent_chaos_holds_the_trichotomy() {
    let _exclusive = exclusive();
    let jobs = jobs();
    let server = bind(HttpConfig {
        workers: 4,
        keep_alive_timeout: Duration::from_millis(400),
        chaos: Some(SocketChaos::uniform(0.30, seeds()[0])),
        ..HttpConfig::default()
    });
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let jobs = &jobs;
            scope.spawn(move || {
                for k in 0..6 {
                    let job = &jobs[(t * 5 + k * 3) % jobs.len()];
                    classify(job, one_request(addr, &job.target));
                }
            });
        }
    });
    assert!(
        wait_until(Duration::from_secs(5), || harness_service().load()
            == (0, 0)),
        "admission permits leaked under concurrent chaos: {:?}",
        harness_service().load()
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Graceful drain: /readyz flips first, in-flight work completes.
// ---------------------------------------------------------------------

#[test]
fn graceful_drain_flips_readyz_completes_in_flight_and_joins_fast() {
    let _exclusive = exclusive();
    let server = bind(HttpConfig {
        workers: 4,
        keep_alive_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(5),
        ..HttpConfig::default()
    });
    let addr = server.local_addr();

    // Two established keep-alive connections (probes survive the drain
    // boundary) and one request caught mid-flight: its head and half its
    // body are on the wire when the drain starts.
    let mut probe = HttpClient::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(probe.get("/readyz").unwrap().text(), "ready\n");
    let mut health = HttpClient::connect(addr).unwrap();
    health
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let mut inflight = TcpStream::connect(addr).unwrap();
    inflight
        .write_all(
            b"POST /sparql HTTP/1.1\r\nHost: t\r\n\
              Content-Type: application/sparql-query\r\nContent-Length: 6\r\n\r\nASK",
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(100)); // server is now mid-body-read

    server.begin_shutdown();

    // Readiness flips to 503 while liveness stays 200: a load balancer
    // stops routing here, the orchestrator does not restart the process.
    let ready = probe.get("/readyz").unwrap();
    assert_eq!(ready.status, 503);
    assert!(
        ready.text().contains("\"code\":\"draining\""),
        "{}",
        ready.text()
    );
    assert_eq!(ready.header("connection"), Some("close"));
    let alive = health.get("/healthz").unwrap();
    assert_eq!(alive.status, 200);
    assert_eq!(alive.text(), "ok\n");
    assert_eq!(
        alive.header("connection"),
        Some("close"),
        "drain must retire keep-alive connections"
    );

    // The mid-flight request completes normally, marked `Connection:
    // close` — draining never cuts a request that is already in.
    inflight.write_all(b" {}").unwrap();
    inflight
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut out = Vec::new();
    inflight.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out);
    assert!(text.starts_with("HTTP/1.1 200 "), "got: {text}");
    assert!(text.contains("Connection: close"), "got: {text}");
    assert!(text.contains("\"boolean\""), "got: {text}");

    // New connections stop being accepted once the acceptor parks.
    assert!(
        wait_until(Duration::from_secs(2), || TcpStream::connect(addr).is_err()),
        "a draining server must stop accepting new connections"
    );

    // Nothing is in flight anymore, so the drain completes naturally —
    // far inside the deadline, with no straggler aborts needed.
    let begun = Instant::now();
    server.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(2),
        "an idle drain took {:?}",
        begun.elapsed()
    );
}

#[test]
fn shutdown_under_connect_load_never_hangs() {
    let _exclusive = exclusive();
    for _round in 0..6 {
        let server = bind(HttpConfig {
            workers: 2,
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let hammers: Vec<_> = (0..3)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Connections may land before, during, or after
                        // the drain; any outcome is fine — the invariant
                        // under test is that shutdown always completes.
                        match HttpClient::connect(addr) {
                            Ok(mut c) => {
                                let _ = c.set_read_timeout(Some(Duration::from_secs(2)));
                                let _ = c.get("/healthz");
                            }
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        let begun = Instant::now();
        server.shutdown();
        assert!(
            begun.elapsed() < Duration::from_secs(4),
            "shutdown hung under connect load: {:?}",
            begun.elapsed()
        );
        stop.store(true, Ordering::Relaxed);
        for h in hammers {
            h.join().unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Hostile clients: disconnects, stalled readers, slowloris.
// ---------------------------------------------------------------------

#[test]
fn client_disconnect_mid_stream_cancels_the_query() {
    let _exclusive = exclusive();
    assert!(
        reference_json(CROSS_JOIN).len() > 8_000_000,
        "the cross join must dwarf the kernel socket buffers for the test to mean anything"
    );
    let server = bind(HttpConfig {
        workers: 2,
        write_deadline: Duration::from_secs(2),
        ..HttpConfig::default()
    });
    let addr = server.local_addr();
    let cancelled_before = cancelled_outcomes();
    let disconnects_before = counter("applab_http_client_disconnects_total");

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\n\r\n",
                percent_encode(CROSS_JOIN)
            )
            .as_bytes(),
        )
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Wait for the head so the server is demonstrably mid-delivery, then
    // vanish. The megabytes still to come overwhelm the kernel buffers,
    // the server's write fails, and the query must cancel server-side.
    let mut head = [0u8; 16];
    stream.read_exact(&mut head).unwrap();
    assert!(head.starts_with(b"HTTP/1.1 200"));
    drop(stream);

    assert!(
        wait_until(Duration::from_secs(10), || {
            cancelled_outcomes() > cancelled_before
                && counter("applab_http_client_disconnects_total") > disconnects_before
        }),
        "a mid-stream disconnect must cancel the query and be counted \
         (cancelled {} -> {}, disconnects {} -> {})",
        cancelled_before,
        cancelled_outcomes(),
        disconnects_before,
        counter("applab_http_client_disconnects_total"),
    );
    assert!(
        wait_until(Duration::from_secs(5), || harness_service().load()
            == (0, 0)),
        "the disconnected query must release its permit"
    );
    server.shutdown();
}

#[test]
fn stalled_reader_trips_the_write_deadline_and_frees_the_worker() {
    let _exclusive = exclusive();
    assert!(reference_json(CROSS_JOIN).len() > 8_000_000);
    let server = bind(HttpConfig {
        workers: 2,
        write_deadline: Duration::from_millis(400),
        keep_alive_timeout: Duration::from_secs(2),
        ..HttpConfig::default()
    });
    let addr = server.local_addr();
    let cancelled_before = cancelled_outcomes();
    let disconnects_before = counter("applab_http_client_disconnects_total");

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\n\r\n",
                percent_encode(CROSS_JOIN)
            )
            .as_bytes(),
        )
        .unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Read one window's worth, then stall with the connection open: the
    // kernel flow-controls the server, whose per-write deadline must
    // trip, cancel the query, and free the worker.
    let mut first = [0u8; 1024];
    stream.read_exact(&mut first).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            cancelled_outcomes() > cancelled_before
                && counter("applab_http_client_disconnects_total") > disconnects_before
        }),
        "a stalled reader must trip the write deadline into a cancelled outcome\n{}",
        copernicus_app_lab::obs::global()
            .to_prometheus()
            .lines()
            .filter(|l| {
                l.contains("cancel")
                    || l.contains("disconnect")
                    || l.contains("delivery")
                    || l.contains("499")
                    || l.contains("outcomes")
            })
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The worker is free again: a fresh client is served immediately.
    let mut c = HttpClient::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(c.get("/healthz").unwrap().text(), "ok\n");
    assert!(
        wait_until(Duration::from_secs(5), || harness_service().load()
            == (0, 0)),
        "the stalled query must release its permit"
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn real_slowloris_is_cut_off_with_408() {
    let _exclusive = exclusive();
    let server = bind(HttpConfig {
        workers: 2,
        keep_alive_timeout: Duration::from_millis(300),
        ..HttpConfig::default()
    });
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /healthz HTT").unwrap(); // head never finishes
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out);
    assert!(text.starts_with("HTTP/1.1 408 "), "got: {text}");
    assert!(text.contains("\"code\":\"request_timeout\""), "got: {text}");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Worker panic isolation.
// ---------------------------------------------------------------------

#[test]
fn worker_panics_close_one_connection_and_never_shrink_the_pool() {
    let _exclusive = exclusive();
    let server = bind(HttpConfig {
        workers: 2,
        ..HttpConfig::default()
    });
    let addr = server.local_addr();
    let panics_before = counter("applab_http_worker_panics_total");

    // Two panics — one per worker, were panics to kill threads.
    for _ in 0..2 {
        let mut c = HttpClient::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let err = c
            .get("/sparql/boom?query=ASK%20%7B%7D")
            .expect_err("a panicking endpoint must close the connection, not answer");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err:?}");
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            counter("applab_http_worker_panics_total") >= panics_before + 2
        }),
        "worker panics must be counted"
    );

    // workers + 1 successful requests prove no worker thread died.
    for _ in 0..3 {
        let mut c = HttpClient::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(c.get("/healthz").unwrap().text(), "ok\n");
    }
    assert!(
        wait_until(Duration::from_secs(5), || harness_service().load()
            == (0, 0)),
        "a panicked query must still release its permit: {:?}",
        harness_service().load()
    );
    server.shutdown();
}
