//! F1 (Figure 1): the whole architecture, end to end.
//!
//! Drives both workflows over the same synthetic Copernicus data and
//! checks that they answer identically; then exercises the surrounding
//! services (interlinking, cataloguing, visualization).

use copernicus_app_lab::catalog::schema_org::corine_annotation;
use copernicus_app_lab::catalog::{CatalogIndex, SearchQuery};
use copernicus_app_lab::core::{MaterializedWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{grids, mappings, ParisFixture};
use copernicus_app_lab::geo::Coord;
use copernicus_app_lab::link::{Comparison, LinkRule};
use copernicus_app_lab::sextant::map::Layer;
use copernicus_app_lab::sextant::style::{Color, Style};
use std::time::Duration;

fn fixture() -> ParisFixture {
    ParisFixture::generate(77, 14, 10)
}

#[test]
fn materialized_and_virtual_workflows_agree() {
    let fixture = fixture();

    // Materialized: tables → GeoTriples → store.
    let mut mat = MaterializedWorkflow::new();
    mat.load_table(&fixture.world.osm_table(), mappings::OSM_MAPPING)
        .unwrap();
    mat.load_table(&fixture.world.corine_table(), mappings::CORINE_MAPPING)
        .unwrap();

    // Virtual: the same tables behind Ontop-spatial.
    let mut builder = VirtualWorkflowBuilder::local();
    builder.add_table(fixture.world.osm_table());
    builder.add_table(fixture.world.corine_table());
    builder.add_mappings(mappings::OSM_MAPPING).unwrap();
    builder.add_mappings(mappings::CORINE_MAPPING).unwrap();
    let virt = builder.seal().unwrap();

    for q in [
        "SELECT ?s ?name WHERE { ?s osm:poiType osm:park ; osm:hasName ?name }",
        "SELECT (COUNT(*) AS ?n) WHERE { ?a a clc:CorineArea }",
        r#"SELECT ?a WHERE { ?a a clc:CorineArea ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
           FILTER(geof:sfIntersects(?w, "POLYGON ((2.2 48.8, 2.4 48.8, 2.4 48.9, 2.2 48.9, 2.2 48.8))"^^geo:wktLiteral)) }"#,
    ] {
        let a = mat.query(q).unwrap();
        let b = virt.query(q).unwrap();
        let norm = |r: &copernicus_app_lab::sparql::QueryResults| {
            let mut rows: Vec<String> = r
                .rows()
                .iter()
                .map(|row| {
                    row.values
                        .iter()
                        .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&a), norm(&b), "workflows disagree on {q}");
    }
}

#[test]
fn gridded_data_flows_through_opendap_to_queries() {
    let fixture = fixture();
    let mut lai = grids::lai_dataset(&fixture.world, &grids::GridSpec::monthly_2017(10, 77));
    lai.name = "lai_300m".into();

    let mut builder = VirtualWorkflowBuilder::local();
    builder.publish(lai);
    builder.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
    builder
        .add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
        .unwrap();
    let virt = builder.seal().unwrap();

    // Every virtual observation carries a positive LAI (mapping WHERE) and
    // a parsable geometry + timestamp.
    let r = virt
        .query("SELECT ?lai ?wkt ?t WHERE { ?s lai:hasLai ?lai ; time:hasTime ?t ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }")
        .unwrap();
    assert!(r.len() > 50);
    for i in 0..r.len() {
        assert!(
            r.value(i, "lai")
                .unwrap()
                .as_literal()
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!(r
            .value(i, "wkt")
            .unwrap()
            .as_literal()
            .unwrap()
            .as_geometry()
            .is_some());
        assert!(r
            .value(i, "t")
            .unwrap()
            .as_literal()
            .unwrap()
            .as_datetime()
            .is_some());
    }
}

#[test]
fn interlinking_connects_the_silos() {
    let fixture = fixture();
    let mut mat = MaterializedWorkflow::new();
    mat.load_table(&fixture.world.osm_table(), mappings::OSM_MAPPING)
        .unwrap();
    // "a dataset that gives the land cover of certain areas might be
    // interlinked with OpenStreetMap data for the same areas": here a
    // second publication of the parks under different IRIs.
    let external_mapping = mappings::OSM_MAPPING
        .replace(
            "osm:poi_{id}",
            "<http://linkedgeodata.example.org/poi_{id}>",
        )
        .replace(
            "osm:geom_{id}",
            "<http://linkedgeodata.example.org/geom_{id}>",
        );
    let ms = copernicus_app_lab::geotriples::parse_mappings(&external_mapping).unwrap();
    let external = copernicus_app_lab::geotriples::process(&ms[0], &fixture.world.osm_table());

    let rule = LinkRule::same_as(
        vec![
            (Comparison::NameLevenshtein, 0.5),
            (Comparison::SpatialProximity { max_distance: 0.01 }, 0.5),
        ],
        0.95,
    );
    let links = mat.interlink(&external, &rule);
    assert!(links > 0);
    let r = mat
        .query("SELECT ?a ?b WHERE { ?a owl:sameAs ?b }")
        .unwrap();
    assert_eq!(r.len(), links);
}

#[test]
fn catalog_and_visualization_close_the_loop() {
    let fixture = fixture();
    // Catalog: the datasets used above are discoverable.
    let mut catalog = CatalogIndex::new();
    catalog.add(corine_annotation());
    let hits =
        catalog.search(&SearchQuery::text(&["land", "cover"]).covering(Coord::new(7.68, 45.07)));
    assert_eq!(hits.len(), 1);

    // Visualization: a layer straight from a GeoSPARQL result.
    let mut mat = MaterializedWorkflow::new();
    mat.load_table(&fixture.world.osm_table(), mappings::OSM_MAPPING)
        .unwrap();
    let r = mat
        .query("SELECT ?wkt ?name WHERE { ?p osm:poiType osm:park ; osm:hasName ?name ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }")
        .unwrap();
    let layer = Layer::from_results(
        "parks",
        Style::Fill {
            color: Color::GREEN,
            opacity: 0.5,
        },
        &r,
        "wkt",
        None,
        Some("name"),
        None,
    );
    assert_eq!(layer.features.len(), r.len());
    let mut map = copernicus_app_lab::sextant::map::Map::new("architecture roundtrip");
    map.add_layer(layer);
    let svg = copernicus_app_lab::sextant::render_svg(
        &map,
        &copernicus_app_lab::sextant::svg::RenderOptions::default(),
    );
    assert!(svg.contains("<path"));
}
