//! Chaos × differential composition smoke: a 100-case slice of the QA
//! generator runs against the virtual workflow behind a `ChaosTransport`
//! at a 10% fault rate, and every outcome must land in the resilience
//! trichotomy:
//!
//! 1. results canonically identical to the fault-free run (fresh or
//!    degraded-but-complete — the data never changes under the test, so a
//!    stale window answer is still the same answer), or
//! 2. a typed `CoreError` (`Unavailable` / `Source` / `Timeout`).
//!
//! Never a panic, a silently partial result, or an untyped error. This
//! composes the PR that added fault tolerance with the generative harness:
//! the generator supplies query diversity the handwritten chaos suite
//! doesn't have.

use applab_qa::{canonicalize, case_seed, diff, generate, DatasetSpec};
use copernicus_app_lab::core::CoreError;
use copernicus_app_lab::dap::chaos::{ChaosConfig, ChaosTransport};
use copernicus_app_lab::dap::clock::ManualClock;
use copernicus_app_lab::dap::transport::Local;
use copernicus_app_lab::dap::ResilienceConfig;
use copernicus_app_lab::obs::querylog::{hash_query, now_ms, truncate_query};
use copernicus_app_lab::obs::{querystats, FlightRecorder, QueryLogRecord};
use copernicus_app_lab::sparql::EvalOptions;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CASES: u64 = 100;
const RUN_SEED: u64 = 0x9A_C4A05;
const FAULT_RATE: f64 = 0.10;

/// Run one chaotic query under a stats scope and leave a record on the
/// flight recorder, so a trichotomy violation can dump the tape of
/// requests that led up to it — same artifact a crashed service leaves.
fn query_recorded(
    recorder: &FlightRecorder,
    vw: &copernicus_app_lab::core::VirtualWorkflow,
    seq: u64,
    text: &str,
) -> Result<copernicus_app_lab::sparql::QueryResults, CoreError> {
    let scope = querystats::Scope::begin();
    let started = Instant::now();
    let result = vw.query_with(text, &EvalOptions::sequential());
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    let code = match &result {
        Ok(_) => "ok",
        Err(CoreError::Unavailable { .. }) => "unavailable",
        Err(CoreError::Source(_)) => "source",
        Err(CoreError::Timeout(_)) => "timeout",
        Err(_) => "error",
    };
    recorder.record(QueryLogRecord {
        seq,
        ts_ms: now_ms(),
        endpoint: "qa-chaos".to_string(),
        backend: "obda".to_string(),
        code: code.to_string(),
        degraded: false,
        elapsed_ns,
        queue_wait_ns: 0,
        query_hash: hash_query(text),
        query: truncate_query(text),
        trace_id: 0,
        span_id: 0,
        stats: scope.finish(),
    });
    result
}

/// Dump the tape next to the shrunk corpus artifacts exp_qa writes, and
/// return the path for the panic message.
fn dump_flight_tape(recorder: &FlightRecorder) -> String {
    let path = PathBuf::from("qa/failing/qa_chaos_flight.jsonl");
    match recorder.dump_to_file(&path) {
        Ok(()) => format!("flight tape: {}", path.display()),
        Err(e) => format!("flight tape dump failed: {e}"),
    }
}

#[test]
fn generated_queries_hold_the_trichotomy_under_chaos() {
    let spec = DatasetSpec::small(7);

    // Fault-free oracle over the same dataset.
    let clean = spec.build().expect("clean engines build");

    // The workflow under test: same dataset, OPeNDAP path behind a 10%
    // uniform fault injector, retries/breaker on, stale serving allowed.
    let clock = ManualClock::new();
    let chaos = Arc::new(ChaosTransport::new(
        Arc::new(Local::new()),
        ChaosConfig::uniform(FAULT_RATE),
        RUN_SEED,
    ));
    let mut b = spec.virtual_builder(chaos, clock.clone());
    b.set_stale_grace(Duration::from_secs(100_000_000));
    b.enable_resilience(ResilienceConfig::no_sleep(), RUN_SEED);
    let vw = b.seal().expect("chaotic workflow seals");
    let recorder = FlightRecorder::new(32);

    let (mut identical, mut typed_errors, mut skipped) = (0usize, 0usize, 0usize);
    for i in 0..CASES {
        let mut ir = generate(case_seed(RUN_SEED, i), &spec);
        // Any correctly-sized slice is a legal LIMIT/OFFSET answer, so
        // strip the modifiers: this smoke wants deterministic comparison,
        // the slice semantics are exp_qa's job.
        ir.limit = None;
        ir.offset = 0;
        let text = ir.render();

        // Queries the fault-free workflow cannot answer (e.g. a generated
        // type error) say nothing about fault handling.
        let Ok(expected) = clean.vw.query_with(&text, &EvalOptions::sequential()) else {
            skipped += 1;
            continue;
        };
        let expected = canonicalize(&expected);

        // Push past the vtable window so the case actually exercises the
        // faulty remote path instead of riding a warm cache.
        clock.advance(Duration::from_secs(601));
        match query_recorded(&recorder, &vw, i, &text) {
            Ok(results) => {
                let got = canonicalize(&results);
                if got != expected {
                    panic!(
                        "case {i}: partial or drifted result escaped under faults: {}\n{text}\n{}",
                        diff(&got, &expected).unwrap_or_default(),
                        dump_flight_tape(&recorder)
                    );
                }
                identical += 1;
            }
            Err(CoreError::Unavailable { .. } | CoreError::Source(_) | CoreError::Timeout(_)) => {
                typed_errors += 1;
            }
            Err(other) => panic!(
                "case {i}: untyped failure escaped: {other}\n{text}\n{}",
                dump_flight_tape(&recorder)
            ),
        }
    }

    assert_eq!(identical + typed_errors + skipped, CASES as usize);
    // At a 10% fault rate with retries, the overwhelming outcome must be a
    // complete answer; if everything errored the resilience layer is off.
    assert!(
        identical >= (CASES as usize) / 2,
        "only {identical}/{CASES} cases produced complete answers (typed errors: {typed_errors}, skipped: {skipped})"
    );
}
