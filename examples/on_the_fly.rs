//! The on-the-fly workflow (Section 3.2, Listings 2 and 3).
//!
//! ```text
//! cargo run --release --example on_the_fly
//! ```
//!
//! Publishes a synthetic Copernicus Global Land LAI product on the
//! embedded OPeNDAP server, registers the paper's Listing 2 mapping with
//! the `opendap` virtual table (cache window w = 10 minutes), and runs
//! Listing 3 over the *virtual* RDF graph — no triples are materialized.
//! Also exercises the SDL request methods an app developer would call.

use copernicus_app_lab::core::VirtualWorkflowBuilder;
use copernicus_app_lab::data::{grids, mappings, ParisFixture};
use copernicus_app_lab::geo::{Coord, Envelope};
use copernicus_app_lab::sdl::analytics::CentralTendency;
use copernicus_app_lab::sdl::sdl::{Derivation, DerivedData};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A data provider (VITO in the paper) publishes the product.
    let fixture = ParisFixture::generate(2019, 16, 12);
    let mut lai = grids::lai_dataset(&fixture.world, &grids::GridSpec::monthly_2017(24, 2019));
    lai.name = "Copernicus-Land-timeseries-global-LAI".into();

    // Build phase: publish the product, register the `opendap` virtual
    // table (Listing 2 mapping), then seal into a queryable workflow.
    let mut builder = VirtualWorkflowBuilder::local();
    builder.publish(lai);
    builder.add_opendap(
        "Copernicus-Land-timeseries-global-LAI",
        "LAI",
        Duration::from_secs(600),
    );
    builder.add_mappings(&mappings::opendap_lai_mapping(
        "Copernicus-Land-timeseries-global-LAI",
        10,
    ))?;
    let workflow = builder.seal()?;

    // --- The SDL path (RAMANI Maps-API request methods).
    let meta = workflow
        .sdl()
        .get_metadata("Copernicus-Land-timeseries-global-LAI")?;
    println!(
        "dataset extent: {:?}, time steps: {}",
        meta.extent.unwrap(),
        meta.dds.variable("time").map(|v| v.dims[0].1).unwrap_or(0)
    );
    let bois = Coord::new(2.24, 48.865);
    let july = copernicus_app_lab::rdf::datetime::timestamp(2017, 7, 15, 0, 0, 0);
    let v = workflow
        .sdl()
        .get_point("Copernicus-Land-timeseries-global-LAI", "LAI", bois, july)?;
    println!("getPoint(Bois de Boulogne, July): LAI = {v:.2}");
    match workflow.sdl().get_derived_data(
        "Copernicus-Land-timeseries-global-LAI",
        "LAI",
        bois,
        &Derivation::SpatialAggregate {
            envelope: Envelope::new(2.2, 48.84, 2.3, 48.9),
            how: CentralTendency::Mean,
        },
        july,
    )? {
        DerivedData::Scalar(mean) => println!("getDerivedData(city-average, July): {mean:.2}"),
        other => println!("unexpected: {other:?}"),
    }

    // --- The OBDA path: Listing 3 over the sealed virtual graph.
    let results = workflow.query(
        r#"SELECT DISTINCT ?s ?wkt ?lai
WHERE { ?s lai:hasLai ?lai .
        ?s geo:hasGeometry ?g .
        ?g geo:asWKT ?wkt }"#,
    )?;
    println!(
        "\nListing 3 over the virtual graph: {} observations (first rows below)",
        results.len()
    );
    for line in results.to_csv().lines().take(4) {
        println!("  {line}");
    }
    println!(
        "\nDAP transfer so far: {} round trips, {} bytes",
        workflow.client().round_trips(),
        workflow.client().bytes_received()
    );
    // The windowed cache: an identical query within w reuses the fetch.
    let before = workflow.client().round_trips();
    let again = workflow.query("SELECT (COUNT(*) AS ?n) WHERE { ?s lai:hasLai ?v }")?;
    println!(
        "second query ({} rows): {} extra round trips (cache window w=10min)",
        again.len(),
        workflow.client().round_trips() - before
    );
    Ok(())
}
