//! Operating the App Lab service: per-query accounting, the structured
//! query log, the flight recorder, and SLO quantiles.
//!
//! ```text
//! cargo run --release --example ops
//! ```
//!
//! Stands up an `ApplabService` over both workflows with a rate-1.0
//! JSONL query log and a flight recorder attached, serves the
//! mini-Geographica mix plus a failing request, then prints what an
//! operator would look at: a few query-log lines, the per-endpoint SLO
//! table derived from the service's own histograms, the resource
//! accounting of one outcome, and the flight-recorder tape a crash
//! artifact would contain.

use applab_bench::geographica_queries;
use copernicus_app_lab::core::{MaterializedWorkflow, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{mappings, ParisFixture};
use copernicus_app_lab::obs::{FlightRecorder, QueryLog, SamplingPolicy, VecSink};
use copernicus_app_lab::service::{ApplabService, ServiceConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fixture = ParisFixture::generate(2019, 16, 8);
    let tables = [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ];
    let mut mat = MaterializedWorkflow::new();
    let mut builder = VirtualWorkflowBuilder::local();
    for (table, doc) in tables {
        mat.load_table(&table, doc)?;
        builder.add_table(table);
        builder.add_mappings(doc)?;
    }

    // In production the sink would be a `WriterSink` over an append-only
    // file; the in-memory sink lets this example print the lines.
    let (sink, lines) = VecSink::new();
    let log = Arc::new(QueryLog::new(sink, SamplingPolicy::always(), 4096));
    let recorder = Arc::new(FlightRecorder::new(8));
    let service = ApplabService::new(ServiceConfig::default())
        .with_endpoint("store", Arc::new(mat))
        .with_endpoint("obda", Arc::new(builder.seal()?))
        .with_query_log(Arc::clone(&log))
        .with_flight_recorder(Arc::clone(&recorder));

    for (_, sparql) in geographica_queries() {
        assert!(service.query("store", &sparql).is_ok());
        assert!(service.query("obda", &sparql).is_ok());
    }
    // One failing request: always logged, never sampled out.
    let bad = service.query("store", "SELECT WHERE broken");
    assert_eq!(bad.code(), "parse");

    log.flush();
    let lines = lines.lock().expect("sink lines");
    println!("── query log (first 3 of {} JSONL lines) ──", lines.len());
    for line in lines.iter().take(3) {
        println!("{line}");
    }

    println!("\n── SLO report (per endpoint, from the service histograms) ──");
    let slo = copernicus_app_lab::obs::global().slo_report("applab_service_query_seconds");
    print!("{}", slo.render());

    println!("\n── resource accounting of the last ok outcome ──");
    let out = service.query(
        "obda",
        "SELECT ?s ?wkt WHERE { ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
    );
    println!("{}", out.stats.to_json());

    println!(
        "\n── flight recorder (last {} requests, unsampled) ──",
        recorder.capacity()
    );
    for rec in recorder.dump() {
        println!(
            "  seq={} endpoint={} code={} elapsed={}us rows_scanned={}",
            rec.seq,
            rec.endpoint,
            rec.code,
            rec.elapsed_ns / 1_000,
            rec.stats.rows_scanned
        );
    }
    Ok(())
}
