//! Regenerate the App Lab ontologies (Figures 2 and 3 and Section 4).
//!
//! ```text
//! cargo run --example ontologies
//! ```
//!
//! Prints the LAI ontology (Figure 2) and the GADM ontology (Figure 3) as
//! Turtle, plus summary statistics of the CORINE / Urban Atlas / OSM / map
//! ontologies.

use copernicus_app_lab::rdf::ontology;
use copernicus_app_lab::rdf::turtle::write_turtle;

fn main() {
    println!("### Figure 2: the LAI ontology ###\n");
    println!("{}", write_turtle(&ontology::lai_ontology()));

    println!("### Figure 3: the GADM ontology ###\n");
    println!("{}", write_turtle(&ontology::gadm_ontology()));

    let corine = ontology::corine_ontology();
    let level3 = ontology::CLC_CLASSES
        .iter()
        .filter(|(c, _)| *c >= 100)
        .count();
    println!(
        "### CORINE land cover ontology: {} triples, {} level-3 classes (of 44) ###",
        corine.len(),
        level3
    );
    // A taste of the class hierarchy.
    for code in [141u16, 311, 512] {
        let iri = ontology::clc_class_iri(code).unwrap();
        println!("  CLC {code} → {}", iri.as_str());
    }

    let ua = ontology::urban_atlas_ontology();
    println!(
        "\n### Urban Atlas ontology: {} triples, {} urban + {} rural classes ###",
        ua.len(),
        ontology::UA_CLASSES.iter().filter(|(_, u, _)| *u).count(),
        ontology::UA_CLASSES.iter().filter(|(_, u, _)| !*u).count(),
    );

    println!(
        "\n### OSM ontology: {} triples; Sextant map ontology: {} triples ###",
        ontology::osm_ontology().len(),
        ontology::map_ontology().len()
    );
}
