//! Quickstart: load geospatial data as linked data and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Mirrors the paper's materialized workflow in miniature: a CSV of parks →
//! GeoTriples mapping → spatiotemporal store → GeoSPARQL.

use copernicus_app_lab::core::MaterializedWorkflow;
use copernicus_app_lab::geotriples::source::read_csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tabular geospatial source (a shapefile/CSV export in real life).
    let csv = "\
id,name,kind,geometry
1,Bois de Boulogne,park,\"POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.88, 2.21 48.85))\"
2,Parc Monceau,park,POINT (2.3088 48.8796)
3,Gare du Nord,station,POINT (2.3553 48.8809)
";
    let parks = read_csv("parks", csv)?;

    // 2. A GeoTriples mapping (the Ontop-style native syntax of Listing 2).
    let mapping = r#"
mappingId parks
target osm:poi_{id} a osm:PointOfInterest ;
       osm:poiType osm:{kind} ;
       osm:hasName {name}^^xsd:string ;
       geo:hasGeometry osm:geom_{id} .
       osm:geom_{id} geo:asWKT {geometry}^^geo:wktLiteral .
source SELECT * FROM parks
"#;

    // 3. Transform + store (Strabon-like spatiotemporal store).
    let mut workflow = MaterializedWorkflow::new();
    let triples = workflow.load_table(&parks, mapping)?;
    println!("loaded {triples} triples");

    // 4. GeoSPARQL: parks within ~3 km (0.03°) of the Arc de Triomphe.
    let results = workflow.query(
        r#"SELECT ?name ?wkt WHERE {
  ?p osm:poiType osm:park ;
     osm:hasName ?name ;
     geo:hasGeometry ?g .
  ?g geo:asWKT ?wkt .
  FILTER(geof:distance(?wkt, "POINT (2.295 48.8738)"^^geo:wktLiteral) < 0.03)
} ORDER BY ?name"#,
    )?;

    println!("\nparks near the Arc de Triomphe:");
    print!("{}", results.to_csv());
    assert_eq!(
        results.len(),
        2,
        "expected the Bois de Boulogne and the Parc Monceau, not the station"
    );
    Ok(())
}
