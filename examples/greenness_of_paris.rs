//! The "greenness of Paris" case study (Section 4, Figure 4).
//!
//! ```text
//! cargo run --release --example greenness_of_paris
//! ```
//!
//! Regenerates Figure 4: loads the synthetic Paris fixture (OSM parks,
//! GADM areas, CORINE land cover, Urban Atlas, monthly LAI), answers
//! Listing 1, correlates LAI with land cover per month, and writes the
//! thematic map as `greenness_of_paris.svg` plus its RDF description
//! (`greenness_of_paris.ttl`, via the Sextant map ontology).

use copernicus_app_lab::core::greenness;
use copernicus_app_lab::data::ParisFixture;
use copernicus_app_lab::rdf::datetime::format_date;
use copernicus_app_lab::sextant::ontology::map_to_rdf;
use copernicus_app_lab::sextant::svg::RenderOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating the Paris fixture (synthetic Copernicus data)...");
    let fixture = ParisFixture::default_fixture();
    println!(
        "  {} land cover areas, {} POIs, LAI grid {:?}",
        fixture.world.land_cover.len(),
        fixture.world.pois.len(),
        fixture.lai.variable("LAI").unwrap().data.shape()
    );

    println!("loading into the materialized workflow and analysing...");
    let result = greenness::run(&fixture, 2)?;

    // Listing 1 of the paper, against the same store.
    let listing1 = result.workflow.query(
        r#"SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne" .
  ?areaB lai:hasLai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA, ?geoB))
}"#,
    )?;
    println!(
        "\nListing 1 (LAI observations in the Bois de Boulogne): {} rows",
        listing1.len()
    );

    // The per-class series behind Figure 4.
    println!("\nmean LAI per CORINE class per month:");
    print!("{:<40}", "class");
    if let Some(first) = result.per_class.first() {
        for (t, _) in &first.series {
            print!(" {:>7}", &format_date(*t)[5..]);
        }
    }
    println!();
    for class in &result.per_class {
        print!("{:<40}", class.class);
        for (_, mean) in &class.series {
            print!(" {mean:>7.2}");
        }
        println!();
    }
    match greenness::green_beats_industrial(&result.per_class) {
        Some(true) => println!(
            "\n=> green urban areas show higher LAI than industrial areas in every month (Figure 4's observation)"
        ),
        other => println!("\n=> unexpected outcome: {other:?}"),
    }

    // Figure 4 as SVG (July snapshot) + the map ontology RDF.
    let july = result.map.timeline().get(6).copied();
    let svg = copernicus_app_lab::sextant::render_svg(
        &result.map,
        &RenderOptions {
            at_time: july,
            ..RenderOptions::default()
        },
    );
    std::fs::write("greenness_of_paris.svg", &svg)?;
    let map_rdf = map_to_rdf(&result.map, "http://www.app-lab.eu/maps/greenness-of-paris");
    std::fs::write(
        "greenness_of_paris.ttl",
        copernicus_app_lab::rdf::turtle::write_turtle(&map_rdf),
    )?;
    println!(
        "\nwrote greenness_of_paris.svg ({} bytes) and greenness_of_paris.ttl",
        svg.len()
    );
    Ok(())
}
