//! EXPLAIN/profiling across both workflows (the `applab-obs` span trees).
//!
//! ```text
//! cargo run --release --example explain
//! ```
//!
//! Builds the materialized (Strabon-like store) and virtual
//! (Ontop-spatial) workflows over the same synthetic Paris tables, then
//! runs all seven mini-Geographica query classes through
//! `query_explained` on both backends. For each query it prints the
//! per-stage span tree — parse/scan/join/filter/project timings with
//! build/probe cardinalities — and asserts the two backends agree on the
//! row counts. Ends with the Prometheus rendering of the metrics the run
//! accumulated.

use applab_bench::geographica_queries;
use copernicus_app_lab::core::{MaterializedWorkflow, QueryEndpoint, VirtualWorkflowBuilder};
use copernicus_app_lab::data::{mappings, ParisFixture};
use copernicus_app_lab::sparql::{EvalOptions, QueryResults};

fn rows(r: &QueryResults) -> usize {
    match r {
        QueryResults::Solutions { rows, .. } => rows.len(),
        _ => 0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fixture = ParisFixture::generate(2019, 20, 8);
    let tables = [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ];

    // Left path: materialize through GeoTriples into the store.
    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in &tables {
        mat.load_table(table, doc)?;
    }
    println!("materialized {} triples", mat.len());

    // Right path: the same tables behind the OBDA engine. The builder
    // accumulates configuration; `seal()` compiles the virtual graph into
    // a shareable query endpoint.
    let mut builder = VirtualWorkflowBuilder::local();
    for (table, doc) in tables {
        builder.add_table(table);
        builder.add_mappings(doc)?;
    }
    let virt = builder.seal()?;

    // Both workflows behind the uniform endpoint trait, as the service
    // sees them.
    let store_ep: &dyn QueryEndpoint = &mat;
    let obda_ep: &dyn QueryEndpoint = &virt;

    for (name, sparql) in geographica_queries() {
        let store = store_ep.query_explained(&sparql)?;
        let obda = obda_ep.query_explained(&sparql)?;
        assert_eq!(
            rows(&store.results),
            rows(&obda.results),
            "{name}: store and obda backends disagree"
        );
        println!(
            "\n=== {name} ({} rows) ===\n--- store ({:.3} ms) ---\n{}--- obda ({:.3} ms) ---\n{}",
            rows(&store.results),
            store.total_duration_ns() as f64 / 1e6,
            store.report(),
            obda.total_duration_ns() as f64 / 1e6,
            obda.report(),
        );
    }

    // The cost-based planner under EXPLAIN: the scan spans now carry the
    // plan — `est_rows` (the statistics estimate) next to `rows` (what the
    // scan actually produced), the chosen access path, and `pruned_rows`
    // for the build-side Bloom/min-max filters. The spatial join is the
    // class where ordering matters most, so it is the showcase.
    let planner = EvalOptions::default().planner(true);
    for (name, sparql) in geographica_queries() {
        if name != "Join_Parks_LandCover" && name != "Selection_Within_Attribute" {
            continue;
        }
        let plain = mat.query_explained(&sparql)?;
        let planned = mat.query_explained_with(&sparql, &planner)?;
        assert_eq!(
            rows(&plain.results),
            rows(&planned.results),
            "{name}: planner changed the row count"
        );
        println!(
            "\n=== {name} planned ({} rows) ===\n--- planner off ({:.3} ms) ---\n{}--- planner on ({:.3} ms) ---\n{}",
            rows(&planned.results),
            plain.total_duration_ns() as f64 / 1e6,
            plain.report(),
            planned.total_duration_ns() as f64 / 1e6,
            planned.report(),
        );
    }

    println!("\n=== metrics after the run ===");
    println!("{}", copernicus_app_lab::obs::global().to_prometheus());
    Ok(())
}
