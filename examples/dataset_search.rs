//! EO dataset discovery through schema.org annotations (Section 5).
//!
//! ```text
//! cargo run --example dataset_search
//! ```
//!
//! Annotates Copernicus datasets with the schema.org EO extension and
//! answers the paper's motivating question: "Is there a land cover dataset
//! produced by the European Environmental Agency covering the area of
//! Torino, Italy?"

use copernicus_app_lab::catalog::schema_org::{corine_annotation, EoDataset, EoExtension};
use copernicus_app_lab::catalog::{CatalogIndex, SearchQuery};
use copernicus_app_lab::geo::{Coord, Envelope};

fn main() {
    let mut catalog = CatalogIndex::new();

    // CORINE (EEA, pan-European) — the dataset the question targets.
    let corine = corine_annotation();
    println!(
        "JSON-LD annotation for dataset search engines:\n{}",
        corine.to_json_ld()
    );
    catalog.add(corine);

    // Urban Atlas (EEA, but urban areas only).
    catalog.add(EoDataset {
        id: "http://data.example.org/datasets/urban-atlas-2012".into(),
        name: "Urban Atlas 2012".into(),
        description: "Land use and land cover for European urban areas above 100k inhabitants"
            .into(),
        keywords: vec!["land use".into(), "urban".into(), "land cover".into()],
        creator: "European Environment Agency".into(),
        spatial_coverage: Some(Envelope::new(-10.0, 35.0, 30.0, 60.0)),
        eo: EoExtension {
            product_type: Some("land cover".into()),
            resolution_m: Some(10.0),
            ..EoExtension::default()
        },
        ..EoDataset::default()
    });

    // Global LAI (VITO) — wrong producer and product for the question.
    catalog.add(EoDataset {
        id: "http://data.example.org/datasets/cgls-lai-300m".into(),
        name: "Copernicus Global Land LAI 300m".into(),
        description: "Leaf area index time series from PROBA-V".into(),
        keywords: vec!["LAI".into(), "vegetation".into()],
        creator: "VITO".into(),
        spatial_coverage: Some(Envelope::new(-180.0, -60.0, 180.0, 80.0)),
        eo: EoExtension {
            platform: Some("PROBA-V".into()),
            product_type: Some("LAI".into()),
            resolution_m: Some(300.0),
            ..EoExtension::default()
        },
        ..EoDataset::default()
    });

    // The motivating question from the paper's introduction.
    let torino = Coord::new(7.6869, 45.0703);
    let query = SearchQuery::text(&["land", "cover"])
        .creator("european environment")
        .covering(torino);
    let hits = catalog.search(&query);

    println!("\n\"Is there a land cover dataset produced by the European");
    println!("Environmental Agency covering the area of Torino, Italy?\"\n");
    for hit in &hits {
        let d = catalog.get(&hit.id).expect("hit resolves");
        println!("  [{:.2}] {} — {} ({})", hit.score, d.name, d.creator, d.id);
    }
    assert!(!hits.is_empty(), "the answer is yes");
    println!("\n=> yes: {} matching dataset(s).", hits.len());
}
