//! The thematic map model.

use crate::style::{Color, Style};
use applab_geo::{Envelope, Geometry};
use applab_rdf::Literal;
use applab_sparql::QueryResults;

/// One feature of a layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    pub geometry: Geometry,
    /// Thematic value (drives value-ramp styles).
    pub value: Option<f64>,
    pub label: Option<String>,
    /// Timestamp for time-evolving layers (epoch seconds).
    pub time: Option<i64>,
}

/// A map layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    pub title: String,
    /// Where the layer's data came from (endpoint URL, file, query) — kept
    /// for the map ontology's `map:hasSource`.
    pub source: String,
    pub style: Style,
    pub features: Vec<Feature>,
}

impl Layer {
    pub fn new(title: impl Into<String>, style: Style) -> Self {
        Layer {
            title: title.into(),
            source: String::new(),
            style,
            features: Vec::new(),
        }
    }

    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = source.into();
        self
    }

    /// Build a layer from SPARQL query results: `geom_var` must bind WKT
    /// literals; `value_var`, `label_var` and `time_var` are optional
    /// bindings. Rows with unparsable/missing geometry are skipped.
    pub fn from_results(
        title: &str,
        style: Style,
        results: &QueryResults,
        geom_var: &str,
        value_var: Option<&str>,
        label_var: Option<&str>,
        time_var: Option<&str>,
    ) -> Layer {
        let mut layer = Layer::new(title, style);
        for i in 0..results.len() {
            let Some(geometry) = results
                .value(i, geom_var)
                .and_then(|t| t.as_literal())
                .and_then(Literal::as_geometry)
            else {
                continue;
            };
            let value = value_var
                .and_then(|v| results.value(i, v))
                .and_then(|t| t.as_literal())
                .and_then(Literal::as_f64);
            let label = label_var
                .and_then(|v| results.value(i, v))
                .and_then(|t| t.as_literal())
                .map(|l| l.value().to_string());
            let time = time_var
                .and_then(|v| results.value(i, v))
                .and_then(|t| t.as_literal())
                .and_then(Literal::as_datetime);
            layer.features.push(Feature {
                geometry,
                value,
                label,
                time,
            });
        }
        layer
    }

    /// The layer's bounding envelope.
    pub fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        for f in &self.features {
            e.expand(&f.geometry.envelope());
        }
        e
    }

    /// Distinct timestamps of the layer's features, ascending.
    pub fn timestamps(&self) -> Vec<i64> {
        let mut ts: Vec<i64> = self.features.iter().filter_map(|f| f.time).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

/// A thematic map: ordered layers (later = on top).
#[derive(Debug, Clone, PartialEq)]
pub struct Map {
    pub title: String,
    pub layers: Vec<Layer>,
}

impl Map {
    pub fn new(title: impl Into<String>) -> Self {
        Map {
            title: title.into(),
            layers: Vec::new(),
        }
    }

    pub fn add_layer(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    pub fn envelope(&self) -> Envelope {
        let mut e = Envelope::EMPTY;
        for l in &self.layers {
            e.expand(&l.envelope());
        }
        e
    }

    /// All distinct timestamps across layers — the map's timeline.
    pub fn timeline(&self) -> Vec<i64> {
        let mut ts: Vec<i64> = self.layers.iter().flat_map(|l| l.timestamps()).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

/// The default layer styles of the Figure 4 reproduction.
pub fn figure4_styles() -> Vec<(&'static str, Style)> {
    vec![
        (
            "CORINE land cover",
            Style::Fill {
                color: Color::GREEN,
                opacity: 0.25,
            },
        ),
        (
            "Urban Atlas",
            Style::Fill {
                color: Color::BROWN,
                opacity: 0.25,
            },
        ),
        (
            "OpenStreetMap parks",
            Style::Fill {
                color: Color::GREEN,
                opacity: 0.5,
            },
        ),
        (
            "GADM administrative areas",
            Style::Stroke {
                color: Color::MAGENTA,
                width: 1.2,
            },
        ),
        (
            "LAI observations",
            Style::ValueRamp {
                min: 0.0,
                max: 6.0,
                low: Color::YELLOW,
                high: Color::GREEN,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::{vocab, Graph, NamedNode, Resource};

    fn results() -> QueryResults {
        let mut g = Graph::new();
        for (i, (wkt, lai, t)) in [
            ("POINT (2.2 48.8)", 3.5, 0i64),
            ("POINT (2.3 48.9)", 1.0, 86_400),
        ]
        .iter()
        .enumerate()
        {
            let s = Resource::named(format!("http://ex.org/o{i}"));
            g.add(
                s.clone(),
                NamedNode::new(vocab::geo::AS_WKT),
                Literal::wkt(*wkt),
            );
            g.add(
                s.clone(),
                NamedNode::new(vocab::lai::HAS_LAI),
                Literal::float(*lai),
            );
            g.add(
                s,
                NamedNode::new(vocab::time::HAS_TIME),
                Literal::datetime(*t),
            );
        }
        applab_sparql::query(
            &g,
            "SELECT ?wkt ?lai ?t WHERE { ?s geo:asWKT ?wkt . ?s lai:hasLai ?lai . ?s time:hasTime ?t }",
        )
        .unwrap()
    }

    #[test]
    fn layer_from_results() {
        let layer = Layer::from_results(
            "LAI",
            Style::ValueRamp {
                min: 0.0,
                max: 6.0,
                low: Color::YELLOW,
                high: Color::GREEN,
            },
            &results(),
            "wkt",
            Some("lai"),
            None,
            Some("t"),
        );
        assert_eq!(layer.features.len(), 2);
        assert_eq!(layer.features[0].value, Some(3.5));
        assert_eq!(layer.timestamps(), vec![0, 86_400]);
        let env = layer.envelope();
        assert!(env.contains_coord(applab_geo::Coord::new(2.2, 48.8)));
    }

    #[test]
    fn skips_rows_without_geometry() {
        let r = QueryResults::Solutions {
            variables: vec!["wkt".into()],
            rows: vec![
                applab_sparql::Row {
                    values: vec![Some(Literal::string("not wkt").into())],
                },
                applab_sparql::Row {
                    values: vec![Some(Literal::wkt("POINT (0 0)").into())],
                },
                applab_sparql::Row { values: vec![None] },
            ],
        };
        let layer = Layer::from_results(
            "x",
            Style::Point {
                color: Color::BLUE,
                radius: 2.0,
            },
            &r,
            "wkt",
            None,
            None,
            None,
        );
        assert_eq!(layer.features.len(), 1);
    }

    #[test]
    fn map_timeline_merges_layers() {
        let mut m = Map::new("greenness of Paris");
        let layer = Layer::from_results(
            "LAI",
            Style::Point {
                color: Color::GREEN,
                radius: 2.0,
            },
            &results(),
            "wkt",
            None,
            None,
            Some("t"),
        );
        m.add_layer(layer);
        let mut boundaries = Layer::new(
            "admin",
            Style::Stroke {
                color: Color::MAGENTA,
                width: 1.0,
            },
        );
        boundaries.features.push(Feature {
            geometry: Geometry::rect(2.0, 48.0, 3.0, 49.0),
            value: None,
            label: Some("Paris".into()),
            time: None,
        });
        m.add_layer(boundaries);
        assert_eq!(m.timeline(), vec![0, 86_400]);
        assert_eq!(m.layers.len(), 2);
        assert!(m
            .envelope()
            .contains_coord(applab_geo::Coord::new(2.5, 48.5)));
    }

    #[test]
    fn figure4_has_five_layers() {
        assert_eq!(figure4_styles().len(), 5);
    }
}
