//! Layer styling.

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color(pub u8, pub u8, pub u8);

impl Color {
    pub const GREEN: Color = Color(0x2e, 0x8b, 0x57);
    pub const MAGENTA: Color = Color(0xd0, 0x2e, 0xd0);
    pub const GRAY: Color = Color(0x88, 0x88, 0x88);
    pub const BROWN: Color = Color(0x8b, 0x5a, 0x2b);
    pub const BLUE: Color = Color(0x1f, 0x77, 0xb4);
    pub const YELLOW: Color = Color(0xff, 0xdd, 0x30);

    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }

    /// Linear interpolation toward `other`.
    pub fn lerp(&self, other: Color, f: f64) -> Color {
        let f = f.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * f).round() as u8;
        Color(
            mix(self.0, other.0),
            mix(self.1, other.1),
            mix(self.2, other.2),
        )
    }
}

/// How a layer is drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum Style {
    /// Outlines only (e.g. administrative boundaries in magenta, as in
    /// Figure 4).
    Stroke { color: Color, width: f64 },
    /// Filled areas with fixed color.
    Fill { color: Color, opacity: f64 },
    /// Point circles with fixed color.
    Point { color: Color, radius: f64 },
    /// Value-driven choropleth/proportional points: colors interpolate
    /// between `low` and `high` over [min, max] (the LAI circles of
    /// Figure 4).
    ValueRamp {
        min: f64,
        max: f64,
        low: Color,
        high: Color,
    },
}

impl Style {
    /// The color for a feature value under this style.
    pub fn color_for(&self, value: Option<f64>) -> Color {
        match self {
            Style::Stroke { color, .. }
            | Style::Fill { color, .. }
            | Style::Point { color, .. } => *color,
            Style::ValueRamp {
                min,
                max,
                low,
                high,
            } => {
                let v = value.unwrap_or(*min);
                let span = (max - min).max(f64::EPSILON);
                low.lerp(*high, (v - min) / span)
            }
        }
    }

    /// A short lexical form for the map ontology (`map:hasStyle`).
    pub fn descriptor(&self) -> String {
        match self {
            Style::Stroke { color, width } => format!("stroke:{}:{width}", color.hex()),
            Style::Fill { color, opacity } => format!("fill:{}:{opacity}", color.hex()),
            Style::Point { color, radius } => format!("point:{}:{radius}", color.hex()),
            Style::ValueRamp {
                min,
                max,
                low,
                high,
            } => {
                format!("ramp:{}:{}:{min}:{max}", low.hex(), high.hex())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_format() {
        assert_eq!(Color(0, 128, 255).hex(), "#0080ff");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Color(0, 0, 0);
        let b = Color(200, 100, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Color(100, 50, 25));
        assert_eq!(a.lerp(b, 5.0), b); // clamped
    }

    #[test]
    fn ramp_colors() {
        let s = Style::ValueRamp {
            min: 0.0,
            max: 10.0,
            low: Color(0, 0, 0),
            high: Color(0, 200, 0),
        };
        assert_eq!(s.color_for(Some(0.0)), Color(0, 0, 0));
        assert_eq!(s.color_for(Some(10.0)), Color(0, 200, 0));
        assert_eq!(s.color_for(Some(5.0)), Color(0, 100, 0));
        assert_eq!(s.color_for(None), Color(0, 0, 0)); // missing → min
    }

    #[test]
    fn descriptors() {
        assert!(Style::Stroke {
            color: Color::MAGENTA,
            width: 1.5
        }
        .descriptor()
        .starts_with("stroke:#"));
        assert!(Style::ValueRamp {
            min: 0.0,
            max: 6.0,
            low: Color::YELLOW,
            high: Color::GREEN
        }
        .descriptor()
        .starts_with("ramp:#"));
    }
}
