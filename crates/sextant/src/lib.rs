//! Sextant: visualizing time-evolving linked geospatial data.
//!
//! Section 3.3: "a web-based and mobile ready application for exploring,
//! interacting and visualizing time-evolving linked geospatial data ...
//! The core feature of Sextant is the ability to create thematic maps by
//! combining geospatial and temporal information that exists in a number of
//! heterogeneous data sources ... Each thematic map is represented using a
//! map ontology that assists on modelling these maps in RDF."
//!
//! * [`map`] — the thematic-map model: layers of (geometry, value, label,
//!   timestamp) features, built from GeoSPARQL query results or graphs;
//! * [`style`] — layer styling, including value ramps for choropleths;
//! * [`svg`] — the renderer (Figure 4 is regenerated as an SVG);
//! * [`ontology`] — maps ↔ RDF via the map ontology, "allowing for easy
//!   sharing, editing and search mechanisms over existing maps".
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod map;
pub mod ontology;
pub mod style;
pub mod svg;

pub use map::{Feature, Layer, Map};
pub use style::Style;
pub use svg::render_svg;
