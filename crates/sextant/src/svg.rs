//! SVG rendering of thematic maps.

use crate::map::{Feature, Map};
use crate::style::Style;
use applab_geo::{Coord, Envelope, Geometry, LineString, Polygon};
use std::fmt::Write;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    pub width: u32,
    pub height: u32,
    /// Only draw time-stamped features with this timestamp (features
    /// without a timestamp are always drawn). `None` draws everything.
    pub at_time: Option<i64>,
    /// Extra margin around the data envelope, as a fraction.
    pub margin: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 800,
            height: 600,
            at_time: None,
            margin: 0.05,
        }
    }
}

struct Projection {
    env: Envelope,
    width: f64,
    height: f64,
}

impl Projection {
    fn project(&self, c: Coord) -> (f64, f64) {
        let x = (c.x - self.env.min_x) / self.env.width() * self.width;
        // SVG y grows downward.
        let y = (1.0 - (c.y - self.env.min_y) / self.env.height()) * self.height;
        (x, y)
    }
}

/// Render a map to an SVG document.
pub fn render_svg(map: &Map, options: &RenderOptions) -> String {
    let mut env = map.envelope();
    if env.is_empty() {
        env = Envelope::new(0.0, 0.0, 1.0, 1.0);
    }
    let margin_x = env.width().max(1e-9) * options.margin;
    let margin_y = env.height().max(1e-9) * options.margin;
    let env = Envelope::new(
        env.min_x - margin_x,
        env.min_y - margin_y,
        env.max_x + margin_x,
        env.max_y + margin_y,
    );
    let proj = Projection {
        env,
        width: options.width as f64,
        height: options.height as f64,
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        options.width, options.height, options.width, options.height
    );
    let _ = writeln!(out, "  <title>{}</title>", xml_escape(&map.title));
    for layer in &map.layers {
        let _ = writeln!(out, "  <g id=\"{}\">", xml_escape(&slug(&layer.title)));
        for feature in &layer.features {
            if let (Some(t), Some(at)) = (feature.time, options.at_time) {
                if t != at {
                    continue;
                }
            }
            render_feature(&mut out, feature, &layer.style, &proj);
        }
        out.push_str("  </g>\n");
    }
    out.push_str("</svg>\n");
    out
}

fn render_feature(out: &mut String, feature: &Feature, style: &Style, proj: &Projection) {
    let color = style.color_for(feature.value).hex();
    let title = feature
        .label
        .as_ref()
        .map(|l| format!("<title>{}</title>", xml_escape(l)))
        .unwrap_or_default();
    match &feature.geometry {
        Geometry::Point(p) => {
            let (x, y) = proj.project(p.coord());
            let radius = match style {
                Style::Point { radius, .. } => *radius,
                Style::ValueRamp { .. } => 4.0,
                _ => 3.0,
            };
            let _ = writeln!(
                out,
                "    <circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"{radius}\" fill=\"{color}\">{title}</circle>"
            );
        }
        Geometry::MultiPoint(ps) => {
            for p in ps {
                let (x, y) = proj.project(p.coord());
                let _ = writeln!(
                    out,
                    "    <circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"3\" fill=\"{color}\"/>"
                );
            }
        }
        Geometry::LineString(ls) => render_line(out, ls, style, &color, proj),
        Geometry::MultiLineString(lines) => {
            for ls in lines {
                render_line(out, ls, style, &color, proj);
            }
        }
        Geometry::Polygon(p) => render_polygon(out, p, style, &color, &title, proj),
        Geometry::MultiPolygon(ps) => {
            for p in ps {
                render_polygon(out, p, style, &color, &title, proj);
            }
        }
        Geometry::GeometryCollection(gs) => {
            for g in gs {
                let f = Feature {
                    geometry: g.clone(),
                    ..feature.clone()
                };
                render_feature(out, &f, style, proj);
            }
        }
    }
}

fn path_of(ls: &LineString, proj: &Projection, close: bool) -> String {
    let mut d = String::new();
    for (i, &c) in ls.coords().iter().enumerate() {
        let (x, y) = proj.project(c);
        let _ = write!(d, "{}{x:.2} {y:.2} ", if i == 0 { "M" } else { "L" });
    }
    if close {
        d.push('Z');
    }
    d.trim_end().to_string()
}

fn render_line(out: &mut String, ls: &LineString, style: &Style, color: &str, proj: &Projection) {
    let width = match style {
        Style::Stroke { width, .. } => *width,
        _ => 1.0,
    };
    let _ = writeln!(
        out,
        "    <path d=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{width}\"/>",
        path_of(ls, proj, false)
    );
}

fn render_polygon(
    out: &mut String,
    p: &Polygon,
    style: &Style,
    color: &str,
    title: &str,
    proj: &Projection,
) {
    let mut d = String::new();
    for ring in p.rings() {
        d.push_str(&path_of(ring, proj, true));
        d.push(' ');
    }
    let d = d.trim_end();
    match style {
        Style::Stroke { width, .. } => {
            let _ = writeln!(
                out,
                "    <path d=\"{d}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{width}\" fill-rule=\"evenodd\">{title}</path>"
            );
        }
        Style::Fill { opacity, .. } => {
            let _ = writeln!(
                out,
                "    <path d=\"{d}\" fill=\"{color}\" fill-opacity=\"{opacity}\" stroke=\"{color}\" fill-rule=\"evenodd\">{title}</path>"
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "    <path d=\"{d}\" fill=\"{color}\" fill-opacity=\"0.8\" fill-rule=\"evenodd\">{title}</path>"
            );
        }
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Layer;
    use crate::style::Color;

    fn test_map() -> Map {
        let mut m = Map::new("greenness of Paris");
        let mut admin = Layer::new(
            "GADM",
            Style::Stroke {
                color: Color::MAGENTA,
                width: 1.0,
            },
        );
        admin.features.push(Feature {
            geometry: Geometry::rect(2.0, 48.0, 3.0, 49.0),
            value: None,
            label: Some("Paris".into()),
            time: None,
        });
        m.add_layer(admin);
        let mut lai = Layer::new(
            "LAI",
            Style::ValueRamp {
                min: 0.0,
                max: 6.0,
                low: Color::YELLOW,
                high: Color::GREEN,
            },
        );
        for (i, t) in [(0, 0i64), (1, 86_400)] {
            lai.features.push(Feature {
                geometry: Geometry::point(2.2 + i as f64 / 10.0, 48.5),
                value: Some(3.0 * (i + 1) as f64),
                label: None,
                time: Some(t),
            });
        }
        m.add_layer(lai);
        m
    }

    #[test]
    fn svg_structure() {
        let svg = render_svg(&test_map(), &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<title>greenness of Paris</title>"));
        assert!(svg.contains("<g id=\"gadm\">"));
        assert!(svg.contains("<g id=\"lai\">"));
        assert!(svg.contains("<path"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("<title>Paris</title>"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn time_filter_restricts_features() {
        let m = test_map();
        let at0 = render_svg(
            &m,
            &RenderOptions {
                at_time: Some(0),
                ..RenderOptions::default()
            },
        );
        // One LAI point at t=0, the untimed boundary always drawn.
        assert_eq!(at0.matches("<circle").count(), 1);
        assert!(at0.contains("<path"));
    }

    #[test]
    fn value_ramp_colors_differ() {
        let svg = render_svg(&test_map(), &RenderOptions::default());
        // Two different LAI values → two different fill colors.
        let colors: Vec<&str> = svg
            .match_indices("<circle")
            .map(|(i, _)| {
                let rest = &svg[i..];
                let f = rest.find("fill=\"").unwrap() + 6;
                &rest[f..f + 7]
            })
            .collect();
        assert_eq!(colors.len(), 2);
        assert_ne!(colors[0], colors[1]);
    }

    #[test]
    fn empty_map_renders() {
        let svg = render_svg(&Map::new("empty"), &RenderOptions::default());
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn projection_flips_y() {
        let proj = Projection {
            env: Envelope::new(0.0, 0.0, 10.0, 10.0),
            width: 100.0,
            height: 100.0,
        };
        let (x, y) = proj.project(Coord::new(0.0, 0.0));
        assert_eq!((x, y), (0.0, 100.0)); // bottom-left → bottom of the SVG
        let (x, y) = proj.project(Coord::new(10.0, 10.0));
        assert_eq!((x, y), (100.0, 0.0));
    }
}
