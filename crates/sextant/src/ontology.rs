//! Maps as RDF, via the map ontology.
//!
//! "Each thematic map is represented using a map ontology that assists on
//! modelling these maps in RDF and allow for easy sharing, editing and
//! search mechanisms over existing maps" (Section 3.3).

use crate::map::{Layer, Map};
use crate::style::{Color, Style};
use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term};

/// Serialize a map (its structure, not its feature data) to RDF.
pub fn map_to_rdf(map: &Map, map_iri: &str) -> Graph {
    let mut g = Graph::new();
    let m = Resource::named(map_iri);
    g.add(
        m.clone(),
        NamedNode::new(vocab::rdf::TYPE),
        Term::named(vocab::map::MAP),
    );
    g.add(
        m.clone(),
        NamedNode::new(vocab::map::HAS_TITLE),
        Literal::string(&*map.title),
    );
    for (i, layer) in map.layers.iter().enumerate() {
        let l = Resource::named(format!("{map_iri}/layer/{i}"));
        g.add(
            m.clone(),
            NamedNode::new(vocab::map::HAS_LAYER),
            Term::named(format!("{map_iri}/layer/{i}")),
        );
        g.add(
            l.clone(),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::map::LAYER),
        );
        g.add(
            l.clone(),
            NamedNode::new(vocab::map::HAS_TITLE),
            Literal::string(&*layer.title),
        );
        g.add(
            l.clone(),
            NamedNode::new(vocab::map::HAS_ORDER),
            Literal::integer(i as i64),
        );
        g.add(
            l.clone(),
            NamedNode::new(vocab::map::HAS_STYLE),
            Literal::string(layer.style.descriptor()),
        );
        if !layer.source.is_empty() {
            g.add(
                l.clone(),
                NamedNode::new(vocab::map::HAS_SOURCE),
                Literal::string(&*layer.source),
            );
        }
        for t in layer.timestamps() {
            g.add(
                l.clone(),
                NamedNode::new(vocab::map::HAS_TIMESTAMP),
                Literal::datetime(t),
            );
        }
    }
    g
}

/// Rebuild a map skeleton (titles, order, styles, sources — not features)
/// from its RDF representation.
pub fn map_from_rdf(graph: &Graph, map_iri: &str) -> Option<Map> {
    let m = Resource::named(map_iri);
    let title = graph
        .object_of(&m, &NamedNode::new(vocab::map::HAS_TITLE))?
        .as_literal()?
        .value()
        .to_string();
    let mut map = Map::new(title);
    let mut layers: Vec<(i64, Layer)> = Vec::new();
    for t in graph.matching(Some(&m), Some(&NamedNode::new(vocab::map::HAS_LAYER)), None) {
        let l = t.object.as_resource()?;
        let ltitle = graph
            .object_of(&l, &NamedNode::new(vocab::map::HAS_TITLE))?
            .as_literal()?
            .value()
            .to_string();
        let order = graph
            .object_of(&l, &NamedNode::new(vocab::map::HAS_ORDER))
            .and_then(|t| t.as_literal())
            .and_then(Literal::as_i64)
            .unwrap_or(0);
        let style = graph
            .object_of(&l, &NamedNode::new(vocab::map::HAS_STYLE))
            .and_then(|t| t.as_literal())
            .map(|l| parse_style(l.value()))
            .unwrap_or(Style::Stroke {
                color: Color::GRAY,
                width: 1.0,
            });
        let mut layer = Layer::new(ltitle, style);
        if let Some(src) = graph
            .object_of(&l, &NamedNode::new(vocab::map::HAS_SOURCE))
            .and_then(|t| t.as_literal())
        {
            layer.source = src.value().to_string();
        }
        layers.push((order, layer));
    }
    layers.sort_by_key(|(o, _)| *o);
    for (_, l) in layers {
        map.add_layer(l);
    }
    Some(map)
}

fn parse_color(hex: &str) -> Color {
    let h = hex.trim_start_matches('#');
    if h.len() != 6 {
        return Color::GRAY;
    }
    let p = |i: usize| u8::from_str_radix(&h[i..i + 2], 16).unwrap_or(0x88);
    Color(p(0), p(2), p(4))
}

fn parse_style(descriptor: &str) -> Style {
    let parts: Vec<&str> = descriptor.split(':').collect();
    match parts.as_slice() {
        ["stroke", color, width] => Style::Stroke {
            color: parse_color(color),
            width: width.parse().unwrap_or(1.0),
        },
        ["fill", color, opacity] => Style::Fill {
            color: parse_color(color),
            opacity: opacity.parse().unwrap_or(1.0),
        },
        ["point", color, radius] => Style::Point {
            color: parse_color(color),
            radius: radius.parse().unwrap_or(3.0),
        },
        ["ramp", low, high, min, max] => Style::ValueRamp {
            min: min.parse().unwrap_or(0.0),
            max: max.parse().unwrap_or(1.0),
            low: parse_color(low),
            high: parse_color(high),
        },
        _ => Style::Stroke {
            color: Color::GRAY,
            width: 1.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Feature;

    fn sample_map() -> Map {
        let mut m = Map::new("greenness of Paris");
        let mut layer = Layer::new(
            "LAI",
            Style::ValueRamp {
                min: 0.0,
                max: 6.0,
                low: Color::YELLOW,
                high: Color::GREEN,
            },
        )
        .with_source("http://test.strabon.di.uoa.gr/endpoint?query=...");
        layer.features.push(Feature {
            geometry: applab_geo::Geometry::point(2.2, 48.8),
            value: Some(3.0),
            label: None,
            time: Some(86_400),
        });
        m.add_layer(layer);
        m.add_layer(Layer::new(
            "admin",
            Style::Stroke {
                color: Color::MAGENTA,
                width: 1.2,
            },
        ));
        m
    }

    #[test]
    fn rdf_roundtrip() {
        let m = sample_map();
        let g = map_to_rdf(&m, "http://ex.org/maps/m1");
        // Structure checks.
        assert_eq!(
            g.instances_of(&NamedNode::new(vocab::map::LAYER)).count(),
            2
        );
        let back = map_from_rdf(&g, "http://ex.org/maps/m1").unwrap();
        assert_eq!(back.title, m.title);
        assert_eq!(back.layers.len(), 2);
        assert_eq!(back.layers[0].title, "LAI");
        assert_eq!(back.layers[0].style, m.layers[0].style);
        assert_eq!(back.layers[0].source, m.layers[0].source);
        assert_eq!(back.layers[1].style, m.layers[1].style);
    }

    #[test]
    fn rdf_serializes_as_turtle() {
        let g = map_to_rdf(&sample_map(), "http://ex.org/maps/m1");
        let text = applab_rdf::turtle::write_turtle(&g);
        assert!(text.contains("map:hasLayer"));
        let parsed = applab_rdf::turtle::parse_turtle(&text).unwrap();
        assert_eq!(parsed.len(), g.len());
    }

    #[test]
    fn missing_map_is_none() {
        let g = Graph::new();
        assert!(map_from_rdf(&g, "http://ex.org/maps/none").is_none());
    }

    #[test]
    fn style_parsing_tolerates_garbage() {
        assert_eq!(
            parse_style("nonsense"),
            Style::Stroke {
                color: Color::GRAY,
                width: 1.0
            }
        );
        assert_eq!(parse_color("#zzzzzz"), Color(0x88, 0x88, 0x88));
        assert_eq!(parse_color("bad"), Color::GRAY);
    }
}
