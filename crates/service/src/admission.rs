//! Admission control: bounded in-flight permits with a small wait queue
//! and queue-delay-based adaptive shedding.
//!
//! The service grants at most `max_in_flight` permits at a time. A query
//! arriving while all permits are taken waits in a bounded queue for up to
//! a configurable duration; a query arriving while the queue is also full
//! is rejected immediately. On top of the fixed bounds sits an adaptive
//! shedder: every granted permit feeds its measured queue wait into an
//! EWMA ([`applab_obs::Ewma`]), and when a `queue_delay_target` is
//! configured, arrivals that would have to queue while the smoothed delay
//! exceeds the target are shed at the door — the queue is already slower
//! than the caller is willing to tolerate, so waiting would only convert
//! the rejection into a slower one. All rejection flavours surface as
//! [`applab_core::CoreError::Overloaded`] carrying a `retry_after`
//! computed from the smoothed delay — load shedding is a structured,
//! actionable outcome, not an error string.
//!
//! Shed decisions are observable per flavour through
//! `applab_service_shed_total{kind}` (`queue_full` / `queue_timeout` /
//! `queue_delay`) and the smoothed delay itself through the
//! `applab_service_queue_delay_ewma_us` gauge.

use applab_obs::Ewma;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Weight of each new queue-wait sample in the smoothed delay. 0.2 means
/// the average forgets ~90% of its history within ~10 grants: fast enough
/// to open back up promptly after a burst drains, slow enough that one
/// stray slow grant does not trip the shedder.
const DELAY_EWMA_ALPHA: f64 = 0.2;

/// Bounds on the computed `Retry-After`, in whole seconds: at least 1
/// (HTTP has no sub-second `Retry-After`), at most 30 (past that the
/// estimate says more about the smoothing horizon than about the queue).
const RETRY_AFTER_SECS: (f64, f64) = (1.0, 30.0);

#[derive(Debug, Default)]
struct State {
    in_flight: usize,
    queued: usize,
}

/// A load snapshot taken when a query was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rejection {
    /// Queries holding permits at rejection time.
    pub in_flight: usize,
    /// Queries waiting for permits at rejection time.
    pub queued: usize,
    /// Why the query was shed — a stable low-cardinality label for
    /// `applab_service_shed_total{kind}`: `"queue_full"` (turned away at
    /// the door), `"queue_timeout"` (waited, no permit in time), or
    /// `"queue_delay"` (adaptive shedder: smoothed queue delay above
    /// target).
    pub kind: &'static str,
    /// How long the caller should wait before retrying, computed from
    /// the smoothed queue delay at rejection time.
    pub retry_after: Duration,
}

#[derive(Debug)]
pub(crate) struct Admission {
    max_in_flight: usize,
    max_queue: usize,
    /// Adaptive shedding target: `None` disables the shedder and keeps
    /// the fixed permit/queue bounds as the only admission policy.
    queue_delay_target: Option<Duration>,
    state: Mutex<State>,
    available: Condvar,
    /// Smoothed queue wait in seconds, fed by every grant (zero-wait
    /// grants decay it) and by queue-wait timeouts.
    delay_ewma: Ewma,
}

impl Admission {
    pub(crate) fn new(
        max_in_flight: usize,
        max_queue: usize,
        queue_delay_target: Option<Duration>,
    ) -> Self {
        Admission {
            max_in_flight: max_in_flight.max(1),
            max_queue,
            queue_delay_target,
            state: Mutex::new(State::default()),
            available: Condvar::new(),
            delay_ewma: Ewma::new(),
        }
    }

    /// Acquire a permit, waiting in the bounded queue for at most
    /// `queue_timeout`. The returned guard releases the permit on drop.
    pub(crate) fn acquire(&self, queue_timeout: Duration) -> Result<Permit<'_>, Rejection> {
        let arrived = Instant::now();
        let mut st = self.state.lock().expect("admission lock poisoned");
        if st.in_flight < self.max_in_flight {
            st.in_flight += 1;
            self.observe_wait(Duration::ZERO);
            self.publish(&st);
            return Ok(Permit { admission: self });
        }
        // All permits taken: the query would have to queue. The adaptive
        // shedder turns it away right here when the smoothed queue delay
        // already exceeds the target — joining the queue would only make
        // the rejection slower and the queue longer.
        if let Some(target) = self.queue_delay_target {
            if self.delay_ewma.value() > target.as_secs_f64() {
                return Err(self.reject(&st, "queue_delay"));
            }
        }
        if st.queued >= self.max_queue {
            return Err(self.reject(&st, "queue_full"));
        }
        st.queued += 1;
        self.publish(&st);
        let deadline = arrived + queue_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                st.queued -= 1;
                // A timeout is a queue-delay sample too: the queue is at
                // least `queue_timeout` slow for this arrival, and the
                // shedder must see that even when no permit was granted.
                self.observe_wait(arrived.elapsed());
                let r = self.reject(&st, "queue_timeout");
                self.publish(&st);
                return Err(r);
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(st, remaining)
                .expect("admission lock poisoned");
            st = guard;
            if st.in_flight < self.max_in_flight {
                st.queued -= 1;
                st.in_flight += 1;
                self.observe_wait(arrived.elapsed());
                self.publish(&st);
                return Ok(Permit { admission: self });
            }
        }
    }

    /// Current `(in_flight, queued)` counts.
    pub(crate) fn load(&self) -> (usize, usize) {
        let st = self.state.lock().expect("admission lock poisoned");
        (st.in_flight, st.queued)
    }

    /// The smoothed queue wait the shedder is acting on.
    pub(crate) fn queue_delay_ewma(&self) -> Duration {
        Duration::from_secs_f64(self.delay_ewma.value().max(0.0))
    }

    /// Fold a measured queue wait into the smoothed delay and mirror it
    /// to the gauge (microseconds — the gauge is integral).
    fn observe_wait(&self, wait: Duration) {
        let smoothed = self
            .delay_ewma
            .observe(wait.as_secs_f64(), DELAY_EWMA_ALPHA);
        applab_obs::gauge!("applab_service_queue_delay_ewma_us").set((smoothed * 1e6) as i64);
    }

    /// Build the structured rejection for the current state and count it.
    fn reject(&self, st: &State, kind: &'static str) -> Rejection {
        applab_obs::global()
            .counter_with("applab_service_shed_total", &[("kind", kind)])
            .inc();
        let (lo, hi) = RETRY_AFTER_SECS;
        let retry_after = Duration::from_secs(self.delay_ewma.value().ceil().clamp(lo, hi) as u64);
        Rejection {
            in_flight: st.in_flight,
            queued: st.queued,
            kind,
            retry_after,
        }
    }

    fn publish(&self, st: &State) {
        applab_obs::gauge!("applab_service_in_flight").set(st.in_flight as i64);
        applab_obs::gauge!("applab_service_queued").set(st.queued as i64);
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("admission lock poisoned");
        st.in_flight -= 1;
        self.publish(&st);
        drop(st);
        self.available.notify_one();
    }
}

/// A granted in-flight permit; releasing is RAII so a panicking query
/// still frees its slot.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permits_are_granted_up_to_capacity() {
        let adm = Admission::new(2, 0, None);
        let p1 = adm.acquire(Duration::ZERO).unwrap();
        let _p2 = adm.acquire(Duration::ZERO).unwrap();
        let rejected = adm.acquire(Duration::ZERO).unwrap_err();
        assert_eq!(rejected.in_flight, 2);
        assert_eq!(rejected.kind, "queue_full");
        assert!(rejected.retry_after >= Duration::from_secs(1));
        drop(p1);
        assert!(adm.acquire(Duration::ZERO).is_ok());
    }

    #[test]
    fn queue_full_rejects_immediately() {
        let adm = Arc::new(Admission::new(1, 1, None));
        let permit = adm.acquire(Duration::ZERO).unwrap();
        // One waiter fills the queue.
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.acquire(Duration::from_secs(5)).is_ok())
        };
        // Wait until the waiter is registered in the queue.
        while adm.load().1 == 0 {
            std::thread::yield_now();
        }
        let r = adm.acquire(Duration::from_secs(5)).unwrap_err();
        assert_eq!(r.kind, "queue_full", "full queue must reject at the door");
        assert_eq!((r.in_flight, r.queued), (1, 1));
        drop(permit);
        assert!(
            waiter.join().unwrap(),
            "queued waiter gets the freed permit"
        );
    }

    #[test]
    fn queue_wait_times_out() {
        let adm = Admission::new(1, 4, None);
        let _permit = adm.acquire(Duration::ZERO).unwrap();
        let started = Instant::now();
        let r = adm.acquire(Duration::from_millis(30)).unwrap_err();
        assert_eq!(r.kind, "queue_timeout");
        assert!(started.elapsed() >= Duration::from_millis(30));
        assert_eq!(adm.load().1, 0, "timed-out waiter left the queue");
    }

    /// The adaptive shedder: once the smoothed queue delay sits above the
    /// target, arrivals that would queue are shed at the door even though
    /// the queue has room — and zero-wait grants decay the average so the
    /// door reopens once the backlog clears.
    #[test]
    fn queue_delay_shedding_trips_and_recovers() {
        let target = Duration::from_millis(10);
        let adm = Admission::new(1, 8, Some(target));
        let permit = adm.acquire(Duration::ZERO).unwrap();
        // Drive the EWMA above the target with queue-wait timeouts.
        while adm.queue_delay_ewma() <= target {
            let r = adm.acquire(Duration::from_millis(15)).unwrap_err();
            assert_eq!(r.kind, "queue_timeout");
        }
        let shed = adm.acquire(Duration::from_secs(5)).unwrap_err();
        assert_eq!(shed.kind, "queue_delay", "smoothed delay above target");
        assert!(shed.retry_after >= Duration::from_secs(1));
        drop(permit);
        // Uncontended grants observe zero wait and decay the average.
        while adm.queue_delay_ewma() > target {
            drop(adm.acquire(Duration::ZERO).unwrap());
        }
        let p = adm.acquire(Duration::ZERO).unwrap();
        drop(p);
    }

    /// Without a target the shedder is inert: the same overload pattern
    /// queues instead of shedding.
    #[test]
    fn no_target_means_no_delay_shedding() {
        let adm = Admission::new(1, 8, None);
        let _permit = adm.acquire(Duration::ZERO).unwrap();
        for _ in 0..4 {
            let r = adm.acquire(Duration::from_millis(5)).unwrap_err();
            assert_eq!(
                r.kind, "queue_timeout",
                "queues (and times out), never sheds on delay"
            );
        }
    }
}
