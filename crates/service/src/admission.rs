//! Admission control: bounded in-flight permits with a small wait queue.
//!
//! The service grants at most `max_in_flight` permits at a time. A query
//! arriving while all permits are taken waits in a bounded queue for up to
//! a configurable duration; a query arriving while the queue is also full
//! is rejected immediately. Both rejection flavours surface as
//! [`applab_core::CoreError::Overloaded`] — load shedding is a structured
//! outcome, not an error string.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct State {
    in_flight: usize,
    queued: usize,
}

/// A load snapshot taken when a query was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rejection {
    /// Queries holding permits at rejection time.
    pub in_flight: usize,
    /// Queries waiting for permits at rejection time.
    pub queued: usize,
    /// Whether the query waited in the queue before being rejected (queue
    /// wait timed out) or was turned away at the door (queue full).
    pub waited: bool,
}

#[derive(Debug)]
pub(crate) struct Admission {
    max_in_flight: usize,
    max_queue: usize,
    state: Mutex<State>,
    available: Condvar,
}

impl Admission {
    pub(crate) fn new(max_in_flight: usize, max_queue: usize) -> Self {
        Admission {
            max_in_flight: max_in_flight.max(1),
            max_queue,
            state: Mutex::new(State::default()),
            available: Condvar::new(),
        }
    }

    /// Acquire a permit, waiting in the bounded queue for at most
    /// `queue_timeout`. The returned guard releases the permit on drop.
    pub(crate) fn acquire(&self, queue_timeout: Duration) -> Result<Permit<'_>, Rejection> {
        let mut st = self.state.lock().expect("admission lock poisoned");
        if st.in_flight < self.max_in_flight {
            st.in_flight += 1;
            self.publish(&st);
            return Ok(Permit { admission: self });
        }
        if st.queued >= self.max_queue {
            return Err(Rejection {
                in_flight: st.in_flight,
                queued: st.queued,
                waited: false,
            });
        }
        st.queued += 1;
        self.publish(&st);
        let deadline = Instant::now() + queue_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                st.queued -= 1;
                let r = Rejection {
                    in_flight: st.in_flight,
                    queued: st.queued,
                    waited: true,
                };
                self.publish(&st);
                return Err(r);
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(st, remaining)
                .expect("admission lock poisoned");
            st = guard;
            if st.in_flight < self.max_in_flight {
                st.queued -= 1;
                st.in_flight += 1;
                self.publish(&st);
                return Ok(Permit { admission: self });
            }
        }
    }

    /// Current `(in_flight, queued)` counts.
    pub(crate) fn load(&self) -> (usize, usize) {
        let st = self.state.lock().expect("admission lock poisoned");
        (st.in_flight, st.queued)
    }

    fn publish(&self, st: &State) {
        applab_obs::gauge!("applab_service_in_flight").set(st.in_flight as i64);
        applab_obs::gauge!("applab_service_queued").set(st.queued as i64);
    }

    fn release(&self) {
        let mut st = self.state.lock().expect("admission lock poisoned");
        st.in_flight -= 1;
        self.publish(&st);
        drop(st);
        self.available.notify_one();
    }
}

/// A granted in-flight permit; releasing is RAII so a panicking query
/// still frees its slot.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permits_are_granted_up_to_capacity() {
        let adm = Admission::new(2, 0);
        let p1 = adm.acquire(Duration::ZERO).unwrap();
        let _p2 = adm.acquire(Duration::ZERO).unwrap();
        let rejected = adm.acquire(Duration::ZERO).unwrap_err();
        assert_eq!(rejected.in_flight, 2);
        drop(p1);
        assert!(adm.acquire(Duration::ZERO).is_ok());
    }

    #[test]
    fn queue_full_rejects_immediately() {
        let adm = Arc::new(Admission::new(1, 1));
        let permit = adm.acquire(Duration::ZERO).unwrap();
        // One waiter fills the queue.
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.acquire(Duration::from_secs(5)).is_ok())
        };
        // Wait until the waiter is registered in the queue.
        while adm.load().1 == 0 {
            std::thread::yield_now();
        }
        let r = adm.acquire(Duration::from_secs(5)).unwrap_err();
        assert!(!r.waited, "full queue must reject at the door");
        assert_eq!((r.in_flight, r.queued), (1, 1));
        drop(permit);
        assert!(
            waiter.join().unwrap(),
            "queued waiter gets the freed permit"
        );
    }

    #[test]
    fn queue_wait_times_out() {
        let adm = Admission::new(1, 4);
        let _permit = adm.acquire(Duration::ZERO).unwrap();
        let started = Instant::now();
        let r = adm.acquire(Duration::from_millis(30)).unwrap_err();
        assert!(r.waited);
        assert!(started.elapsed() >= Duration::from_millis(30));
        assert_eq!(adm.load().1, 0, "timed-out waiter left the queue");
    }
}
