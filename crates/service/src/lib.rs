//! `applab-service`: a concurrent query-serving layer over sealed,
//! shareable workflow endpoints.
//!
//! The paper's goal is serving Copernicus data to non-EO app developers —
//! many short GeoSPARQL queries against both the Strabon-like store and
//! the Ontop-spatial virtual graphs. [`ApplabService`] owns a set of named
//! [`QueryEndpoint`]s (both workflow facades implement the trait and are
//! `Send + Sync` once sealed) and serves concurrent queries with:
//!
//! * **admission control** — at most `max_in_flight` queries evaluate at
//!   once; a small bounded wait queue absorbs bursts and everything beyond
//!   it is shed as a typed `Overloaded` outcome;
//! * **per-query deadlines** — a cooperative [`Budget`] threaded through
//!   `applab_sparql::eval`, polled at scan/probe-chunk/filter boundaries,
//!   so runaway spatial joins abort mid-flight and *never* return
//!   truncated results;
//! * **structured outcomes** — every call returns a [`QueryOutcome`] with
//!   results, queue wait, evaluation time, backend, and a `degraded` flag
//!   (set when part of the answer came from a stale cache copy bridging an
//!   upstream outage), or a typed `Timeout`/`Cancelled`/`Overloaded`/
//!   `Unavailable` rejection with a stable [`CoreError::code`] used as the
//!   metrics label.
//!
//! * **per-query accounting** — every outcome carries a
//!   [`QueryStats`] snapshot (rows scanned, joins, DAP round-trips and
//!   bytes, cache hits, queue wait, ...) collected through the
//!   `applab_obs::querystats` thread-local scope;
//! * **query log + flight recorder** — with
//!   [`ApplabService::with_query_log`] one sampled JSONL record is
//!   emitted per outcome (never blocking the query path), and with
//!   [`ApplabService::with_flight_recorder`] the last N outcomes stay
//!   in an in-memory ring for postmortem dumps.
//!
//! Metrics: `applab_service_in_flight` / `applab_service_queued` gauges,
//! `applab_service_outcomes_total{endpoint,code}` counters, and
//! `applab_service_query_seconds` (total plus a per-`endpoint` series
//! feeding the SLO quantile report) / `applab_service_queue_wait_seconds`
//! histograms.
//!
//! ```no_run
//! use applab_service::{ApplabService, QueryRequest, ServiceConfig};
//! use std::sync::Arc;
//! # fn endpoints() -> (applab_core::MaterializedWorkflow, applab_core::MaterializedWorkflow) { unimplemented!() }
//!
//! let (store_wf, other_wf) = endpoints();
//! let service = ApplabService::new(ServiceConfig::default())
//!     .with_endpoint("store", Arc::new(store_wf))
//!     .with_endpoint("other", Arc::new(other_wf));
//! let outcome = service.query("store", "SELECT ?s WHERE { ?s ?p ?o }");
//! println!("{} in {:?}", outcome.code(), outcome.elapsed);
//! ```
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

mod admission;

use admission::Admission;
use applab_core::{CoreError, QueryEndpoint};
use applab_obs::querylog;
use applab_obs::{FlightRecorder, QueryLog, QueryLogRecord, QueryStats, SpanContext};
use applab_sparql::{Budget, EvalOptions, QueryResults};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`ApplabService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queries evaluating concurrently (admission permits).
    pub max_in_flight: usize,
    /// Maximum queries allowed to wait for a permit; arrivals beyond this
    /// are rejected immediately with `Overloaded`.
    pub max_queue: usize,
    /// How long a queued query may wait for a permit before it is shed.
    pub queue_timeout: Duration,
    /// Adaptive overload control: when set, arrivals that would have to
    /// queue are shed immediately once the *smoothed* (EWMA) queue wait
    /// exceeds this target — the queue is already slower than tolerable,
    /// so waiting would only produce a slower rejection. `None` (the
    /// default) keeps the fixed permit/queue bounds as the only
    /// admission policy. Rejections carry a computed
    /// [`retry_after`](applab_core::CoreError::Overloaded) either way.
    pub queue_delay_target: Option<Duration>,
    /// Deadline applied to queries that do not carry their own
    /// [`QueryRequest::deadline`]. `None` means unlimited.
    pub default_deadline: Option<Duration>,
    /// Base evaluation options (parallelism knobs); the per-query budget
    /// is layered on top of these.
    pub eval: EvalOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight: 4,
            max_queue: 16,
            queue_timeout: Duration::from_millis(500),
            queue_delay_target: None,
            default_deadline: None,
            eval: EvalOptions::default(),
        }
    }
}

/// Per-query options a caller may attach, built with the
/// fluent constructors:
///
/// ```
/// use applab_service::QueryRequest;
/// use std::time::Duration;
///
/// let req = QueryRequest::new()
///     .deadline(Duration::from_secs(2))
///     .client_tag("127.0.0.1:4912");
/// assert_eq!(req.deadline, Some(Duration::from_secs(2)));
/// ```
///
/// The struct is `#[non_exhaustive]`: fields read fine, but out-of-crate
/// construction goes through [`QueryRequest::new`] and the builder
/// methods, so wire-layer fields (client address, requested media type,
/// ...) can be added without breaking callers.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct QueryRequest {
    /// Evaluation deadline for this query, overriding
    /// [`ServiceConfig::default_deadline`]. The clock starts when
    /// evaluation starts, after admission: queue wait is bounded
    /// separately by [`ServiceConfig::queue_timeout`].
    pub deadline: Option<Duration>,
    /// External cancellation token; storing `true` aborts the evaluation
    /// at its next budget poll.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Free-form low-cardinality caller identity for traces — the HTTP
    /// layer stores the peer socket address here. Recorded on the
    /// `service.query` span, never used as a metrics label.
    pub client_tag: Option<String>,
}

impl QueryRequest {
    /// A request with every option at its default (no deadline beyond
    /// [`ServiceConfig::default_deadline`], no cancellation, no tag).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the per-query evaluation deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach an external cancellation token; storing `true` aborts the
    /// evaluation at its next budget poll.
    pub fn cancel_token(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Tag the request with the caller's identity (see
    /// [`QueryRequest::client_tag`]).
    pub fn client_tag(mut self, tag: impl Into<String>) -> Self {
        self.client_tag = Some(tag.into());
        self
    }
}

/// The structured result of one service call.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The endpoint name the query was routed to.
    pub endpoint: String,
    /// The backing engine (`"store"` / `"obda"`), or `"?"` when the
    /// endpoint name did not resolve.
    pub backend: &'static str,
    /// Time spent waiting for an admission permit.
    pub queue_wait: Duration,
    /// Time spent evaluating (zero for rejected queries).
    pub elapsed: Duration,
    /// Whether any part of the answer was served degraded — a stale cache
    /// copy bridging a transient upstream outage. A degraded answer is
    /// complete and well-formed, just possibly out of date. Always `false`
    /// for rejected queries and failures.
    pub degraded: bool,
    /// Per-query resource accounting, captured across the evaluation
    /// (rows scanned, joins, DAP round-trips/bytes, cache hits, ...).
    /// All-zero for queries rejected before evaluation started.
    pub stats: QueryStats,
    /// Bytes the transport wrote while delivering the response *inside*
    /// the admission permit (see [`ApplabService::query_delivering`]).
    /// `None` for plain [`query_with`](ApplabService::query_with) calls
    /// and for queries whose delivery was aborted or never started.
    pub delivered_bytes: Option<u64>,
    /// The results, or the typed rejection/failure.
    pub result: Result<QueryResults, CoreError>,
}

impl QueryOutcome {
    /// `"ok"` for success, otherwise the stable [`CoreError::code`]
    /// (`"timeout"`, `"cancelled"`, `"overloaded"`, ...). Used as the
    /// metrics label for `applab_service_outcomes_total`.
    pub fn code(&self) -> &'static str {
        match &self.result {
            Ok(_) => "ok",
            Err(e) => e.code(),
        }
    }

    /// Whether the query produced results.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The results, when the query succeeded.
    pub fn results(&self) -> Option<&QueryResults> {
        self.result.as_ref().ok()
    }

    /// Stream the results as SPARQL JSON straight to `w` (the wire path
    /// for HTTP responses). The serialization is flushed in bounded chunks
    /// — see [`QueryResults::write_json`] — so the service never holds a
    /// whole large result document in memory. Returns `Ok(true)` after
    /// streaming, `Ok(false)` when there are no results to serialize
    /// (rejected or failed queries write nothing).
    pub fn write_json_results<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<bool> {
        match &self.result {
            Ok(results) => {
                results.write_json(w)?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// An estimate of the serialized results-JSON size in bytes, or
    /// `None` for rejected/failed queries (their error body is framed by
    /// the transport, not by this outcome).
    ///
    /// The value is a *hint* (see
    /// [`QueryResults::json_size_estimate`](applab_sparql::QueryResults::json_size_estimate)
    /// — string escaping is not accounted for), so it must never be sent
    /// as a `Content-Length`. It exists so a transport can pick its
    /// response framing before serializing anything: small documents are
    /// worth materializing once for exact fixed-length framing, large
    /// ones should stream.
    pub fn content_length_hint(&self) -> Option<u64> {
        self.result
            .as_ref()
            .ok()
            .map(QueryResults::json_size_estimate)
    }

    /// Whether the results are big enough that streaming them in bounded
    /// chunks beats materializing the document: true once the
    /// [`content_length_hint`](Self::content_length_hint) passes one
    /// serializer flush window
    /// ([`JSON_FLUSH_BYTES`](applab_sparql::JSON_FLUSH_BYTES)). The HTTP
    /// layer maps this directly onto its framing decision: streamable →
    /// `Transfer-Encoding: chunked` via
    /// [`write_json_results`](Self::write_json_results), otherwise one
    /// `to_json` pass with an exact `Content-Length`. Rejected and failed
    /// queries are never streamable.
    pub fn is_streamable(&self) -> bool {
        self.content_length_hint()
            .is_some_and(|hint| hint >= applab_sparql::JSON_FLUSH_BYTES as u64)
    }
}

/// A shared, thread-safe query service over named workflow endpoints.
///
/// The service itself takes `&self` everywhere: wrap it in an `Arc` (or
/// use scoped threads) and call [`ApplabService::query`] concurrently.
pub struct ApplabService {
    endpoints: Vec<(String, Arc<dyn QueryEndpoint>)>,
    admission: Admission,
    config: ServiceConfig,
    query_log: Option<Arc<QueryLog>>,
    recorder: Option<Arc<FlightRecorder>>,
    log_seq: AtomicU64,
}

impl ApplabService {
    /// A service with the given configuration and no endpoints yet.
    pub fn new(config: ServiceConfig) -> Self {
        ApplabService {
            endpoints: Vec::new(),
            admission: Admission::new(
                config.max_in_flight,
                config.max_queue,
                config.queue_delay_target,
            ),
            config,
            query_log: None,
            recorder: None,
            log_seq: AtomicU64::new(0),
        }
    }

    /// Register a sealed endpoint under a routing name (builder style).
    pub fn with_endpoint(
        mut self,
        name: impl Into<String>,
        endpoint: Arc<dyn QueryEndpoint>,
    ) -> Self {
        self.register(name, endpoint);
        self
    }

    /// Attach a structured query log: one sampled JSONL record per
    /// outcome (see [`applab_obs::querylog`]). Emission never blocks the
    /// query path.
    pub fn with_query_log(mut self, log: Arc<QueryLog>) -> Self {
        self.query_log = Some(log);
        self
    }

    /// Attach a flight recorder: every outcome (unsampled) lands in the
    /// in-memory ring, ready for a postmortem
    /// [`dump`](FlightRecorder::dump).
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Register a sealed endpoint under a routing name. A later
    /// registration under the same name replaces the earlier one.
    pub fn register(&mut self, name: impl Into<String>, endpoint: Arc<dyn QueryEndpoint>) {
        let name = name.into();
        if let Some(slot) = self.endpoints.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = endpoint;
        } else {
            self.endpoints.push((name, endpoint));
        }
    }

    /// The registered endpoint names, in registration order.
    pub fn endpoint_names(&self) -> Vec<&str> {
        self.endpoints.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Current `(in_flight, queued)` load snapshot.
    pub fn load(&self) -> (usize, usize) {
        self.admission.load()
    }

    /// The smoothed (EWMA) queue-wait estimate driving the adaptive
    /// shedder (see [`ServiceConfig::queue_delay_target`]). Also exposed
    /// as the `applab_service_queue_delay_ewma_us` gauge.
    pub fn queue_delay_ewma(&self) -> Duration {
        self.admission.queue_delay_ewma()
    }

    /// Serve one query with the service-wide defaults.
    pub fn query(&self, endpoint: &str, sparql: &str) -> QueryOutcome {
        self.query_with(endpoint, sparql, &QueryRequest::default())
    }

    /// Serve one query with per-query deadline/cancellation options.
    pub fn query_with(&self, endpoint: &str, sparql: &str, request: &QueryRequest) -> QueryOutcome {
        self.serve(
            endpoint,
            sparql,
            request,
            None::<fn(&QueryResults) -> std::io::Result<u64>>,
        )
    }

    /// Serve one query and deliver its response *while still holding the
    /// admission permit*: on success, `deliver` is called with the
    /// results and must write them to the transport, returning the byte
    /// count (recorded as [`QueryOutcome::delivered_bytes`]).
    ///
    /// This is the wire path's cancellation hook. A response that is
    /// delivered outside the permit makes write failures invisible to
    /// the service — the query already "succeeded" and the permit is
    /// gone. Delivering inside the permit means a broken socket surfaces
    /// right here: when `deliver` fails, the request's cancellation
    /// token (if any) is stored so any still-attached evaluation work
    /// stops, the outcome flips to a typed
    /// [`Cancelled`](CoreError::Cancelled) — counted under
    /// `applab_service_outcomes_total{code="cancelled"}` and
    /// `applab_service_delivery_aborted_total` — and the permit is
    /// released only after the transport is done with the results.
    /// [`QueryOutcome::elapsed`] still measures evaluation only; the
    /// delivery time is the transport's to account for.
    pub fn query_delivering<F>(
        &self,
        endpoint: &str,
        sparql: &str,
        request: &QueryRequest,
        deliver: F,
    ) -> QueryOutcome
    where
        F: FnOnce(&QueryResults) -> std::io::Result<u64>,
    {
        self.serve(endpoint, sparql, request, Some(deliver))
    }

    fn serve<F>(
        &self,
        endpoint: &str,
        sparql: &str,
        request: &QueryRequest,
        deliver: Option<F>,
    ) -> QueryOutcome
    where
        F: FnOnce(&QueryResults) -> std::io::Result<u64>,
    {
        let Some((name, ep)) = self.endpoints.iter().find(|(n, _)| n == endpoint) else {
            return self.finish(
                QueryOutcome {
                    endpoint: endpoint.to_string(),
                    backend: "?",
                    queue_wait: Duration::ZERO,
                    elapsed: Duration::ZERO,
                    degraded: false,
                    stats: QueryStats::default(),
                    delivered_bytes: None,
                    result: Err(CoreError::Source(format!("unknown endpoint '{endpoint}'"))),
                },
                sparql,
                None,
            );
        };

        let mut span = applab_obs::span("service.query");
        span.record("endpoint", name.as_str());
        if let Some(tag) = &request.client_tag {
            span.record("client", tag.as_str());
        }

        let queued_at = Instant::now();
        let permit = self.admission.acquire(self.config.queue_timeout);
        let queue_wait = queued_at.elapsed();
        applab_obs::histogram!("applab_service_queue_wait_seconds", WAIT_SECONDS_BUCKETS)
            .observe(queue_wait.as_secs_f64());
        let _permit = match permit {
            Ok(p) => p,
            Err(rejection) => {
                span.record("code", "overloaded");
                let stats = QueryStats {
                    queue_wait_ns: queue_wait.as_nanos() as u64,
                    ..QueryStats::default()
                };
                return self.finish(
                    QueryOutcome {
                        endpoint: name.clone(),
                        backend: ep.backend(),
                        queue_wait,
                        elapsed: Duration::ZERO,
                        degraded: false,
                        stats,
                        delivered_bytes: None,
                        result: Err(CoreError::Overloaded {
                            in_flight: rejection.in_flight,
                            queued: rejection.queued,
                            retry_after: rejection.retry_after,
                        }),
                    },
                    sparql,
                    Some(span.context()),
                );
            }
        };

        // The budget clock starts here, with the permit held: queue wait
        // is governed by queue_timeout, not by the evaluation deadline.
        let mut options = self.config.eval.clone();
        let mut budget = match request.deadline.or(self.config.default_deadline) {
            Some(limit) => Budget::with_deadline(limit),
            None => Budget::unlimited(),
        };
        if let Some(token) = &request.cancel {
            budget = budget.cancelled_by(Arc::clone(token));
        }
        options.budget = budget;

        let started = Instant::now();
        // Degrade marks flow through a thread-local scope: stale serves
        // during this evaluation (and only this one) flag the outcome.
        // The accounting scope works the same way: the evaluator, store,
        // DAP client and caches bump its cell from wherever this query's
        // work happens (parallel probe workers included, via attach).
        let degrade_scope = applab_obs::degrade::Scope::begin();
        let accounting = applab_obs::querystats::Scope::begin();
        let result = ep.query_with(sparql, &options);
        let elapsed = started.elapsed();
        let mut stats = accounting.finish();
        // Delivery happens here, with the permit still held, so a broken
        // client surfaces as a typed outcome instead of a silent success
        // whose response nobody read.
        let mut delivered_bytes = None;
        let result = match (result, deliver) {
            (Ok(results), Some(deliver)) => match deliver(&results) {
                Ok(bytes) => {
                    delivered_bytes = Some(bytes);
                    Ok(results)
                }
                Err(_) => {
                    if let Some(token) = &request.cancel {
                        token.store(true, Ordering::Relaxed);
                    }
                    applab_obs::counter!("applab_service_delivery_aborted_total").inc();
                    Err(CoreError::Cancelled)
                }
            },
            (result, _) => result,
        };
        let degraded = result.is_ok() && degrade_scope.degraded();
        stats.queue_wait_ns = queue_wait.as_nanos() as u64;
        stats.degraded = degraded;
        applab_obs::histogram!("applab_service_query_seconds", WAIT_SECONDS_BUCKETS)
            .observe(elapsed.as_secs_f64());
        applab_obs::global()
            .histogram_with(
                "applab_service_query_seconds",
                &[("endpoint", name)],
                WAIT_SECONDS_BUCKETS,
            )
            .observe(elapsed.as_secs_f64());
        if degraded {
            applab_obs::global()
                .counter_with("applab_service_degraded_total", &[("endpoint", name)])
                .inc();
        }
        let outcome = QueryOutcome {
            endpoint: name.clone(),
            backend: ep.backend(),
            queue_wait,
            elapsed,
            degraded,
            stats,
            delivered_bytes,
            result,
        };
        span.record("code", outcome.code());
        span.record("degraded", degraded);
        let ctx = span.context();
        self.finish(outcome, sparql, Some(ctx))
    }

    /// Record the outcome counter, emit the query-log/flight-recorder
    /// record, and hand the outcome back.
    fn finish(
        &self,
        outcome: QueryOutcome,
        sparql: &str,
        ctx: Option<SpanContext>,
    ) -> QueryOutcome {
        applab_obs::global()
            .counter_with(
                "applab_service_outcomes_total",
                &[("endpoint", &outcome.endpoint), ("code", outcome.code())],
            )
            .inc();
        if self.query_log.is_some() || self.recorder.is_some() {
            let record = QueryLogRecord {
                seq: self.log_seq.fetch_add(1, Ordering::Relaxed),
                ts_ms: querylog::now_ms(),
                endpoint: outcome.endpoint.clone(),
                backend: outcome.backend.to_string(),
                code: outcome.code().to_string(),
                degraded: outcome.degraded,
                elapsed_ns: outcome.elapsed.as_nanos() as u64,
                queue_wait_ns: outcome.queue_wait.as_nanos() as u64,
                query_hash: querylog::hash_query(sparql),
                query: querylog::truncate_query(sparql),
                trace_id: ctx.map_or(0, |c| c.trace_id),
                span_id: ctx.map_or(0, |c| c.span_id),
                stats: outcome.stats.clone(),
            };
            // The recorder keeps everything; the log applies sampling.
            // The log renders from a reference into a recycled buffer,
            // so the record moves into the recorder uncloned — with both
            // consumers attached no query pays a record clone.
            if let Some(log) = &self.query_log {
                log.log(&record);
            }
            if let Some(recorder) = &self.recorder {
                recorder.record(record);
            }
        }
        outcome
    }
}

/// Latency buckets shared by the queue-wait and query histograms:
/// 100µs – 5s.
const WAIT_SECONDS_BUCKETS: &[f64] =
    &[0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

#[cfg(test)]
mod tests {
    use super::*;
    use applab_core::Explain;
    use applab_sparql::Row;
    use std::sync::atomic::Ordering;
    use std::sync::Barrier;

    /// A synthetic endpoint: returns a fixed row after honouring the
    /// budget, and can block on a barrier to hold its admission permit.
    struct FakeEndpoint {
        hold: Option<Arc<Barrier>>,
    }

    impl FakeEndpoint {
        fn instant() -> Self {
            FakeEndpoint { hold: None }
        }
    }

    impl QueryEndpoint for FakeEndpoint {
        fn query_with(
            &self,
            sparql: &str,
            options: &EvalOptions,
        ) -> Result<QueryResults, CoreError> {
            if let Some(b) = &self.hold {
                b.wait();
            }
            options.budget.check()?;
            Ok(QueryResults::Solutions {
                variables: vec!["q".into()],
                rows: vec![Row {
                    values: vec![Some(applab_rdf::Literal::string(sparql).into())],
                }],
            })
        }

        fn query_explained(&self, _sparql: &str) -> Result<Explain, CoreError> {
            unimplemented!("not used by the service tests")
        }

        fn backend(&self) -> &'static str {
            "fake"
        }
    }

    fn service(config: ServiceConfig) -> ApplabService {
        ApplabService::new(config).with_endpoint("fake", Arc::new(FakeEndpoint::instant()))
    }

    #[test]
    fn routes_and_returns_results() {
        let svc = service(ServiceConfig::default());
        let out = svc.query("fake", "SELECT 1");
        assert_eq!(out.code(), "ok");
        assert_eq!(out.backend, "fake");
        assert_eq!(out.results().unwrap().len(), 1);
        assert_eq!(svc.load(), (0, 0), "permit released after the call");
    }

    #[test]
    fn unknown_endpoint_is_a_source_error() {
        let svc = service(ServiceConfig::default());
        let out = svc.query("nope", "SELECT 1");
        assert_eq!(out.code(), "source");
        assert!(matches!(out.result, Err(CoreError::Source(_))));
    }

    #[test]
    fn zero_deadline_times_out() {
        let svc = service(ServiceConfig::default());
        let out = svc.query_with(
            "fake",
            "SELECT 1",
            &QueryRequest::new().deadline(Duration::ZERO),
        );
        assert_eq!(out.code(), "timeout");
        assert!(matches!(out.result, Err(CoreError::Timeout(d)) if d == Duration::ZERO));
    }

    #[test]
    fn cancellation_token_is_threaded_through() {
        let svc = service(ServiceConfig::default());
        let token = Arc::new(AtomicBool::new(false));
        token.store(true, Ordering::Relaxed);
        let out = svc.query_with("fake", "SELECT 1", &QueryRequest::new().cancel_token(token));
        assert_eq!(out.code(), "cancelled");
    }

    #[test]
    fn overload_sheds_with_a_typed_outcome() {
        let gate = Arc::new(Barrier::new(2));
        let mut svc = ApplabService::new(ServiceConfig {
            max_in_flight: 1,
            max_queue: 0,
            queue_timeout: Duration::ZERO,
            ..ServiceConfig::default()
        });
        svc.register(
            "slow",
            Arc::new(FakeEndpoint {
                hold: Some(Arc::clone(&gate)),
            }),
        );
        let svc = Arc::new(svc);
        let bg = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.query("slow", "SELECT 1"))
        };
        // Wait until the background query holds the only permit.
        while svc.load().0 == 0 {
            std::thread::yield_now();
        }
        let shed = svc.query("slow", "SELECT 2");
        assert_eq!(shed.code(), "overloaded");
        assert!(
            matches!(
                shed.result,
                Err(CoreError::Overloaded {
                    in_flight: 1,
                    queued: 0,
                    retry_after
                }) if retry_after >= Duration::from_secs(1)
            ),
            "{:?}",
            shed.result
        );
        gate.wait(); // release the in-flight query
        assert_eq!(bg.join().unwrap().code(), "ok");
    }

    #[test]
    fn stale_serves_flag_the_outcome_as_degraded() {
        /// An endpoint whose answer is (partly) a stale cache copy.
        struct DegradedEndpoint;
        impl QueryEndpoint for DegradedEndpoint {
            fn query_with(
                &self,
                _sparql: &str,
                _options: &EvalOptions,
            ) -> Result<QueryResults, CoreError> {
                applab_obs::degrade::mark("fake_stale");
                Ok(QueryResults::Solutions {
                    variables: vec![],
                    rows: vec![],
                })
            }
            fn query_explained(&self, _sparql: &str) -> Result<Explain, CoreError> {
                unimplemented!("not used")
            }
            fn backend(&self) -> &'static str {
                "fake"
            }
        }
        let svc = ApplabService::new(ServiceConfig::default())
            .with_endpoint("deg", Arc::new(DegradedEndpoint))
            .with_endpoint("fresh", Arc::new(FakeEndpoint::instant()));
        let out = svc.query("deg", "SELECT 1");
        assert_eq!(out.code(), "ok");
        assert!(out.degraded, "stale-served answers must be flagged");
        // Degradation does not leak into the next, healthy query.
        let out = svc.query("fresh", "SELECT 1");
        assert_eq!(out.code(), "ok");
        assert!(!out.degraded);
    }

    #[test]
    fn query_log_and_flight_recorder_capture_every_outcome() {
        let (sink, lines) = applab_obs::VecSink::new();
        let log = Arc::new(QueryLog::new(
            sink,
            applab_obs::SamplingPolicy::always(),
            64,
        ));
        let recorder = Arc::new(FlightRecorder::new(8));
        let svc = ApplabService::new(ServiceConfig::default())
            .with_endpoint("fake", Arc::new(FakeEndpoint::instant()))
            .with_query_log(Arc::clone(&log))
            .with_flight_recorder(Arc::clone(&recorder));
        assert_eq!(svc.query("fake", "SELECT 1").code(), "ok");
        assert_eq!(svc.query("nope", "SELECT 2").code(), "source");
        log.flush();
        let lines = lines.lock().expect("lines");
        assert_eq!(lines.len(), 2, "rate 1.0 logs every outcome");
        let first = QueryLogRecord::from_json(&lines[0]).expect("line parses");
        assert_eq!(first.endpoint, "fake");
        assert_eq!(first.code, "ok");
        assert_eq!(first.query, "SELECT 1");
        assert_eq!(first.query_hash, querylog::hash_query("SELECT 1"));
        let second = QueryLogRecord::from_json(&lines[1]).expect("line parses");
        assert_eq!(second.code, "source");
        assert_eq!(second.backend, "?");
        let tape = recorder.dump();
        assert_eq!(tape.len(), 2);
        assert_eq!(tape[0].seq, 0);
        assert_eq!(tape[1].seq, 1);
    }

    #[test]
    fn outcome_stats_carry_queue_wait() {
        let svc = service(ServiceConfig::default());
        let before = Instant::now();
        let out = svc.query("fake", "SELECT 1");
        assert_eq!(out.code(), "ok");
        assert_eq!(out.stats.queue_wait_ns, out.queue_wait.as_nanos() as u64);
        assert!(out.stats.queue_wait_ns <= before.elapsed().as_nanos() as u64);
        assert!(!out.stats.degraded);
    }

    /// The wire framing decision: small results report a size hint and
    /// stay unstreamed, large ones flip `is_streamable`, and failures
    /// report neither.
    #[test]
    fn framing_hints_follow_result_size() {
        struct SizedEndpoint {
            rows: usize,
        }
        impl QueryEndpoint for SizedEndpoint {
            fn query_with(
                &self,
                _sparql: &str,
                _options: &EvalOptions,
            ) -> Result<QueryResults, CoreError> {
                Ok(QueryResults::Solutions {
                    variables: vec!["s".into()],
                    rows: (0..self.rows)
                        .map(|i| Row {
                            values: vec![Some(applab_rdf::Term::named(format!(
                                "http://example.org/resource/{i}"
                            )))],
                        })
                        .collect(),
                })
            }
            fn query_explained(&self, _sparql: &str) -> Result<Explain, CoreError> {
                unimplemented!("not used")
            }
            fn backend(&self) -> &'static str {
                "fake"
            }
        }
        let svc = ApplabService::new(ServiceConfig::default())
            .with_endpoint("small", Arc::new(SizedEndpoint { rows: 3 }))
            .with_endpoint("large", Arc::new(SizedEndpoint { rows: 5000 }));

        let small = svc.query("small", "SELECT 1");
        let hint = small.content_length_hint().expect("ok results have a hint");
        let actual = small.results().unwrap().to_json().len() as u64;
        assert!(hint.abs_diff(actual) * 10 <= actual, "{hint} vs {actual}");
        assert!(!small.is_streamable(), "3 rows fit fixed-length framing");

        let large = svc.query("large", "SELECT 1");
        assert!(large.is_streamable(), "5000 rows must stream");
        assert!(large.content_length_hint().unwrap() >= applab_sparql::JSON_FLUSH_BYTES as u64);

        let failed = svc.query("nope", "SELECT 1");
        assert_eq!(failed.content_length_hint(), None);
        assert!(!failed.is_streamable());
    }

    /// Delivery inside the permit: a successful `deliver` records the
    /// byte count; a failing one flips the outcome to `cancelled`, trips
    /// the request's cancel token, and still releases the permit.
    #[test]
    fn delivery_failure_becomes_a_cancelled_outcome() {
        let svc = service(ServiceConfig::default());
        let out = svc.query_delivering("fake", "SELECT 1", &QueryRequest::new(), |results| {
            Ok(results.to_json().len() as u64)
        });
        assert_eq!(out.code(), "ok");
        let delivered = out.delivered_bytes.expect("delivery ran");
        assert_eq!(delivered, out.results().unwrap().to_json().len() as u64);

        let token = Arc::new(AtomicBool::new(false));
        let out = svc.query_delivering(
            "fake",
            "SELECT 1",
            &QueryRequest::new().cancel_token(Arc::clone(&token)),
            |_results| Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone")),
        );
        assert_eq!(out.code(), "cancelled");
        assert!(matches!(out.result, Err(CoreError::Cancelled)));
        assert_eq!(out.delivered_bytes, None);
        assert!(!out.degraded);
        assert!(
            token.load(Ordering::Relaxed),
            "failed delivery must trip the cancel token"
        );
        assert_eq!(svc.load(), (0, 0), "permit released after failed delivery");
    }

    /// Delivery never runs for failed queries, and plain `query_with`
    /// reports no delivered bytes.
    #[test]
    fn delivery_is_skipped_for_failures() {
        let svc = service(ServiceConfig::default());
        let out = svc.query_delivering(
            "fake",
            "SELECT 1",
            &QueryRequest::new().deadline(Duration::ZERO),
            |_results| panic!("deliver must not run for a timed-out query"),
        );
        assert_eq!(out.code(), "timeout");
        assert_eq!(out.delivered_bytes, None);
        assert_eq!(svc.query("fake", "SELECT 1").delivered_bytes, None);
    }

    #[test]
    fn query_request_builder_sets_every_field() {
        let token = Arc::new(AtomicBool::new(false));
        let req = QueryRequest::new()
            .deadline(Duration::from_millis(250))
            .cancel_token(Arc::clone(&token))
            .client_tag("10.0.0.7:9999");
        assert_eq!(req.deadline, Some(Duration::from_millis(250)));
        assert!(req.cancel.is_some());
        assert_eq!(req.client_tag.as_deref(), Some("10.0.0.7:9999"));
    }

    #[test]
    fn replacing_an_endpoint_keeps_one_entry() {
        let mut svc = service(ServiceConfig::default());
        svc.register("fake", Arc::new(FakeEndpoint::instant()));
        assert_eq!(svc.endpoint_names(), ["fake"]);
    }
}
