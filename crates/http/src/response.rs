//! Response framing: status lines, fixed-length bodies, and chunked
//! transfer encoding for streamed results.

use std::io::{self, Write};

/// The reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Extra headers a handler may attach (e.g. `Retry-After`).
pub type ExtraHeaders<'a> = &'a [(&'a str, &'a str)];

/// Write a complete fixed-length response. `head_only` suppresses the
/// body (HEAD requests) while keeping the `Content-Length` honest.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra: ExtraHeaders<'_>,
    body: &[u8],
    keep_alive: bool,
    head_only: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    if !head_only {
        w.write_all(body)?;
    }
    w.flush()
}

/// Write the head of a chunked response; the body then goes through a
/// [`ChunkedWriter`] and ends with [`ChunkedWriter::finish`].
pub fn write_chunked_head<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    )
}

/// An [`io::Write`] adapter that frames every incoming buffer as one
/// HTTP/1.1 chunk (`{len:x}\r\n{data}\r\n`).
///
/// The upstream serializer ([`QueryResults::write_json`]) already
/// coalesces output into ≥ 8 KiB flush windows, so each `write` call maps
/// to one well-sized chunk on the wire — no second buffering layer, and
/// peak response memory stays one flush window regardless of result
/// cardinality. Empty writes are skipped: a zero-length chunk would
/// terminate the body early.
///
/// [`QueryResults::write_json`]: applab_sparql::QueryResults::write_json
pub struct ChunkedWriter<'a, W: Write> {
    inner: &'a mut W,
    /// Total body bytes framed so far (for the bytes-sent metric).
    pub body_bytes: u64,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Wrap a writer that has already sent a chunked response head.
    pub fn new(inner: &'a mut W) -> Self {
        ChunkedWriter {
            inner,
            body_bytes: 0,
        }
    }

    /// Send the zero-length terminator chunk ending the body.
    pub fn finish(self) -> io::Result<u64> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()?;
        Ok(self.body_bytes)
    }
}

impl<W: Write> Write for ChunkedWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        self.body_bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_length_response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", &[], b"ok\n", true, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn head_only_suppresses_the_body_not_the_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", &[], b"ok\n", false, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\n"), "no body after the head");
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
            false,
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out);
        w.write_all(b"hello ").unwrap();
        w.write_all(b"").unwrap(); // skipped, not a terminator
        w.write_all(b"world").unwrap();
        assert_eq!(w.finish().unwrap(), 11);
        assert_eq!(out, b"6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n");
    }
}
