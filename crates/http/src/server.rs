//! The listener, worker pool, and request router.

use crate::request::{read_request, Method, Request, RequestError};
use crate::response::{write_chunked_head, write_response, ChunkedWriter};
use crate::HttpConfig;
use applab_service::{ApplabService, QueryRequest};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A bounded handoff queue from the acceptor to the worker threads.
/// `push` never blocks (full → the acceptor sheds the connection with a
/// 503); `pop` blocks until a connection arrives or the queue closes.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Hand a connection to the workers; a full or closed queue returns
    /// it to the caller so the acceptor can shed it politely.
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.conns.len() >= self.cap {
            return Err(conn);
        }
        state.conns.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// A running wire-plane instance: an acceptor thread plus a fixed worker
/// pool, each worker owning one connection at a time through its whole
/// keep-alive lifetime. Dropping the handle (or calling
/// [`HttpServer::shutdown`]) stops accepting, drains the workers, and
/// joins every thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` with `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ApplabService>,
        config: HttpConfig,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.max_queued_connections));
        let config = Arc::new(config);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&service);
                let config = Arc::clone(&config);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        handle_connection(conn, &service, &config, &stop);
                    }
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    applab_obs::counter!("applab_http_connections_total").inc();
                    if let Err(mut shed) = queue.push(conn) {
                        // The worker pool is saturated and the handoff
                        // queue full: shed at the door with a retryable
                        // status rather than letting the backlog grow.
                        // Best-effort and bounded — the acceptor must
                        // never block on a slow shed client.
                        applab_obs::counter!("applab_http_connections_shed_total").inc();
                        let _ = shed.set_write_timeout(Some(Duration::from_millis(100)));
                        let body = error_body("overloaded", 503, "connection queue full");
                        let _ = write_response(
                            &mut shed,
                            503,
                            "application/json",
                            &[("Retry-After", "1")],
                            body.as_bytes(),
                            false,
                            false,
                        );
                    }
                }
            })
        };

        Ok(HttpServer {
            addr,
            stop,
            queue,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound socket address (the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept with one last connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// RAII guard for the active-connections gauge.
struct ActiveConn;

impl ActiveConn {
    fn begin() -> Self {
        applab_obs::gauge!("applab_http_active_connections").add(1);
        ActiveConn
    }
}

impl Drop for ActiveConn {
    fn drop(&mut self) {
        applab_obs::gauge!("applab_http_active_connections").add(-1);
    }
}

fn handle_connection(
    conn: TcpStream,
    service: &ApplabService,
    config: &HttpConfig,
    stop: &AtomicBool,
) {
    let _active = ActiveConn::begin();
    let peer = conn
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    if conn
        .set_read_timeout(Some(config.keep_alive_timeout))
        .is_err()
        || conn.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn);

    loop {
        match read_request(&mut reader, config) {
            Ok(None) => break, // clean close or idle timeout
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive() && !stop.load(Ordering::Acquire);
                match respond(&request, service, config, &peer, keep_alive, &mut writer) {
                    Ok(()) if keep_alive => continue,
                    _ => break,
                }
            }
            Err(RequestError::ConnectionLost) => break,
            Err(error) => {
                // Parse-level failure: answer with the typed status and
                // close — request framing can no longer be trusted.
                record_request("parse_error", error.status(), Instant::now());
                let body = error_body(error.code(), error.status(), &error.to_string());
                let extra: &[(&str, &str)] = match &error {
                    RequestError::MethodNotAllowed(_) => &[("Allow", "GET, HEAD, POST")],
                    _ => &[],
                };
                let _ = write_response(
                    &mut writer,
                    error.status(),
                    "application/json",
                    extra,
                    body.as_bytes(),
                    false,
                    false,
                );
                break;
            }
        }
    }
}

/// Route one parsed request and write its response. An `Err` means the
/// socket died mid-response; the connection is abandoned.
fn respond<W: Write>(
    request: &Request,
    service: &ApplabService,
    config: &HttpConfig,
    peer: &str,
    keep_alive: bool,
    w: &mut W,
) -> io::Result<()> {
    let started = Instant::now();
    let head_only = request.method == Method::Head;
    match (request.path.as_str(), request.method) {
        ("/healthz", Method::Get | Method::Head) => {
            record_request("/healthz", 200, started);
            write_response(
                w,
                200,
                "text/plain; charset=utf-8",
                &[],
                b"ok\n",
                keep_alive,
                head_only,
            )
        }
        ("/metrics", Method::Get | Method::Head) => {
            let text = applab_obs::global().to_prometheus();
            record_request("/metrics", 200, started);
            write_response(
                w,
                200,
                // The Prometheus text exposition format content type.
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                text.as_bytes(),
                keep_alive,
                head_only,
            )
        }
        ("/healthz" | "/metrics", Method::Post) => {
            record_request(request.path.as_str(), 405, started);
            let body = error_body("method_not_allowed", 405, "use GET");
            write_response(
                w,
                405,
                "application/json",
                &[("Allow", "GET, HEAD")],
                body.as_bytes(),
                keep_alive,
                false,
            )
        }
        (path, _) if path == "/sparql" || path.starts_with("/sparql/") => {
            serve_sparql(request, service, config, peer, keep_alive, started, w)
        }
        _ => {
            record_request("other", 404, started);
            let body = error_body("not_found", 404, &format!("no route for {}", request.path));
            write_response(
                w,
                404,
                "application/json",
                &[],
                body.as_bytes(),
                keep_alive,
                false,
            )
        }
    }
}

/// The W3C SPARQL Protocol endpoint: query via URL-encoded `GET`,
/// form-encoded `POST`, or direct `application/sparql-query` `POST`;
/// responses are W3C SPARQL Results JSON, streamed chunked when large.
fn serve_sparql<W: Write>(
    request: &Request,
    service: &ApplabService,
    config: &HttpConfig,
    peer: &str,
    keep_alive: bool,
    started: Instant,
    w: &mut W,
) -> io::Result<()> {
    let fail = |status: u16, code: &str, message: &str, w: &mut W| -> io::Result<()> {
        record_request("/sparql", status, started);
        let body = error_body(code, status, message);
        let extra: &[(&str, &str)] = if code == "overloaded" {
            &[("Retry-After", "1")]
        } else {
            &[]
        };
        write_response(
            w,
            status,
            "application/json",
            extra,
            body.as_bytes(),
            keep_alive,
            false,
        )
    };

    // Resolve the target endpoint: `/sparql/{name}`, else the configured
    // default, else the first registered endpoint.
    let names = service.endpoint_names();
    let endpoint = match request.path.strip_prefix("/sparql/") {
        Some(name) if !name.is_empty() => name.to_string(),
        _ => match &config.default_endpoint {
            Some(name) => name.clone(),
            None => match names.first() {
                Some(name) => name.to_string(),
                None => return fail(503, "no_endpoints", "no endpoints are registered", w),
            },
        },
    };
    if !names.iter().any(|n| *n == endpoint) {
        return fail(
            404,
            "unknown_endpoint",
            &format!("unknown endpoint '{endpoint}'"),
            w,
        );
    }

    // Extract the query text per protocol binding.
    let mut form: Vec<(String, String)> = Vec::new();
    let query_text = match request.method {
        Method::Get => match request.query_param("query") {
            Some(q) => q.to_string(),
            None => return fail(400, "missing_query", "GET needs a ?query= parameter", w),
        },
        Method::Post => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                return fail(400, "bad_request", "request body is not UTF-8", w);
            };
            match request.content_type().as_deref() {
                Some("application/x-www-form-urlencoded") => {
                    match crate::request::parse_form(body) {
                        Ok(pairs) => form = pairs,
                        Err(m) => return fail(400, "bad_request", &format!("bad form body: {m}"), w),
                    }
                    match form.iter().find(|(k, _)| k == "query") {
                        Some((_, q)) => q.clone(),
                        None => {
                            return fail(400, "missing_query", "form body without query=", w)
                        }
                    }
                }
                Some("application/sparql-query") => body.to_string(),
                other => {
                    return fail(
                        415,
                        "unsupported_media_type",
                        &format!(
                            "POST /sparql takes application/sparql-query or application/x-www-form-urlencoded, got {}",
                            other.unwrap_or("nothing")
                        ),
                        w,
                    )
                }
            }
        }
        Method::Head => {
            record_request("/sparql", 405, started);
            let body = error_body("method_not_allowed", 405, "use GET or POST");
            return write_response(
                w,
                405,
                "application/json",
                &[("Allow", "GET, POST")],
                body.as_bytes(),
                keep_alive,
                false,
            );
        }
    };

    // Optional per-request deadline: `timeout` in milliseconds, from the
    // query string or the form body.
    let timeout_param = request.query_param("timeout").or_else(|| {
        form.iter()
            .find(|(k, _)| k == "timeout")
            .map(|(_, v)| v.as_str())
    });
    let mut query_request = QueryRequest::new().client_tag(peer);
    if let Some(raw) = timeout_param {
        match raw.parse::<u64>() {
            Ok(ms) => query_request = query_request.deadline(Duration::from_millis(ms)),
            Err(_) => return fail(400, "bad_request", &format!("bad timeout {raw:?}"), w),
        }
    }

    let outcome = service.query_with(&endpoint, &query_text, &query_request);
    match &outcome.result {
        Ok(results) => {
            if outcome.is_streamable() {
                // Large result: stream it chunked straight off the
                // serializer's flush windows — the document never exists
                // in one allocation on the server.
                write_chunked_head(w, 200, "application/sparql-results+json", keep_alive)?;
                let mut chunked = ChunkedWriter::new(w);
                results.write_json(&mut chunked)?;
                let body_bytes = chunked.finish()?;
                applab_obs::counter!("applab_http_response_bytes_total").add(body_bytes);
            } else {
                // Small result: one materialization buys exact
                // fixed-length framing.
                let body = results.to_json();
                applab_obs::counter!("applab_http_response_bytes_total").add(body.len() as u64);
                write_response(
                    w,
                    200,
                    "application/sparql-results+json",
                    &[],
                    body.as_bytes(),
                    keep_alive,
                    false,
                )?;
            }
            record_request("/sparql", 200, started);
            Ok(())
        }
        Err(error) => fail(error.http_status(), error.code(), &error.to_string(), w),
    }
}

/// Per-request wire metrics: a `{route,status}` counter and the
/// end-to-end service-time histogram (parse excluded, response framing
/// included).
fn record_request(route: &str, status: u16, started: Instant) {
    applab_obs::global()
        .counter_with(
            "applab_http_requests_total",
            &[("route", route), ("status", status_label(status))],
        )
        .inc();
    applab_obs::global()
        .histogram_with(
            "applab_http_request_seconds",
            &[("route", route)],
            REQUEST_SECONDS_BUCKETS,
        )
        .observe(started.elapsed().as_secs_f64());
}

/// 50µs – 5s: wire requests include serialization but not WAN delivery.
const REQUEST_SECONDS_BUCKETS: &[f64] = &[
    0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
];

fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        411 => "411",
        413 => "413",
        415 => "415",
        431 => "431",
        500 => "500",
        502 => "502",
        503 => "503",
        504 => "504",
        505 => "505",
        _ => "other",
    }
}

/// The typed JSON error body:
/// `{"error":{"code":"parse","status":400,"message":"..."}}`.
pub(crate) fn error_body(code: &str, status: u16, message: &str) -> String {
    let mut out = String::with_capacity(64 + message.len());
    out.push_str("{\"error\":{\"code\":");
    push_json_string(&mut out, code);
    out.push_str(",\"status\":");
    out.push_str(&status.to_string());
    out.push_str(",\"message\":");
    push_json_string(&mut out, message);
    out.push_str("}}");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_valid_results_style_json() {
        let body = error_body("parse", 400, "bad \"query\"\nline 2");
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"parse\",\"status\":400,\"message\":\"bad \\\"query\\\"\\nline 2\"}}"
        );
    }

    #[test]
    fn conn_queue_sheds_beyond_capacity_and_closes() {
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c1).is_ok());
        assert!(queue.push(c2).is_err(), "beyond cap is shed");
        assert!(queue.pop().is_some());
        queue.close();
        assert!(queue.pop().is_none(), "closed and drained");
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c3).is_err(), "closed queue refuses connections");
    }
}
