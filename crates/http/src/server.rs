//! The listener, worker pool, lifecycle state machine, and request
//! router.
//!
//! A server moves through three lifecycle states:
//!
//! ```text
//! Running ──begin_shutdown()──▶ Draining ──workers joined──▶ Stopped
//! ```
//!
//! *Running* accepts and serves. *Draining* stops accepting, answers
//! `/readyz` with 503 (so load balancers stop routing here while
//! `/healthz` still says the process is alive), stamps `Connection:
//! close` on every in-flight keep-alive response, and waits up to
//! [`HttpConfig::drain_deadline`](crate::HttpConfig) for workers to
//! finish naturally. Stragglers past the deadline are aborted
//! cooperatively: their queries' cancel tokens are set and their sockets
//! shut down, which unblocks any pending read or write. Only then does
//! the server join its threads and reach *Stopped*.

use crate::chaos::{ChaosListener, ChaosStream};
use crate::request::{read_request, Method, Request, RequestError};
use crate::response::{write_chunked_head, write_response, ChunkedWriter};
use crate::HttpConfig;
use applab_core::CoreError;
use applab_service::{ApplabService, QueryRequest};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LIFECYCLE_RUNNING: u8 = 0;
const LIFECYCLE_DRAINING: u8 = 1;
const LIFECYCLE_STOPPED: u8 = 2;

/// How often the nonblocking acceptor and the drain loop poll. Small
/// enough that shutdown latency is dominated by real work, large enough
/// that an idle acceptor costs ~nothing.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// A bounded handoff queue from the acceptor to the worker threads.
/// `push` never blocks (full → the acceptor sheds the connection with a
/// 503); `pop` blocks until a connection arrives or the queue closes.
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    conns: VecDeque<ChaosStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Hand a connection to the workers; a full or closed queue returns
    /// it to the caller so the acceptor can shed it politely.
    fn push(&self, conn: ChaosStream) -> Result<(), ChaosStream> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed || state.conns.len() >= self.cap {
            return Err(conn);
        }
        state.conns.push_back(conn);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<ChaosStream> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(conn) = state.conns.pop_front() {
                return Some(conn);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Close the queue and hand back any connections no worker will ever
    /// serve, so shutdown can shed them politely instead of silently.
    fn close_and_drain(&self) -> Vec<ChaosStream> {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        let leftover = state.conns.drain(..).collect();
        drop(state);
        self.ready.notify_all();
        leftover
    }
}

/// State shared by the acceptor, the workers, and the shutdown path.
struct Shared {
    lifecycle: AtomicU8,
    registry: ConnRegistry,
}

impl Shared {
    fn lifecycle(&self) -> u8 {
        self.lifecycle.load(Ordering::Acquire)
    }
}

/// Every live connection registers an abort handle — a raw socket clone
/// plus the connection's cancel token — so the drain deadline can
/// cooperatively stop stragglers: set the token (the running query
/// aborts at its next budget poll) and shut the socket down (any blocked
/// read or write returns immediately).
#[derive(Default)]
struct ConnRegistry {
    next_id: AtomicU64,
    entries: Mutex<HashMap<u64, AbortHandle>>,
}

struct AbortHandle {
    socket: TcpStream,
    cancel: Arc<AtomicBool>,
}

impl ConnRegistry {
    /// Register a live connection; the guard deregisters on drop. `None`
    /// (socket clone failed) serves the connection unabortable rather
    /// than not at all.
    fn register(&self, conn: &ChaosStream, cancel: Arc<AtomicBool>) -> Option<ConnGuard<'_>> {
        let socket = conn.shutdown_handle().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("registry lock")
            .insert(id, AbortHandle { socket, cancel });
        Some(ConnGuard { registry: self, id })
    }

    /// Abort every registered connection; returns how many were hit.
    fn abort_all(&self) -> usize {
        let entries = self.entries.lock().expect("registry lock");
        for handle in entries.values() {
            handle.cancel.store(true, Ordering::Relaxed);
            let _ = handle.socket.shutdown(Shutdown::Both);
        }
        entries.len()
    }
}

struct ConnGuard<'a> {
    registry: &'a ConnRegistry,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.registry
            .entries
            .lock()
            .expect("registry lock")
            .remove(&self.id);
    }
}

/// A running wire-plane instance: an acceptor thread plus a fixed worker
/// pool, each worker owning one connection at a time through its whole
/// keep-alive lifetime. Dropping the handle (or calling
/// [`HttpServer::shutdown`]) walks the drain lifecycle described in the
/// module docs; [`HttpServer::begin_shutdown`] starts it without
/// blocking, for rolling-restart orchestration.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    queue: Arc<ConnQueue>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drain_deadline: Duration,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` with `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<ApplabService>,
        config: HttpConfig,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        // A nonblocking listener lets the acceptor poll its lifecycle
        // flag between accepts: shutdown needs no self-connect trick and
        // cannot race with (or be absorbed by) a real client connecting.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            lifecycle: AtomicU8::new(LIFECYCLE_RUNNING),
            registry: ConnRegistry::default(),
        });
        let queue = Arc::new(ConnQueue::new(config.max_queued_connections));
        let drain_deadline = config.drain_deadline;
        let config = Arc::new(config);
        applab_obs::gauge!("applab_http_ready").set(1);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&service);
                let config = Arc::clone(&config);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        // A panic while serving one connection must not
                        // shrink the pool: the socket drops (closing the
                        // connection), the panic is counted, and this
                        // worker moves on to the next connection.
                        let served = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(conn, &service, &config, &shared)
                        }));
                        if served.is_err() {
                            applab_obs::counter!("applab_http_worker_panics_total").inc();
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let chaos = config.chaos.clone().map(ChaosListener::new);
            std::thread::spawn(move || {
                while shared.lifecycle() == LIFECYCLE_RUNNING {
                    let conn = match listener.accept() {
                        Ok((conn, _)) => conn,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                            continue;
                        }
                        // Transient accept errors (EMFILE, aborted
                        // handshake): back off briefly and keep serving.
                        Err(_) => {
                            std::thread::sleep(POLL_INTERVAL);
                            continue;
                        }
                    };
                    // Accepted sockets inherit nonblocking from the
                    // listener on some platforms; workers need blocking
                    // IO with timeouts.
                    if conn.set_nonblocking(false).is_err() {
                        continue;
                    }
                    applab_obs::counter!("applab_http_connections_total").inc();
                    let stream = match &chaos {
                        Some(listener) => listener.wrap(conn),
                        None => ChaosStream::passthrough(conn),
                    };
                    if let Err(mut shed) = queue.push(stream) {
                        // The worker pool is saturated and the handoff
                        // queue full: shed at the door with a retryable
                        // status rather than letting the backlog grow.
                        // Best-effort and bounded — the acceptor must
                        // never block on a slow shed client.
                        applab_obs::counter!("applab_http_connections_shed_total").inc();
                        let _ = shed.set_write_timeout(Some(Duration::from_millis(100)));
                        let body = error_body("overloaded", 503, "connection queue full");
                        let _ = write_response(
                            &mut shed,
                            503,
                            "application/json",
                            &[("Retry-After", "1")],
                            body.as_bytes(),
                            false,
                            false,
                        );
                    }
                }
            })
        };

        Ok(HttpServer {
            addr,
            shared,
            queue,
            acceptor: Some(acceptor),
            workers,
            drain_deadline,
        })
    }

    /// The bound socket address (the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flip the server into *Draining* without blocking: `/readyz`
    /// starts answering 503, the acceptor stops taking connections, and
    /// in-flight keep-alive responses carry `Connection: close`. Idempotent;
    /// call it from a signal handler, then [`HttpServer::shutdown`] to
    /// finish the drain.
    pub fn begin_shutdown(&self) {
        if self
            .shared
            .lifecycle
            .compare_exchange(
                LIFECYCLE_RUNNING,
                LIFECYCLE_DRAINING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            applab_obs::gauge!("applab_http_ready").set(0);
        }
    }

    /// Stop accepting, drain in-flight connections within the configured
    /// deadline (aborting stragglers), join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.begin_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Accepted-but-unserved connections get a polite close-marked
        // 503 instead of a silent FIN.
        for mut conn in self.queue.close_and_drain() {
            let _ = conn.set_write_timeout(Some(Duration::from_millis(100)));
            let body = error_body("draining", 503, "server is shutting down");
            let _ = write_response(
                &mut conn,
                503,
                "application/json",
                &[("Retry-After", "1")],
                body.as_bytes(),
                false,
                false,
            );
        }
        // Drain: wait for workers to finish their connections naturally,
        // then abort whoever is still going when the deadline lapses.
        let deadline = Instant::now() + self.drain_deadline;
        while !self.workers.iter().all(JoinHandle::is_finished) && Instant::now() < deadline {
            std::thread::sleep(POLL_INTERVAL);
        }
        if !self.workers.iter().all(JoinHandle::is_finished) {
            let aborted = self.shared.registry.abort_all();
            applab_obs::counter!("applab_http_drain_aborts_total").add(aborted as u64);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared
            .lifecycle
            .store(LIFECYCLE_STOPPED, Ordering::Release);
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// RAII guard for the active-connections gauge.
struct ActiveConn;

impl ActiveConn {
    fn begin() -> Self {
        applab_obs::gauge!("applab_http_active_connections").add(1);
        ActiveConn
    }
}

impl Drop for ActiveConn {
    fn drop(&mut self) {
        applab_obs::gauge!("applab_http_active_connections").add(-1);
    }
}

fn handle_connection(
    conn: ChaosStream,
    service: &ApplabService,
    config: &HttpConfig,
    shared: &Shared,
) {
    let _active = ActiveConn::begin();
    let peer = conn
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    if conn
        .set_read_timeout(Some(config.keep_alive_timeout))
        .is_err()
        || conn.set_write_timeout(Some(config.write_deadline)).is_err()
        || conn.set_nodelay(true).is_err()
    {
        return;
    }
    // One cancel token per connection: a client disconnect detected on a
    // failed response write, or the drain-deadline abort, stops the
    // query evaluating on this connection at its next budget poll.
    let cancel = Arc::new(AtomicBool::new(false));
    let _guard = shared.registry.register(&conn, Arc::clone(&cancel));
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn);

    loop {
        match read_request(&mut reader, config) {
            Ok(None) => break, // clean close or idle timeout
            Ok(Some(request)) => {
                // During drain every response carries `Connection:
                // close`, so keep-alive clients converge to zero without
                // any being cut mid-request.
                let keep_alive = request.keep_alive() && shared.lifecycle() == LIFECYCLE_RUNNING;
                match respond(
                    &request,
                    service,
                    config,
                    &peer,
                    keep_alive,
                    &cancel,
                    shared,
                    &mut writer,
                ) {
                    Ok(()) if keep_alive => continue,
                    _ => break,
                }
            }
            Err(RequestError::ConnectionLost) => break,
            Err(error) => {
                // Parse-level failure: answer with the typed status and
                // close — request framing can no longer be trusted.
                record_request("parse_error", error.status(), Instant::now());
                let body = error_body(error.code(), error.status(), &error.to_string());
                let extra: &[(&str, &str)] = match &error {
                    RequestError::MethodNotAllowed(_) => &[("Allow", "GET, HEAD, POST")],
                    _ => &[],
                };
                let _ = write_response(
                    &mut writer,
                    error.status(),
                    "application/json",
                    extra,
                    body.as_bytes(),
                    false,
                    false,
                );
                break;
            }
        }
    }
}

/// Route one parsed request and write its response. An `Err` means the
/// socket died mid-response; the connection is abandoned.
#[allow(clippy::too_many_arguments)]
fn respond<W: Write>(
    request: &Request,
    service: &ApplabService,
    config: &HttpConfig,
    peer: &str,
    keep_alive: bool,
    cancel: &Arc<AtomicBool>,
    shared: &Shared,
    w: &mut W,
) -> io::Result<()> {
    let started = Instant::now();
    let head_only = request.method == Method::Head;
    match (request.path.as_str(), request.method) {
        ("/healthz", Method::Get | Method::Head) => {
            record_request("/healthz", 200, started);
            write_response(
                w,
                200,
                "text/plain; charset=utf-8",
                &[],
                b"ok\n",
                keep_alive,
                head_only,
            )
        }
        ("/readyz", Method::Get | Method::Head) => {
            // Readiness is lifecycle-gated, liveness (`/healthz`) is
            // not: a draining server is alive but must get no new work.
            if shared.lifecycle() == LIFECYCLE_RUNNING {
                record_request("/readyz", 200, started);
                write_response(
                    w,
                    200,
                    "text/plain; charset=utf-8",
                    &[],
                    b"ready\n",
                    keep_alive,
                    head_only,
                )
            } else {
                record_request("/readyz", 503, started);
                let body = error_body("draining", 503, "server is draining");
                write_response(
                    w,
                    503,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                    head_only,
                )
            }
        }
        ("/metrics", Method::Get | Method::Head) => {
            let text = applab_obs::global().to_prometheus();
            record_request("/metrics", 200, started);
            write_response(
                w,
                200,
                // The Prometheus text exposition format content type.
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                text.as_bytes(),
                keep_alive,
                head_only,
            )
        }
        ("/healthz" | "/readyz" | "/metrics", Method::Post) => {
            record_request(request.path.as_str(), 405, started);
            let body = error_body("method_not_allowed", 405, "use GET");
            write_response(
                w,
                405,
                "application/json",
                &[("Allow", "GET, HEAD")],
                body.as_bytes(),
                keep_alive,
                false,
            )
        }
        (path, _) if path == "/sparql" || path.starts_with("/sparql/") => serve_sparql(
            request, service, config, peer, keep_alive, cancel, started, w,
        ),
        _ => {
            record_request("other", 404, started);
            let body = error_body("not_found", 404, &format!("no route for {}", request.path));
            write_response(
                w,
                404,
                "application/json",
                &[],
                body.as_bytes(),
                keep_alive,
                false,
            )
        }
    }
}

/// The W3C SPARQL Protocol endpoint: query via URL-encoded `GET`,
/// form-encoded `POST`, or direct `application/sparql-query` `POST`;
/// responses are W3C SPARQL Results JSON, streamed chunked when large.
///
/// The response is delivered through
/// [`ApplabService::query_delivering`], inside the query's admission
/// permit: a write failure (broken, closed, or deadline-tripping socket)
/// cancels the query server-side and surfaces as a `cancelled` outcome
/// instead of a completed answer nobody read.
#[allow(clippy::too_many_arguments)]
fn serve_sparql<W: Write>(
    request: &Request,
    service: &ApplabService,
    config: &HttpConfig,
    peer: &str,
    keep_alive: bool,
    cancel: &Arc<AtomicBool>,
    started: Instant,
    w: &mut W,
) -> io::Result<()> {
    let fail = |status: u16, code: &str, message: &str, w: &mut W| -> io::Result<()> {
        record_request("/sparql", status, started);
        let body = error_body(code, status, message);
        write_response(
            w,
            status,
            "application/json",
            &[],
            body.as_bytes(),
            keep_alive,
            false,
        )
    };

    // Resolve the target endpoint: `/sparql/{name}`, else the configured
    // default, else the first registered endpoint.
    let names = service.endpoint_names();
    let endpoint = match request.path.strip_prefix("/sparql/") {
        Some(name) if !name.is_empty() => name.to_string(),
        _ => match &config.default_endpoint {
            Some(name) => name.clone(),
            None => match names.first() {
                Some(name) => name.to_string(),
                None => return fail(503, "no_endpoints", "no endpoints are registered", w),
            },
        },
    };
    if !names.iter().any(|n| *n == endpoint) {
        return fail(
            404,
            "unknown_endpoint",
            &format!("unknown endpoint '{endpoint}'"),
            w,
        );
    }

    // Extract the query text per protocol binding.
    let mut form: Vec<(String, String)> = Vec::new();
    let query_text = match request.method {
        Method::Get => match request.query_param("query") {
            Some(q) => q.to_string(),
            None => return fail(400, "missing_query", "GET needs a ?query= parameter", w),
        },
        Method::Post => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                return fail(400, "bad_request", "request body is not UTF-8", w);
            };
            match request.content_type().as_deref() {
                Some("application/x-www-form-urlencoded") => {
                    match crate::request::parse_form(body) {
                        Ok(pairs) => form = pairs,
                        Err(m) => return fail(400, "bad_request", &format!("bad form body: {m}"), w),
                    }
                    match form.iter().find(|(k, _)| k == "query") {
                        Some((_, q)) => q.clone(),
                        None => {
                            return fail(400, "missing_query", "form body without query=", w)
                        }
                    }
                }
                Some("application/sparql-query") => body.to_string(),
                other => {
                    return fail(
                        415,
                        "unsupported_media_type",
                        &format!(
                            "POST /sparql takes application/sparql-query or application/x-www-form-urlencoded, got {}",
                            other.unwrap_or("nothing")
                        ),
                        w,
                    )
                }
            }
        }
        Method::Head => {
            record_request("/sparql", 405, started);
            let body = error_body("method_not_allowed", 405, "use GET or POST");
            return write_response(
                w,
                405,
                "application/json",
                &[("Allow", "GET, POST")],
                body.as_bytes(),
                keep_alive,
                false,
            );
        }
    };

    // Optional per-request deadline: `timeout` in milliseconds, from the
    // query string or the form body.
    let timeout_param = request.query_param("timeout").or_else(|| {
        form.iter()
            .find(|(k, _)| k == "timeout")
            .map(|(_, v)| v.as_str())
    });
    let mut query_request = QueryRequest::new()
        .client_tag(peer)
        .cancel_token(Arc::clone(cancel));
    if let Some(raw) = timeout_param {
        match raw.parse::<u64>() {
            Ok(ms) => query_request = query_request.deadline(Duration::from_millis(ms)),
            Err(_) => return fail(400, "bad_request", &format!("bad timeout {raw:?}"), w),
        }
    }

    // Serve and deliver inside the admission permit. `head_written`
    // splits the two meanings of a delivery failure: before the head,
    // the wire is still clean and a typed error can follow; after it,
    // the response is torn and the connection must be abandoned.
    let head_written = Cell::new(false);
    let outcome = service.query_delivering(&endpoint, &query_text, &query_request, |results| {
        if results.json_size_estimate() >= applab_sparql::JSON_FLUSH_BYTES as u64 {
            // Large result: stream it chunked straight off the
            // serializer's flush windows — the document never exists
            // in one allocation on the server.
            write_chunked_head(w, 200, "application/sparql-results+json", keep_alive)?;
            head_written.set(true);
            let mut chunked = ChunkedWriter::new(w);
            results.write_json(&mut chunked)?;
            chunked.finish()
        } else {
            // Small result: one materialization buys exact
            // fixed-length framing.
            let body = results.to_json();
            head_written.set(true);
            write_response(
                w,
                200,
                "application/sparql-results+json",
                &[],
                body.as_bytes(),
                keep_alive,
                false,
            )?;
            Ok(body.len() as u64)
        }
    });

    match &outcome.result {
        Ok(_) => {
            applab_obs::counter!("applab_http_response_bytes_total")
                .add(outcome.delivered_bytes.unwrap_or(0));
            record_request("/sparql", 200, started);
            Ok(())
        }
        Err(CoreError::Cancelled) if head_written.get() => {
            // The 200 head is already on the wire and the write path
            // failed: the client is gone (or too stalled to save).
            // Nothing valid can follow a torn response — record the
            // disconnect and abandon the connection. 499 is the
            // conventional "client closed request" status; it is only a
            // metrics label here, never sent.
            applab_obs::counter!("applab_http_client_disconnects_total").inc();
            record_request("/sparql", 499, started);
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "client disconnected mid-response",
            ))
        }
        Err(error) => {
            let status = error.http_status();
            record_request("/sparql", status, started);
            let body = error_body(error.code(), status, &error.to_string());
            // Overload rejections tell the client when to come back:
            // the service computes Retry-After from its smoothed queue
            // delay.
            let retry_secs = match error {
                CoreError::Overloaded { retry_after, .. } => {
                    Some(retry_after.as_secs().max(1).to_string())
                }
                _ => None,
            };
            let mut extra: Vec<(&str, &str)> = Vec::new();
            if let Some(secs) = &retry_secs {
                extra.push(("Retry-After", secs));
            }
            write_response(
                w,
                status,
                "application/json",
                &extra,
                body.as_bytes(),
                keep_alive,
                false,
            )
        }
    }
}

/// Per-request wire metrics: a `{route,status}` counter and the
/// end-to-end service-time histogram (parse excluded, response framing
/// included).
fn record_request(route: &str, status: u16, started: Instant) {
    applab_obs::global()
        .counter_with(
            "applab_http_requests_total",
            &[("route", route), ("status", status_label(status))],
        )
        .inc();
    applab_obs::global()
        .histogram_with(
            "applab_http_request_seconds",
            &[("route", route)],
            REQUEST_SECONDS_BUCKETS,
        )
        .observe(started.elapsed().as_secs_f64());
}

/// 50µs – 5s: wire requests include serialization but not WAN delivery.
const REQUEST_SECONDS_BUCKETS: &[f64] = &[
    0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
];

fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        411 => "411",
        413 => "413",
        415 => "415",
        431 => "431",
        499 => "499",
        500 => "500",
        502 => "502",
        503 => "503",
        504 => "504",
        505 => "505",
        _ => "other",
    }
}

/// The typed JSON error body:
/// `{"error":{"code":"parse","status":400,"message":"..."}}`.
pub(crate) fn error_body(code: &str, status: u16, message: &str) -> String {
    let mut out = String::with_capacity(64 + message.len());
    out.push_str("{\"error\":{\"code\":");
    push_json_string(&mut out, code);
    out.push_str(",\"status\":");
    out.push_str(&status.to_string());
    out.push_str(",\"message\":");
    push_json_string(&mut out, message);
    out.push_str("}}");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_valid_results_style_json() {
        let body = error_body("parse", 400, "bad \"query\"\nline 2");
        assert_eq!(
            body,
            "{\"error\":{\"code\":\"parse\",\"status\":400,\"message\":\"bad \\\"query\\\"\\nline 2\"}}"
        );
    }

    #[test]
    fn conn_queue_sheds_beyond_capacity_and_closes() {
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = ChaosStream::passthrough(TcpStream::connect(addr).unwrap());
        let c2 = ChaosStream::passthrough(TcpStream::connect(addr).unwrap());
        assert!(queue.push(c1).is_ok());
        assert!(queue.push(c2).is_err(), "beyond cap is shed");
        assert!(queue.pop().is_some());
        assert!(queue.close_and_drain().is_empty(), "already drained");
        assert!(queue.pop().is_none(), "closed and drained");
        let c3 = ChaosStream::passthrough(TcpStream::connect(addr).unwrap());
        assert!(queue.push(c3).is_err(), "closed queue refuses connections");
    }

    #[test]
    fn close_and_drain_returns_unserved_connections() {
        let queue = ConnQueue::new(4);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for _ in 0..3 {
            queue
                .push(ChaosStream::passthrough(TcpStream::connect(addr).unwrap()))
                .unwrap();
        }
        assert_eq!(queue.close_and_drain().len(), 3);
    }

    #[test]
    fn registry_aborts_every_live_connection() {
        let registry = ConnRegistry::default();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conn = ChaosStream::passthrough(TcpStream::connect(addr).unwrap());
        let cancel = Arc::new(AtomicBool::new(false));
        let guard = registry.register(&conn, Arc::clone(&cancel)).unwrap();
        assert_eq!(registry.abort_all(), 1);
        assert!(cancel.load(Ordering::Relaxed), "abort sets the token");
        drop(guard);
        assert_eq!(registry.abort_all(), 0, "deregistered on drop");
    }
}
