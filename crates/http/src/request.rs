//! HTTP/1.1 request parsing with hard size and time limits.
//!
//! The reader is deliberately strict and small: request line + headers
//! capped at [`HttpConfig::max_head_bytes`](crate::HttpConfig), bodies at
//! [`HttpConfig::max_body_bytes`](crate::HttpConfig), `Content-Length`
//! framing only (no chunked request bodies), and every syntax violation a
//! typed [`RequestError`] that maps onto a 4xx/5xx response instead of a
//! torn connection. Slow or stalled clients are bounded by the socket
//! read timeout the connection handler installs, surfacing here as
//! [`RequestError::Timeout`].

use crate::HttpConfig;
use std::io::BufRead;

/// The request methods the wire plane routes; everything else is
/// answered `405 Method Not Allowed` without reading a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `HEAD` — answered like `GET` with the body suppressed.
    Head,
    /// `POST`
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// One parsed request: the wire plane's whole view of a client call.
#[derive(Debug)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// Decoded path, without the query string (`/sparql`).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is sent.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The media type of the body, lower-cased, without parameters
    /// (`application/x-www-form-urlencoded; charset=utf-8` →
    /// `application/x-www-form-urlencoded`).
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }
}

/// Why a request could not be served; each variant carries its HTTP
/// status so the connection handler can answer with a typed error body.
#[derive(Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Request line or header syntax violation → 400.
    BadSyntax(String),
    /// The head (request line + headers) outgrew the configured cap
    /// → 431 Request Header Fields Too Large.
    HeadTooLarge,
    /// The declared body outgrew the configured cap → 413.
    BodyTooLarge,
    /// A `POST` without a parseable `Content-Length` → 411.
    LengthRequired,
    /// An HTTP version other than 1.0/1.1 → 505.
    UnsupportedVersion,
    /// A method outside [`Method`] → 405.
    MethodNotAllowed(String),
    /// The socket read timed out mid-request → 408.
    Timeout,
    /// The connection died mid-request (no response possible).
    ConnectionLost,
}

impl RequestError {
    /// The HTTP status this parse failure answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::BadSyntax(_) => 400,
            RequestError::HeadTooLarge => 431,
            RequestError::BodyTooLarge => 413,
            RequestError::LengthRequired => 411,
            RequestError::UnsupportedVersion => 505,
            RequestError::MethodNotAllowed(_) => 405,
            RequestError::Timeout => 408,
            RequestError::ConnectionLost => 400,
        }
    }

    /// A stable code string for the JSON error body and metrics label.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::BadSyntax(_) => "bad_request",
            RequestError::HeadTooLarge => "head_too_large",
            RequestError::BodyTooLarge => "body_too_large",
            RequestError::LengthRequired => "length_required",
            RequestError::UnsupportedVersion => "unsupported_version",
            RequestError::MethodNotAllowed(_) => "method_not_allowed",
            RequestError::Timeout => "request_timeout",
            RequestError::ConnectionLost => "connection_lost",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadSyntax(m) => write!(f, "malformed request: {m}"),
            RequestError::HeadTooLarge => write!(f, "request head exceeds the configured limit"),
            RequestError::BodyTooLarge => write!(f, "request body exceeds the configured limit"),
            RequestError::LengthRequired => write!(f, "POST requires a Content-Length"),
            RequestError::UnsupportedVersion => write!(f, "only HTTP/1.0 and HTTP/1.1 are served"),
            RequestError::MethodNotAllowed(m) => write!(f, "method {m} is not served"),
            RequestError::Timeout => write!(f, "timed out reading the request"),
            RequestError::ConnectionLost => write!(f, "connection lost mid-request"),
        }
    }
}

impl std::error::Error for RequestError {}

fn io_error(e: std::io::Error) -> RequestError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RequestError::Timeout,
        _ => RequestError::ConnectionLost,
    }
}

/// Read one request off a keep-alive connection. `Ok(None)` is a clean
/// close: EOF before the first request byte.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    config: &HttpConfig,
) -> Result<Option<Request>, RequestError> {
    let head = match read_head(reader, config.max_head_bytes)? {
        Some(head) => head,
        None => return Ok(None),
    };
    let mut lines = head
        .split(|&b| b == b'\n')
        .map(|l| l.strip_suffix(b"\r").unwrap_or(l));
    let request_line = lines.next().unwrap_or(b"");
    let request_line = std::str::from_utf8(request_line)
        .map_err(|_| RequestError::BadSyntax("request line is not UTF-8".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::BadSyntax(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::UnsupportedVersion);
    }
    let method =
        Method::parse(method).ok_or_else(|| RequestError::MethodNotAllowed(method.to_string()))?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| RequestError::BadSyntax("header is not UTF-8".into()))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::BadSyntax(format!("header without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RequestError::BadSyntax(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = parse_target(target)?;

    // Body framing: Content-Length only. A POST without one is answered
    // 411 (chunked request bodies are not worth their complexity here);
    // GET/HEAD bodies are read and discarded if declared, per the RFC's
    // "a server MAY reject" allowance we don't take.
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => Some(
            v.parse::<usize>()
                .map_err(|_| RequestError::BadSyntax(format!("bad Content-Length {v:?}")))?,
        ),
        None => None,
    };
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RequestError::LengthRequired);
    }
    let body = match (method, content_length) {
        (Method::Post, None) => return Err(RequestError::LengthRequired),
        (_, None) | (_, Some(0)) => Vec::new(),
        (_, Some(n)) if n > config.max_body_bytes => return Err(RequestError::BodyTooLarge),
        (_, Some(n)) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body).map_err(io_error)?;
            body
        }
    };

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Read up to and including the blank line ending the head; the returned
/// buffer excludes the final `\r\n\r\n`. `max` bounds how much a client
/// can dribble before we give up with [`RequestError::HeadTooLarge`].
fn read_head<R: BufRead>(reader: &mut R, max: usize) -> Result<Option<Vec<u8>>, RequestError> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    loop {
        let buf = match reader.fill_buf().map_err(io_error) {
            Ok(buf) => buf,
            // A read timeout with nothing received is an idle keep-alive
            // connection reaching end of life, not a slow request: close
            // it silently instead of answering 408.
            Err(RequestError::Timeout) if head.is_empty() => return Ok(None),
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return if head.is_empty() {
                Ok(None) // clean close between keep-alive requests
            } else {
                Err(RequestError::ConnectionLost)
            };
        }
        // Scan for the head terminator across the chunk boundary.
        let already = head.len();
        let take = buf.len().min(max + 4 - already.min(max + 4));
        head.extend_from_slice(&buf[..take]);
        let search_from = already.saturating_sub(3);
        if let Some(end) = find_terminator(&head[search_from..]).map(|i| i + search_from) {
            let consumed = end + 4 - already;
            reader.consume(consumed);
            head.truncate(end);
            if head.len() > max {
                return Err(RequestError::HeadTooLarge);
            }
            return Ok(Some(head));
        }
        reader.consume(take);
        if head.len() >= max + 4 {
            return Err(RequestError::HeadTooLarge);
        }
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Split a request target into a decoded path and decoded query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), RequestError> {
    if !target.starts_with('/') {
        return Err(RequestError::BadSyntax(format!(
            "only origin-form targets are served, got {target:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(path, false)
        .map_err(|m| RequestError::BadSyntax(format!("bad path encoding: {m}")))?;
    let query =
        parse_form(query).map_err(|m| RequestError::BadSyntax(format!("bad query string: {m}")))?;
    Ok((path, query))
}

/// Parse `application/x-www-form-urlencoded` (also the query-string
/// grammar): `k=v&k2=v2`, `+` as space, `%XX` escapes, UTF-8.
pub fn parse_form(input: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in input.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// Percent-decode a URL component; `plus_as_space` applies the
/// form-encoding rule that `+` means space.
pub fn percent_decode(input: &str, plus_as_space: bool) -> Result<String, String> {
    let bytes = input.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad %-escape at byte {i}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "decoded bytes are not UTF-8".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn cfg() -> HttpConfig {
        HttpConfig::default()
    }

    fn parse(raw: &[u8]) -> Result<Option<Request>, RequestError> {
        read_request(&mut BufReader::new(raw), &cfg())
    }

    #[test]
    fn parses_a_get_with_query_string() {
        let req = parse(b"GET /sparql?query=SELECT%20%3Fs+WHERE%20%7B%7D&timeout=250 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/sparql");
        assert_eq!(req.query_param("query"), Some("SELECT ?s WHERE {}"));
        assert_eq!(req.query_param("timeout"), Some("250"));
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_a_post_with_body_and_content_type() {
        let req = parse(
            b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query; charset=utf-8\r\nContent-Length: 9\r\n\r\nASK WHERE",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(
            req.content_type().as_deref(),
            Some("application/sparql-query")
        );
        assert_eq!(req.body, b"ASK WHERE");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_close() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn eof_mid_head_is_a_lost_connection() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nHos").unwrap_err(),
            RequestError::ConnectionLost
        );
    }

    #[test]
    fn post_without_length_is_411() {
        let err = parse(b"POST /sparql HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, RequestError::LengthRequired);
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let raw = format!(
            "POST /sparql HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            cfg().max_body_bytes + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err, RequestError::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(
            format!("X-Pad: {}\r\n\r\n", "a".repeat(cfg().max_head_bytes)).as_bytes(),
        );
        let err = parse(&raw).unwrap_err();
        assert_eq!(err, RequestError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn unknown_method_and_version_are_typed() {
        assert_eq!(
            parse(b"BREW /pot HTTP/1.1\r\n\r\n").unwrap_err(),
            RequestError::MethodNotAllowed("BREW".into())
        );
        assert_eq!(
            parse(b"GET / HTTP/2\r\n\r\n").unwrap_err(),
            RequestError::UnsupportedVersion
        );
    }

    #[test]
    fn chunked_request_bodies_are_refused() {
        let err =
            parse(b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, RequestError::LengthRequired);
    }

    #[test]
    fn two_requests_parse_off_one_reader() {
        let raw: &[u8] = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw);
        let a = read_request(&mut reader, &cfg()).unwrap().unwrap();
        let b = read_request(&mut reader, &cfg()).unwrap().unwrap();
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/metrics");
        assert!(read_request(&mut reader, &cfg()).unwrap().is_none());
    }

    #[test]
    fn form_parsing_decodes_pluses_and_escapes() {
        let pairs = parse_form("query=SELECT+%3Fs&default-graph-uri=").unwrap();
        assert_eq!(pairs[0], ("query".into(), "SELECT ?s".into()));
        assert_eq!(pairs[1].0, "default-graph-uri");
        assert!(parse_form("broken=%zz").is_err());
    }

    #[test]
    fn head_terminator_straddling_chunks_is_found() {
        // A tiny BufReader capacity forces the \r\n\r\n across fill_buf
        // boundaries.
        let raw: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: example.org\r\n\r\n";
        for cap in 1..8 {
            let mut reader = BufReader::with_capacity(cap, raw);
            let req = read_request(&mut reader, &cfg()).unwrap().unwrap();
            assert_eq!(req.path, "/healthz", "capacity {cap}");
        }
    }
}
