//! Deterministic socket-level fault injection for the wire plane.
//!
//! PR 4 gave the *downstream* data plane a seeded fault model
//! ([`applab_dap::chaos`]); this module extends the same discipline up to
//! the listening socket. [`ChaosListener`] decorates accepted
//! [`TcpStream`]s with [`ChaosStream`], which injects the hostile-client
//! behaviours an internet-facing SPARQL endpoint actually meets:
//!
//! | kind            | effect on the wire                                  | server must produce            |
//! |-----------------|-----------------------------------------------------|--------------------------------|
//! | `reset`         | connection torn down mid-response (FIN truncation)  | clean connection error         |
//! | `read_stall`    | first request read delayed                          | slow but correct response      |
//! | `write_stall`   | first response write delayed                        | slow but correct response      |
//! | `slowloris`     | request head dribbles in one byte at a time         | correct response or typed 408  |
//! | `partial_write` | every response write accepts only half its buffer   | correct response (slower)      |
//! | `corrupt`       | one early request byte gets its high bit set        | typed 400 / 408, never a silently wrong answer |
//!
//! Scheduling is deterministic in *accept order*: the listener draws
//! exactly one `u64` from a seeded splitmix64 generator
//! ([`applab_dap::DetRng`]) per accepted connection and derives the whole
//! per-connection fault plan from that sub-seed. Replaying the same seed
//! against the same connection sequence replays the same faults — the
//! chaos suite (`tests/http_chaos.rs`) leans on this for per-seed replay.
//!
//! The corruption fault sets the high bit (`^= 0x80`) of one byte in the
//! first [`CORRUPT_WINDOW`] bytes of the request. A high-bit byte can
//! never be valid UTF-8 in a request line or header, and never a valid
//! head terminator — so a corrupted request always surfaces as a typed
//! 4xx (or a 408 when the terminator itself was hit), never as a
//! *different valid query* answered silently.

use applab_dap::DetRng;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Byte window (from the start of the request stream) in which the
/// corruption fault flips a bit: always inside the request line or the
/// first header, so the damage is detected at parse time.
pub const CORRUPT_WINDOW: usize = 48;

/// Per-connection fault rates and fault parameters for [`ChaosListener`].
/// Rates are probabilities in `[0, 1]`, applied cumulatively from one
/// uniform draw per connection, so their sum should stay ≤ 1.
#[derive(Debug, Clone)]
pub struct SocketChaos {
    /// Seed for the accept-order fault schedule.
    pub seed: u64,
    /// Connection torn down after a bounded number of response bytes.
    pub reset_rate: f64,
    /// First request read delayed by [`SocketChaos::stall`].
    pub read_stall_rate: f64,
    /// First response write delayed by [`SocketChaos::stall`].
    pub write_stall_rate: f64,
    /// Request head dribbles in one byte per read, each
    /// [`SocketChaos::drip_delay`] late.
    pub slowloris_rate: f64,
    /// Every response write accepts at most half its buffer.
    pub partial_write_rate: f64,
    /// One early request byte gets its high bit set.
    pub corrupt_rate: f64,
    /// The delay charged by a read/write stall.
    pub stall: Duration,
    /// The per-byte delay of a slowloris drip.
    pub drip_delay: Duration,
}

impl Default for SocketChaos {
    fn default() -> Self {
        SocketChaos {
            seed: 0,
            reset_rate: 0.0,
            read_stall_rate: 0.0,
            write_stall_rate: 0.0,
            slowloris_rate: 0.0,
            partial_write_rate: 0.0,
            corrupt_rate: 0.0,
            stall: Duration::from_millis(25),
            drip_delay: Duration::from_millis(2),
        }
    }
}

impl SocketChaos {
    /// Split `rate` evenly across the six fault kinds — the shape the
    /// chaos suite uses ("30% fault rate" → 5% of each kind).
    pub fn uniform(rate: f64, seed: u64) -> Self {
        let each = rate / 6.0;
        SocketChaos {
            seed,
            reset_rate: each,
            read_stall_rate: each,
            write_stall_rate: each,
            slowloris_rate: each,
            partial_write_rate: each,
            corrupt_rate: each,
            ..SocketChaos::default()
        }
    }

    /// Sum of all fault rates.
    pub fn total_rate(&self) -> f64 {
        self.reset_rate
            + self.read_stall_rate
            + self.write_stall_rate
            + self.slowloris_rate
            + self.partial_write_rate
            + self.corrupt_rate
    }
}

/// The per-connection fault plan, fully derived at accept time.
#[derive(Debug, Clone)]
enum Plan {
    /// Let `threshold` response bytes through, then shut the socket down.
    Reset {
        threshold: u64,
    },
    ReadStall {
        delay: Duration,
        fired: bool,
    },
    WriteStall {
        delay: Duration,
        fired: bool,
    },
    /// The first `bytes` request bytes arrive one per read, `delay` late.
    Slowloris {
        bytes: u64,
        delay: Duration,
    },
    PartialWrite,
    /// Set the high bit of the request byte at this absolute offset.
    Corrupt {
        offset: u64,
    },
}

impl Plan {
    /// Derive a plan from one per-connection sub-seed. `None` means the
    /// connection is a healthy passthrough.
    fn derive(config: &SocketChaos, subseed: u64) -> Option<Plan> {
        let mut rng = DetRng::new(subseed);
        let draw = rng.next_f64();
        let mut acc = config.reset_rate;
        if draw < acc {
            // Small thresholds reset inside the response head, larger
            // ones mid-body or a few keep-alive responses in.
            return Some(Plan::Reset {
                threshold: 1 + rng.next_below(2048) as u64,
            });
        }
        acc += config.read_stall_rate;
        if draw < acc {
            return Some(Plan::ReadStall {
                delay: config.stall,
                fired: false,
            });
        }
        acc += config.write_stall_rate;
        if draw < acc {
            return Some(Plan::WriteStall {
                delay: config.stall,
                fired: false,
            });
        }
        acc += config.slowloris_rate;
        if draw < acc {
            return Some(Plan::Slowloris {
                bytes: 8 + rng.next_below(25) as u64,
                delay: config.drip_delay,
            });
        }
        acc += config.partial_write_rate;
        if draw < acc {
            return Some(Plan::PartialWrite);
        }
        acc += config.corrupt_rate;
        if draw < acc {
            return Some(Plan::Corrupt {
                offset: rng.next_below(CORRUPT_WINDOW) as u64,
            });
        }
        None
    }

    fn kind(&self) -> &'static str {
        match self {
            Plan::Reset { .. } => "reset",
            Plan::ReadStall { .. } => "read_stall",
            Plan::WriteStall { .. } => "write_stall",
            Plan::Slowloris { .. } => "slowloris",
            Plan::PartialWrite => "partial_write",
            Plan::Corrupt { .. } => "corrupt",
        }
    }
}

/// Fault state shared between the read and write halves of one
/// connection (the connection handler clones the stream for buffered
/// reading; both halves must see one byte-offset view of the wire).
#[derive(Debug)]
struct FaultState {
    plan: Plan,
    /// Request bytes read so far, across both halves.
    read_offset: u64,
    /// Response bytes written so far.
    written: u64,
}

/// A seeded fault-plan dispenser over accepted connections.
///
/// One `u64` is drawn per accept — in accept order — and the whole
/// per-connection plan derives from it, so the fault schedule is a pure
/// function of `(seed, accept index)`.
#[derive(Debug)]
pub struct ChaosListener {
    config: SocketChaos,
    rng: Mutex<DetRng>,
    instance: String,
}

impl ChaosListener {
    /// A listener-side decorator injecting faults per `config`.
    pub fn new(config: SocketChaos) -> Self {
        let rng = Mutex::new(DetRng::new(config.seed));
        ChaosListener {
            config,
            rng,
            instance: applab_obs::next_instance_id().to_string(),
        }
    }

    /// Decorate one accepted connection with its derived fault plan
    /// (most connections pass through untouched at low rates).
    pub fn wrap(&self, tcp: TcpStream) -> ChaosStream {
        let subseed = self.rng.lock().expect("chaos rng lock").next_u64();
        let plan = Plan::derive(&self.config, subseed);
        let fault = plan.map(|plan| {
            applab_obs::global()
                .counter_with(
                    "applab_http_socket_faults_total",
                    &[("kind", plan.kind()), ("instance", &self.instance)],
                )
                .inc();
            Arc::new(Mutex::new(FaultState {
                plan,
                read_offset: 0,
                written: 0,
            }))
        });
        ChaosStream { tcp, fault }
    }
}

/// A [`TcpStream`] decorated with at most one injected fault. With no
/// fault attached (the common case, and every connection of a chaos-free
/// server) reads and writes delegate straight to the socket.
#[derive(Debug)]
pub struct ChaosStream {
    tcp: TcpStream,
    fault: Option<Arc<Mutex<FaultState>>>,
}

impl ChaosStream {
    /// A fault-free wrapper — the no-chaos configuration's stream type,
    /// so the server has exactly one connection type either way.
    pub fn passthrough(tcp: TcpStream) -> Self {
        ChaosStream { tcp, fault: None }
    }

    /// Clone the stream; both clones share one fault state, so the
    /// read half and write half of a connection see a single plan.
    pub fn try_clone(&self) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            tcp: self.tcp.try_clone()?,
            fault: self.fault.clone(),
        })
    }

    /// A raw handle onto the underlying socket for out-of-band shutdown
    /// (the drain-deadline abort path) — it bypasses fault injection.
    pub fn shutdown_handle(&self) -> io::Result<TcpStream> {
        self.tcp.try_clone()
    }

    /// See [`TcpStream::peer_addr`].
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.tcp.peer_addr()
    }

    /// See [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.tcp.set_read_timeout(dur)
    }

    /// See [`TcpStream::set_write_timeout`].
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.tcp.set_write_timeout(dur)
    }

    /// See [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.tcp.set_nodelay(nodelay)
    }

    /// See [`TcpStream::shutdown`].
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.tcp.shutdown(how)
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(fault) = &self.fault else {
            return self.tcp.read(buf);
        };
        // One worker thread owns both halves of a connection, so holding
        // the lock across the (bounded) stall sleeps contends with
        // nothing.
        let mut st = fault.lock().expect("chaos fault lock");
        let read_offset = st.read_offset;
        let n = match &mut st.plan {
            Plan::ReadStall { delay, fired } => {
                if !*fired {
                    *fired = true;
                    std::thread::sleep(*delay);
                }
                self.tcp.read(buf)?
            }
            Plan::Slowloris { bytes, delay } if read_offset < *bytes && !buf.is_empty() => {
                std::thread::sleep(*delay);
                self.tcp.read(&mut buf[..1])?
            }
            Plan::Corrupt { offset } => {
                let offset = *offset;
                let n = self.tcp.read(buf)?;
                if (read_offset..read_offset + n as u64).contains(&offset) {
                    buf[(offset - read_offset) as usize] ^= 0x80;
                }
                n
            }
            _ => self.tcp.read(buf)?,
        };
        st.read_offset += n as u64;
        Ok(n)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(fault) = &self.fault else {
            return self.tcp.write(buf);
        };
        let mut st = fault.lock().expect("chaos fault lock");
        let written = st.written;
        match &mut st.plan {
            Plan::Reset { threshold } => {
                if written >= *threshold {
                    // Past the byte budget: tear the connection down so
                    // the client sees a truncated response. `shutdown`
                    // sends a FIN; the client's framing check (missing
                    // Content-Length bytes / missing terminator chunk)
                    // turns the truncation into a connection error.
                    let _ = self.tcp.shutdown(Shutdown::Both);
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "chaos: injected connection reset",
                    ));
                }
                let allowed = ((*threshold - written) as usize).min(buf.len());
                let n = self.tcp.write(&buf[..allowed])?;
                st.written += n as u64;
                Ok(n)
            }
            Plan::WriteStall { delay, fired } => {
                if !*fired {
                    *fired = true;
                    std::thread::sleep(*delay);
                }
                let n = self.tcp.write(buf)?;
                st.written += n as u64;
                Ok(n)
            }
            Plan::PartialWrite if !buf.is_empty() => {
                let n = self.tcp.write(&buf[..buf.len().div_ceil(2)])?;
                st.written += n as u64;
                Ok(n)
            }
            _ => {
                let n = self.tcp.write(buf)?;
                st.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.tcp.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn with_plan(plan: Plan, tcp: TcpStream) -> ChaosStream {
        ChaosStream {
            tcp,
            fault: Some(Arc::new(Mutex::new(FaultState {
                plan,
                read_offset: 0,
                written: 0,
            }))),
        }
    }

    #[test]
    fn plans_are_deterministic_in_accept_order() {
        let kinds = |seed| {
            let listener = ChaosListener::new(SocketChaos::uniform(0.5, seed));
            (0..64)
                .map(|_| {
                    let subseed = listener.rng.lock().unwrap().next_u64();
                    Plan::derive(&listener.config, subseed).map(|p| p.kind())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(kinds(7), kinds(7), "same seed, same schedule");
        assert_ne!(kinds(7), kinds(8), "different seed, different schedule");
        let hit = kinds(7).iter().filter(|k| k.is_some()).count();
        assert!((10..=54).contains(&hit), "~50% fault rate, got {hit}/64");
    }

    #[test]
    fn zero_rate_never_faults_and_full_rate_always_does() {
        let quiet = ChaosListener::new(SocketChaos::uniform(0.0, 3));
        let loud = ChaosListener::new(SocketChaos::uniform(1.0, 3));
        for _ in 0..32 {
            let subseed = quiet.rng.lock().unwrap().next_u64();
            assert!(Plan::derive(&quiet.config, subseed).is_none());
            let subseed = loud.rng.lock().unwrap().next_u64();
            assert!(Plan::derive(&loud.config, subseed).is_some());
        }
    }

    #[test]
    fn reset_plan_truncates_the_response() {
        let (mut client, server) = tcp_pair();
        let mut chaos = with_plan(Plan::Reset { threshold: 4 }, server);
        assert_eq!(chaos.write(b"abcdef").unwrap(), 4, "capped at the budget");
        let err = chaos.write(b"ef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abcd", "client sees a strict prefix, then FIN");
    }

    #[test]
    fn slowloris_plan_drips_one_byte_per_read() {
        let (mut client, server) = tcp_pair();
        client.write_all(b"GET / HTTP/1.1").unwrap();
        let mut chaos = with_plan(
            Plan::Slowloris {
                bytes: 3,
                delay: Duration::ZERO,
            },
            server,
        );
        let mut buf = [0u8; 8];
        assert_eq!(chaos.read(&mut buf).unwrap(), 1);
        assert_eq!(chaos.read(&mut buf).unwrap(), 1);
        assert_eq!(chaos.read(&mut buf).unwrap(), 1);
        let n = chaos.read(&mut buf).unwrap();
        assert!(n > 1, "past the drip window reads flow normally, got {n}");
    }

    #[test]
    fn corrupt_plan_sets_one_high_bit_at_its_offset() {
        let (mut client, server) = tcp_pair();
        client.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut chaos = with_plan(Plan::Corrupt { offset: 4 }, server);
        // Read in two small slices to cross the offset boundary.
        let mut a = [0u8; 3];
        chaos.read_exact(&mut a).unwrap();
        assert_eq!(&a, b"GET");
        let mut b = [0u8; 4];
        chaos.read_exact(&mut b).unwrap();
        assert_eq!(&b, &[b' ', b'/' ^ 0x80, b'h', b'e']);
    }

    #[test]
    fn partial_write_plan_halves_every_write() {
        let (mut client, server) = tcp_pair();
        let mut chaos = with_plan(Plan::PartialWrite, server);
        chaos.write_all(b"hello world").unwrap();
        drop(chaos);
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"hello world", "write_all loops through the halves");
    }

    #[test]
    fn clones_share_one_fault_state() {
        let (mut client, server) = tcp_pair();
        let chaos = with_plan(Plan::Reset { threshold: 4 }, server);
        let mut write_half = chaos.try_clone().unwrap();
        assert_eq!(write_half.write(b"abcd").unwrap(), 4);
        drop(write_half);
        let mut chaos = chaos;
        assert!(chaos.write(b"x").is_err(), "budget spent on the clone");
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abcd");
    }
}
