//! `applab-http`: the wire plane — a zero-heavy-dependency HTTP/1.1
//! server exposing an [`ApplabService`](applab_service::ApplabService)
//! over the
//! [W3C SPARQL Protocol](https://www.w3.org/TR/sparql11-protocol/).
//!
//! The paper's promise is that app developers reach Copernicus-derived
//! Linked Data over *standard web endpoints*; this crate is that
//! endpoint, hand-rolled on `std::net` (the workspace vendors no HTTP
//! stack):
//!
//! * **`GET /sparql?query=`** — URL-encoded query string, plus
//!   `/sparql/{endpoint}` to pick a named backend and `timeout=` (ms)
//!   for a per-request deadline;
//! * **`POST /sparql`** — `application/x-www-form-urlencoded`
//!   (`query=...`) and direct `application/sparql-query` bodies;
//! * **responses** — W3C SPARQL Results JSON. Small documents are
//!   materialized once and sent with an exact `Content-Length`; anything
//!   past one serializer flush window streams as `Transfer-Encoding:
//!   chunked` straight off [`QueryResults::write_json`]'s 8 KiB windows,
//!   so the service never holds a large response in one allocation
//!   (the [`QueryOutcome::is_streamable`] decision);
//! * **`/metrics`** — the `applab-obs` registry in Prometheus text
//!   exposition format; **`/healthz`** — a liveness probe;
//! * **typed failures** — every [`CoreError`] maps through
//!   [`CoreError::http_status`] (single source of truth in
//!   `applab-core`) to a status plus a JSON body
//!   `{"error":{"code","status","message"}}`; wire-level violations
//!   (oversized head/body, bad framing) answer 4xx before any query
//!   runs.
//!
//! The server is an acceptor thread feeding a bounded handoff queue
//! drained by a fixed worker pool; each worker owns one connection
//! through its keep-alive lifetime (HTTP/1.1 persistent connections,
//! idle-timeout bounded). Requests are parsed with hard size limits and
//! socket read timeouts so a slow or hostile client costs one worker at
//! most one timeout.
//!
//! ```no_run
//! use applab_http::{HttpConfig, HttpServer};
//! use applab_service::{ApplabService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let service = Arc::new(ApplabService::new(ServiceConfig::default()));
//! let server = HttpServer::bind("127.0.0.1:0", service, HttpConfig::default()).unwrap();
//! println!("serving on http://{}", server.local_addr());
//! // curl "http://$ADDR/sparql?query=SELECT%20..."
//! server.shutdown();
//! ```
//!
//! [`CoreError`]: applab_core::CoreError
//! [`CoreError::http_status`]: applab_core::CoreError::http_status
//! [`QueryOutcome::is_streamable`]: applab_service::QueryOutcome::is_streamable
//! [`QueryResults::write_json`]: applab_sparql::QueryResults::write_json
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod chaos;
pub mod request;
pub mod response;
mod server;

pub use chaos::{ChaosListener, ChaosStream, SocketChaos};
pub use request::{Method, Request, RequestError};
pub use response::ChunkedWriter;
pub use server::HttpServer;

use std::time::Duration;

/// Tuning knobs for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Worker threads; each owns one connection at a time, so this is
    /// also the concurrent-connection ceiling (admission control on
    /// concurrent *queries* stays with
    /// [`ApplabService`](applab_service::ApplabService)).
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this the
    /// acceptor sheds with a best-effort `503` + `Retry-After`.
    pub max_queued_connections: usize,
    /// Cap on the request line + headers, in bytes (`431` beyond).
    pub max_head_bytes: usize,
    /// Cap on a request body, in bytes (`413` beyond, enforced against
    /// the declared `Content-Length` before reading).
    pub max_body_bytes: usize,
    /// Socket read timeout: an idle keep-alive connection is closed
    /// after this long, and a stalled mid-request read answers `408`.
    pub keep_alive_timeout: Duration,
    /// Socket write timeout: a client that stops reading its response
    /// blocks a worker for at most this long per write before the
    /// connection is abandoned (and the in-flight query cancelled).
    pub write_deadline: Duration,
    /// How long [`HttpServer::shutdown`] waits for in-flight connections
    /// to drain before aborting the stragglers through their cancel
    /// tokens and socket shutdowns.
    pub drain_deadline: Duration,
    /// Endpoint served by bare `/sparql`; `None` routes to the first
    /// endpoint registered on the service. `/sparql/{name}` always
    /// addresses explicitly.
    pub default_endpoint: Option<String>,
    /// Seeded socket-level fault injection (tests/benches only); `None`
    /// serves every connection untouched.
    pub chaos: Option<SocketChaos>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            workers: 4,
            max_queued_connections: 64,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            keep_alive_timeout: Duration::from_secs(5),
            write_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            default_endpoint: None,
            chaos: None,
        }
    }
}
