//! Span-tree equivalence between the sequential and parallel probe paths.
//!
//! Profiling the same query with the hash probe forced onto worker
//! threads must yield (a) exactly the sequential results, and (b) the
//! same stage structure once the per-chunk worker spans are stripped —
//! the `probe.chunk` spans are the only trace-level difference, and they
//! must be parented under the `join` span despite running on scoped
//! threads.

use applab_rdf::{Graph, Literal, Resource, Term, Triple};
use applab_sparql::{evaluate_with, parse_query, EvalOptions, QueryResults};

fn test_graph(n: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        let s = Resource::named(format!("http://ex.org/s{i}"));
        g.insert(Triple::new(
            s.clone(),
            "http://ex.org/kind",
            Term::named(format!("http://ex.org/k{}", i % 3)),
        ));
        g.insert(Triple::new(
            s,
            "http://ex.org/value",
            Literal::integer(i as i64),
        ));
    }
    g
}

/// Pre-order stage names, skipping `probe.chunk` worker spans.
fn shape(node: &applab_obs::SpanNode, out: &mut Vec<&'static str>) {
    if node.name() == "probe.chunk" {
        return;
    }
    out.push(node.name());
    for c in &node.children {
        shape(c, out);
    }
}

#[test]
fn parallel_probe_tree_matches_sequential_modulo_chunks() {
    let g = test_graph(300);
    let sparql = "SELECT ?s ?v WHERE { ?s <http://ex.org/kind> <http://ex.org/k1> . ?s <http://ex.org/value> ?v }";
    let q = parse_query(sparql).unwrap();

    let (seq_res, seq_tree) = applab_obs::profile("query", |_| {
        evaluate_with(&g, &q, &EvalOptions::default()).unwrap()
    });
    let (par_res, par_tree) = applab_obs::profile("query", |_| {
        evaluate_with(
            &g,
            &q,
            &EvalOptions {
                parallel_probe_threshold: 1,
                parallel_workers: Some(4),
                ..EvalOptions::default()
            },
        )
        .unwrap()
    });

    // Identical output, identical row order.
    assert_eq!(seq_res, par_res);
    match &seq_res {
        QueryResults::Solutions { rows, .. } => assert_eq!(rows.len(), 100),
        other => panic!("expected solutions, got {other:?}"),
    }

    // Same stage skeleton once worker chunks are removed.
    let (mut seq_shape, mut par_shape) = (Vec::new(), Vec::new());
    shape(&seq_tree, &mut seq_shape);
    shape(&par_tree, &mut par_shape);
    assert_eq!(seq_shape, par_shape, "stage structure diverged");
    for stage in ["sparql.evaluate", "bgp", "scan", "join", "project"] {
        assert!(seq_shape.contains(&stage), "missing stage {stage}");
    }

    // The worker spans exist only in the parallel trace, and they nest
    // under the join despite being recorded from scoped threads.
    let mut chunks = Vec::new();
    par_tree.find_all("probe.chunk", &mut chunks);
    assert!(!chunks.is_empty(), "parallel run produced no chunk spans");
    let join = par_tree.find("join").expect("join span");
    let mut under_join = Vec::new();
    join.find_all("probe.chunk", &mut under_join);
    assert_eq!(under_join.len(), chunks.len());
    let mut seq_chunks = Vec::new();
    seq_tree.find_all("probe.chunk", &mut seq_chunks);
    assert!(seq_chunks.is_empty());

    // Cardinalities recorded on the join agree between the two paths.
    let seq_join = seq_tree.find("join").expect("join span");
    for key in ["probe", "build", "out"] {
        assert_eq!(
            seq_join.field(key).map(ToString::to_string),
            join.field(key).map(ToString::to_string),
            "join field {key}"
        );
    }
}
