//! Pinned regressions from the differential QA harness: aggregates must
//! depend only on the *multiset* of group members, never on the order an
//! engine happened to deliver them in.
//!
//! Two bugs are pinned here:
//!
//! 1. SUM/AVG summed f64s in delivery order. Floating-point addition is
//!    not associative, so the sequential pipeline, the parallel pipeline,
//!    and the reference evaluator could print different (all "correct")
//!    sums for the same group. Fixed by sorting addends with `total_cmp`
//!    before reducing.
//! 2. MIN/MAX used numeric comparison only, under which distinct terms
//!    like `5` (xsd:integer) and `"5.0"` (xsd:double) compare Equal — the
//!    winner was whichever arrived first. Fixed by breaking numeric ties
//!    on the printed form.

use applab_rdf::{Graph, Literal, NamedNode, Resource, Term, Triple};
use applab_sparql::{evaluate_with, parse_query, reference, EvalOptions, QueryResults};

/// A graph of `<http://ex.org/s{i}> <http://ex.org/p> {value}` triples,
/// inserted in the order given.
fn graph_of(values: &[Literal]) -> Graph {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            Triple::new(
                Resource::named(format!("http://ex.org/s{i}")),
                NamedNode::new("http://ex.org/p"),
                Term::Literal(v.clone()),
            )
        })
        .collect()
}

/// The single row of a solutions result, rendered term-by-term.
fn row_strings(r: &QueryResults) -> Vec<String> {
    match r {
        QueryResults::Solutions { rows, .. } => {
            assert_eq!(rows.len(), 1, "expected exactly one row");
            rows[0]
                .values
                .iter()
                .map(|v| v.as_ref().map(Term::to_string).unwrap_or_default())
                .collect()
        }
        other => panic!("expected solutions, got {other:?}"),
    }
}

/// Evaluate `query` over `graph` on every engine configuration and demand
/// one identical lexical answer.
fn unanimous(graph: &Graph, query: &str) -> Vec<String> {
    let q = parse_query(query).expect("query parses");
    let reference = row_strings(&reference::evaluate(graph, &q).expect("reference evaluates"));
    let sequential = row_strings(
        &evaluate_with(graph, &q, &EvalOptions::sequential()).expect("sequential evaluates"),
    );
    let parallel = row_strings(
        &evaluate_with(graph, &q, &EvalOptions::forced_parallel(3)).expect("parallel evaluates"),
    );
    assert_eq!(reference, sequential, "reference vs sequential pipeline");
    assert_eq!(reference, parallel, "reference vs parallel pipeline");
    reference
}

const SUM_AVG: &str = "SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?a) WHERE { ?x <http://ex.org/p> ?v }";
const MIN_MAX: &str = "SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?x <http://ex.org/p> ?v }";

#[test]
fn sum_and_avg_ignore_delivery_order() {
    // Catastrophic cancellation: (1e16 + 1.0) == 1e16 in f64, so summing
    // left-to-right vs right-to-left disagrees unless the addends are
    // canonically ordered first.
    let values = [
        Literal::double(1e16),
        Literal::double(1.0),
        Literal::double(-1e16),
        Literal::double(1.0),
    ];
    let mut reversed = values.clone();
    reversed.reverse();

    let forward = unanimous(&graph_of(&values), SUM_AVG);
    let backward = unanimous(&graph_of(&reversed), SUM_AVG);
    assert_eq!(
        forward, backward,
        "SUM/AVG changed with insertion order of an identical multiset"
    );
}

#[test]
fn min_and_max_break_numeric_ties_deterministically() {
    // Numerically equal, lexically distinct: the old code kept whichever
    // term it saw first.
    let values = [Literal::integer(5), Literal::double(5.0)];
    let mut reversed = values.clone();
    reversed.reverse();

    let forward = unanimous(&graph_of(&values), MIN_MAX);
    let backward = unanimous(&graph_of(&reversed), MIN_MAX);
    assert_eq!(
        forward, backward,
        "MIN/MAX tie-break changed with insertion order"
    );
    // The tie-break is observable: min and max pick *different* terms from
    // the two-element tie, so a "first one wins" regression flips one of
    // them.
    assert_ne!(forward[0], forward[1], "tie-break collapsed min and max");
}
