//! Property tests: the dictionary-encoded hash-join pipeline
//! ([`applab_sparql::evaluate`]) is observationally equivalent to the
//! reference nested-loop evaluator ([`applab_sparql::reference`]) on
//! randomized graphs and queries, and the parallel probe path produces
//! exactly the sequential path's output.

use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term, Triple};
use applab_sparql::algebra::{
    Expression, GraphPattern, Query, QueryForm, TermPattern, TriplePattern,
};
use applab_sparql::{evaluate, evaluate_with, reference, EvalOptions, QueryResults};
use proptest::prelude::*;

/// Triples over a small vocabulary so patterns actually hit: IRIs, integers,
/// point geometries and dateTimes as objects.
fn triple_strategy() -> impl Strategy<Value = Triple> {
    let subject = (0u8..6).prop_map(|i| Resource::named(format!("http://ex.org/s{i}")));
    let predicate = (0u8..4).prop_map(|i| NamedNode::new(format!("http://ex.org/p{i}")));
    let object = prop_oneof![
        (0u8..6).prop_map(|i| Term::named(format!("http://ex.org/s{i}"))),
        (0i64..5).prop_map(|i| Literal::integer(i).into()),
        (-50.0f64..50.0, -50.0f64..50.0)
            .prop_map(|(x, y)| Literal::wkt(format!("POINT ({x} {y})")).into()),
        (0i64..1_000_000).prop_map(|t| Literal::datetime(t).into()),
    ];
    (subject, predicate, object).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

/// Triple patterns over shared variables `?a ?b ?c ?g` (so BGPs join) and
/// the same constants the data uses.
fn pattern_strategy() -> impl Strategy<Value = TriplePattern> {
    (0u8..6, 0u8..4, 0u8..12).prop_map(|(s, p, o)| {
        let subject = match s {
            0..=2 => TermPattern::var(["a", "b", "c"][s as usize]),
            _ => TermPattern::Term(Term::named(format!("http://ex.org/s{}", s - 3))),
        };
        let predicate = TermPattern::Term(Term::named(format!("http://ex.org/p{p}")));
        let object = match o {
            0..=3 => TermPattern::var(["a", "b", "c", "g"][o as usize]),
            4..=7 => TermPattern::Term(Term::named(format!("http://ex.org/s{}", o - 4))),
            _ => TermPattern::Term(Literal::integer((o - 8) as i64).into()),
        };
        TriplePattern::new(subject, predicate, object)
    })
}

/// FILTER expressions covering the spatial fast path (incl. sfDisjoint),
/// distance buffering, temporal pushdown, and a generic comparison.
fn filter_strategy() -> impl Strategy<Value = Option<Expression>> {
    (0u8..6, -60.0f64..60.0, -60.0f64..60.0, 1.0f64..40.0).prop_map(|(c, x, y, w)| {
        let bbox = || {
            let (x2, y2) = (x + w, y + w);
            Expression::Constant(
                Literal::wkt(format!(
                    "POLYGON (({x} {y}, {x2} {y}, {x2} {y2}, {x} {y2}, {x} {y}))"
                ))
                .into(),
            )
        };
        let intersects = || {
            Expression::Call(
                NamedNode::new(vocab::geof::SF_INTERSECTS),
                vec![Expression::Var("g".into()), bbox()],
            )
        };
        let before = || {
            Expression::Less(
                Box::new(Expression::Var("c".into())),
                Box::new(Expression::Constant(
                    Literal::datetime((x.abs() * 10_000.0) as i64).into(),
                )),
            )
        };
        match c {
            0 => None,
            1 => Some(intersects()),
            2 => Some(Expression::Call(
                NamedNode::new(vocab::geof::SF_DISJOINT),
                vec![Expression::Var("g".into()), bbox()],
            )),
            3 => Some(before()),
            4 => Some(Expression::Less(
                Box::new(Expression::Call(
                    NamedNode::new(vocab::geof::DISTANCE),
                    vec![
                        Expression::Var("g".into()),
                        Expression::Constant(Literal::wkt(format!("POINT ({x} {y})")).into()),
                    ],
                )),
                Box::new(Expression::Constant(Literal::double(w).into())),
            )),
            _ => Some(Expression::And(Box::new(intersects()), Box::new(before()))),
        }
    })
}

fn select_all(pattern: GraphPattern) -> Query {
    Query {
        form: QueryForm::Select {
            distinct: false,
            projection: vec![],
            group_by: vec![],
        },
        pattern,
        order_by: vec![],
        limit: None,
        offset: 0,
    }
}

/// (variables, sorted row strings) — order-insensitive, multiplicity-aware.
fn norm(r: &QueryResults) -> (Vec<String>, Vec<String>) {
    let mut rows: Vec<String> = r
        .rows()
        .iter()
        .map(|row| {
            row.values
                .iter()
                .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    (r.variables().to_vec(), rows)
}

fn wrap(patterns: Vec<TriplePattern>, filter: Option<Expression>) -> GraphPattern {
    let bgp = GraphPattern::Bgp(patterns);
    match filter {
        Some(f) => GraphPattern::Filter(f, Box::new(bgp)),
        None => bgp,
    }
}

proptest! {
    #[test]
    fn pipeline_matches_reference_on_bgp_and_filter(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
        filter in filter_strategy(),
    ) {
        let graph: Graph = triples.into_iter().collect();
        let q = select_all(wrap(patterns, filter));
        let new = evaluate(&graph, &q).unwrap();
        let old = reference::evaluate(&graph, &q).unwrap();
        prop_assert_eq!(norm(&new), norm(&old));
    }

    #[test]
    fn pipeline_matches_reference_on_optional_and_union(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        left in proptest::collection::vec(pattern_strategy(), 1..3),
        right in proptest::collection::vec(pattern_strategy(), 1..3),
        filter in filter_strategy(),
        use_union in any::<bool>(),
    ) {
        let graph: Graph = triples.into_iter().collect();
        let l = Box::new(GraphPattern::Bgp(left));
        let r = Box::new(wrap(right, filter));
        let pattern = if use_union {
            GraphPattern::Union(l, r)
        } else {
            GraphPattern::LeftJoin(l, r)
        };
        let q = select_all(pattern);
        let new = evaluate(&graph, &q).unwrap();
        let old = reference::evaluate(&graph, &q).unwrap();
        prop_assert_eq!(norm(&new), norm(&old));
    }

    #[test]
    fn parallel_probe_equals_sequential_probe(
        triples in proptest::collection::vec(triple_strategy(), 0..60),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
        filter in filter_strategy(),
    ) {
        let graph: Graph = triples.into_iter().collect();
        let q = select_all(wrap(patterns, filter));
        // parallel_workers: Some(3) forces real scoped threads even on
        // single-core hosts where available_parallelism() returns 1.
        let parallel = evaluate_with(
            &graph,
            &q,
            &EvalOptions { parallel_probe_threshold: 1, parallel_workers: Some(3), ..EvalOptions::default() },
        )
        .unwrap();
        let sequential = evaluate_with(
            &graph,
            &q,
            &EvalOptions { parallel_probe_threshold: usize::MAX, parallel_workers: None, ..EvalOptions::default() },
        )
        .unwrap();
        // Exact equality, including row order: parallel chunks concatenate
        // in order.
        prop_assert_eq!(parallel.variables(), sequential.variables());
        let rows = |r: &QueryResults| -> Vec<String> {
            r.rows().iter().map(|row| format!("{:?}", row.values)).collect()
        };
        prop_assert_eq!(rows(&parallel), rows(&sequential));
    }
}
