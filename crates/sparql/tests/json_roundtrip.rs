//! Property tests for the SPARQL-results JSON parser: parsing a
//! serialized result reconstructs it exactly. The differential QA harness
//! pushes every engine's answer through `to_json` → `from_json` before
//! canonicalizing, so this parser is itself under differential test — but
//! the property here is the direct one: serialization is injective and
//! the parser is its left inverse (checked as a serializer fixed point,
//! which for `to_json` is equivalent and avoids requiring `PartialEq` on
//! results).

use applab_rdf::{BlankNode, Literal, Term};
use applab_sparql::{QueryResults, Row};
use proptest::prelude::*;

/// Strings full of JSON-hostile characters: quotes, backslashes, short
/// escapes, raw controls, multi-byte code points, and the empty string.
fn nasty_string() -> impl Strategy<Value = String> {
    (0u8..6).prop_map(|i| {
        [
            "plain",
            "quote \" backslash \\",
            "newline \n tab \t return \r",
            "control \u{8}\u{c}\u{1f}",
            "unicode é π 😀",
            "",
        ][i as usize]
            .to_string()
    })
}

/// Terms covering every serialized shape: IRIs, blanks, plain / typed /
/// lang-tagged literals, numerics, datetimes, and geometries.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..5).prop_map(|i| Term::named(format!("http://ex.org/r{i}"))),
        (0u8..5).prop_map(|i| Term::Blank(BlankNode::new(format!("b{i}")))),
        nasty_string().prop_map(|s| Literal::string(s).into()),
        nasty_string().prop_map(|s| Literal::lang(s, "en").into()),
        (-1000i64..1000).prop_map(|v| Literal::integer(v).into()),
        (-50.0f64..50.0).prop_map(|v| Literal::double(v).into()),
        any::<bool>().prop_map(|v| Literal::boolean(v).into()),
        (0i64..2_000_000_000).prop_map(|t| Literal::datetime(t).into()),
        (-10.0f64..10.0, -10.0f64..10.0)
            .prop_map(|(x, y)| Literal::wkt(format!("POINT ({x} {y})")).into()),
    ]
}

fn solutions_strategy() -> impl Strategy<Value = QueryResults> {
    // Bound cells three-to-one toward Some by repeating the bound arm —
    // the oneof here is a uniform choice among its arms.
    let cell = prop_oneof![
        term_strategy().prop_map(Some),
        term_strategy().prop_map(Some),
        term_strategy().prop_map(Some),
        Just(None),
    ];
    // Rows are generated at the maximum width and truncated to the drawn
    // one, which sidesteps needing a dependent (flat-mapped) strategy.
    let rows = proptest::collection::vec(proptest::collection::vec(cell, 3..=3), 0..12);
    (1usize..4, rows).prop_map(|(width, rows)| QueryResults::Solutions {
        variables: (0..width).map(|i| format!("v{i}")).collect(),
        rows: rows
            .into_iter()
            .map(|mut values| {
                values.truncate(width);
                Row { values }
            })
            .collect(),
    })
}

proptest! {
    #[test]
    fn solutions_round_trip_through_json(r in solutions_strategy()) {
        let json = r.to_json();
        let back = QueryResults::from_json(&json).unwrap();
        prop_assert_eq!(back.to_json(), json);
        prop_assert_eq!(back.variables(), r.variables());
        prop_assert_eq!(back.len(), r.len());
    }

    #[test]
    fn booleans_round_trip_through_json(b in any::<bool>()) {
        let r = QueryResults::Boolean(b);
        let back = QueryResults::from_json(&r.to_json()).unwrap();
        prop_assert_eq!(back.to_json(), r.to_json());
    }
}

/// Regression: the string scanner used to re-validate the entire
/// remaining input for every character, making large result sets
/// quadratic to parse (a 1 MB document took ~14 s). Linear parsing
/// finishes this 2 MB document in milliseconds; the generous bound still
/// fails the quadratic behavior by an order of magnitude.
#[test]
fn large_documents_parse_in_linear_time() {
    let long = "x".repeat(4096);
    let rows: Vec<Row> = (0..512)
        .map(|_| Row {
            values: vec![Some(Literal::string(long.clone()).into())],
        })
        .collect();
    let r = QueryResults::Solutions {
        variables: vec!["v".into()],
        rows,
    };
    let json = r.to_json();
    assert!(json.len() > 2_000_000, "document is {} bytes", json.len());
    let started = std::time::Instant::now();
    let back = QueryResults::from_json(&json).unwrap();
    assert_eq!(back.len(), 512);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "parsing took {:?} — string scanning has gone superlinear again",
        started.elapsed()
    );
}

/// Escapes adjacent to plain runs: the chunked scanner must not lose or
/// reorder bytes around escape boundaries.
#[test]
fn escapes_between_plain_runs_round_trip() {
    let value = "head \"mid\\dle\" \n tail é😀 \t end";
    let r = QueryResults::Solutions {
        variables: vec!["v".into()],
        rows: vec![Row {
            values: vec![Some(Literal::string(value).into())],
        }],
    };
    let back = QueryResults::from_json(&r.to_json()).unwrap();
    match &back {
        QueryResults::Solutions { rows, .. } => match &rows[0].values[0] {
            Some(Term::Literal(l)) => assert_eq!(l.value(), value),
            other => panic!("unexpected term {other:?}"),
        },
        other => panic!("unexpected shape {other:?}"),
    }
}
