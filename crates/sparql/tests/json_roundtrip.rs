//! Property tests for the SPARQL-results JSON parser: parsing a
//! serialized result reconstructs it exactly. The differential QA harness
//! pushes every engine's answer through `to_json` → `from_json` before
//! canonicalizing, so this parser is itself under differential test — but
//! the property here is the direct one: serialization is injective and
//! the parser is its left inverse (checked as a serializer fixed point,
//! which for `to_json` is equivalent and avoids requiring `PartialEq` on
//! results).

use applab_rdf::{BlankNode, Literal, Term};
use applab_sparql::{QueryResults, Row};
use proptest::prelude::*;

/// Strings full of JSON-hostile characters: quotes, backslashes, short
/// escapes, raw controls, multi-byte code points, and the empty string.
fn nasty_string() -> impl Strategy<Value = String> {
    (0u8..6).prop_map(|i| {
        [
            "plain",
            "quote \" backslash \\",
            "newline \n tab \t return \r",
            "control \u{8}\u{c}\u{1f}",
            "unicode é π 😀",
            "",
        ][i as usize]
            .to_string()
    })
}

/// Terms covering every serialized shape: IRIs, blanks, plain / typed /
/// lang-tagged literals, numerics, datetimes, and geometries.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..5).prop_map(|i| Term::named(format!("http://ex.org/r{i}"))),
        (0u8..5).prop_map(|i| Term::Blank(BlankNode::new(format!("b{i}")))),
        nasty_string().prop_map(|s| Literal::string(s).into()),
        nasty_string().prop_map(|s| Literal::lang(s, "en").into()),
        (-1000i64..1000).prop_map(|v| Literal::integer(v).into()),
        (-50.0f64..50.0).prop_map(|v| Literal::double(v).into()),
        any::<bool>().prop_map(|v| Literal::boolean(v).into()),
        (0i64..2_000_000_000).prop_map(|t| Literal::datetime(t).into()),
        (-10.0f64..10.0, -10.0f64..10.0)
            .prop_map(|(x, y)| Literal::wkt(format!("POINT ({x} {y})")).into()),
    ]
}

fn solutions_strategy() -> impl Strategy<Value = QueryResults> {
    // Bound cells three-to-one toward Some by repeating the bound arm —
    // the oneof here is a uniform choice among its arms.
    let cell = prop_oneof![
        term_strategy().prop_map(Some),
        term_strategy().prop_map(Some),
        term_strategy().prop_map(Some),
        Just(None),
    ];
    // Rows are generated at the maximum width and truncated to the drawn
    // one, which sidesteps needing a dependent (flat-mapped) strategy.
    let rows = proptest::collection::vec(proptest::collection::vec(cell, 3..=3), 0..12);
    (1usize..4, rows).prop_map(|(width, rows)| QueryResults::Solutions {
        variables: (0..width).map(|i| format!("v{i}")).collect(),
        rows: rows
            .into_iter()
            .map(|mut values| {
                values.truncate(width);
                Row { values }
            })
            .collect(),
    })
}

/// An `io::Write` that keeps every chunk, for asserting on flush behavior.
#[derive(Default)]
struct ChunkRecorder {
    chunks: Vec<Vec<u8>>,
}

impl std::io::Write for ChunkRecorder {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.chunks.push(buf.to_vec());
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #[test]
    fn solutions_round_trip_through_json(r in solutions_strategy()) {
        let json = r.to_json();
        let back = QueryResults::from_json(&json).unwrap();
        prop_assert_eq!(back.to_json(), json);
        prop_assert_eq!(back.variables(), r.variables());
        prop_assert_eq!(back.len(), r.len());
    }

    #[test]
    fn booleans_round_trip_through_json(b in any::<bool>()) {
        let r = QueryResults::Boolean(b);
        let back = QueryResults::from_json(&r.to_json()).unwrap();
        prop_assert_eq!(back.to_json(), r.to_json());
    }

    /// The streaming writer is the serializer (`to_json` merely collects
    /// it): concatenated chunks must equal the `to_json` bytes exactly for
    /// any result shape.
    #[test]
    fn write_json_streams_the_to_json_bytes(r in solutions_strategy()) {
        let mut w = ChunkRecorder::default();
        r.write_json(&mut w).unwrap();
        let streamed: Vec<u8> = w.chunks.concat();
        prop_assert_eq!(streamed, r.to_json().into_bytes());
    }
}

/// Regression: the string scanner used to re-validate the entire
/// remaining input for every character, making large result sets
/// quadratic to parse (a 1 MB document took ~14 s). Linear parsing
/// finishes this 2 MB document in milliseconds; the generous bound still
/// fails the quadratic behavior by an order of magnitude.
#[test]
fn large_documents_parse_in_linear_time() {
    let long = "x".repeat(4096);
    let rows: Vec<Row> = (0..512)
        .map(|_| Row {
            values: vec![Some(Literal::string(long.clone()).into())],
        })
        .collect();
    let r = QueryResults::Solutions {
        variables: vec!["v".into()],
        rows,
    };
    let json = r.to_json();
    assert!(json.len() > 2_000_000, "document is {} bytes", json.len());
    let started = std::time::Instant::now();
    let back = QueryResults::from_json(&json).unwrap();
    assert_eq!(back.len(), 512);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "parsing took {:?} — string scanning has gone superlinear again",
        started.elapsed()
    );
}

/// Malformed surrogate pairs must be rejected with an error, never a
/// panic: an unpaired `\uD800` once underflowed the `low - 0xDC00`
/// combination when the following escape was not a low surrogate.
#[test]
fn malformed_surrogate_pairs_error_instead_of_panicking() {
    fn probe(doc: &str, label: &str) {
        let r = std::panic::catch_unwind(|| QueryResults::from_json(doc));
        match r {
            Ok(inner) => assert!(inner.is_err(), "{label}: must reject, got {inner:?}"),
            Err(_) => panic!("{label}: from_json PANICKED on malformed input"),
        }
    }
    // High surrogate followed by a \u escape that is NOT a low surrogate:
    // exercises `low - 0xDC00` with low out of range.
    probe(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD800A"}}]}}"#,
        "high-then-bmp",
    );
    // High surrogate followed by another high surrogate.
    probe(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD800\uD800"}}]}}"#,
        "high-then-high",
    );
    // High surrogate at end of string.
    probe(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD800"}}]}}"#,
        "lone-high",
    );
    // A well-formed pair still decodes.
    let ok = QueryResults::from_json(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD83D\uDE00"}}]}}"#,
    )
    .expect("valid surrogate pair must parse");
    match &ok {
        QueryResults::Solutions { rows, .. } => match &rows[0].values[0] {
            Some(Term::Literal(l)) => assert_eq!(l.value(), "😀"),
            other => panic!("unexpected term {other:?}"),
        },
        other => panic!("unexpected shape {other:?}"),
    }
}

/// Serialization perf smoke: ~100k rows must serialize well under a
/// generous wall bound, and the streaming writer must emit them in flush
/// windows a couple orders of magnitude smaller than the document — proof
/// the serializer never holds the full output in one allocation.
#[test]
fn hundred_thousand_rows_stream_fast_in_small_chunks() {
    let rows: Vec<Row> = (0..100_000)
        .map(|i| Row {
            values: vec![
                Some(Term::named(format!("http://ex.org/feature/{i}"))),
                Some(Literal::double(i as f64 * 0.25).into()),
                (i % 3 != 0).then(|| Literal::string(format!("row {i} label")).into()),
            ],
        })
        .collect();
    let r = QueryResults::Solutions {
        variables: vec!["f".into(), "area".into(), "label".into()],
        rows,
    };

    let started = std::time::Instant::now();
    let mut w = ChunkRecorder::default();
    r.write_json(&mut w).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "streaming 100k rows took {elapsed:?}"
    );

    let total: usize = w.chunks.iter().map(Vec::len).sum();
    assert!(total > 10_000_000, "document is {total} bytes");
    let max_chunk = w.chunks.iter().map(Vec::len).max().unwrap();
    assert!(
        max_chunk <= 64 * 1024,
        "{max_chunk} byte flush — serializer is accumulating the document"
    );
    assert!(w.chunks.len() > 100, "only {} flushes", w.chunks.len());

    // And the collected form still parses back to the same cardinality.
    let back = QueryResults::from_json(&r.to_json()).unwrap();
    assert_eq!(back.len(), 100_000);
}

/// Escapes adjacent to plain runs: the chunked scanner must not lose or
/// reorder bytes around escape boundaries.
#[test]
fn escapes_between_plain_runs_round_trip() {
    let value = "head \"mid\\dle\" \n tail é😀 \t end";
    let r = QueryResults::Solutions {
        variables: vec!["v".into()],
        rows: vec![Row {
            values: vec![Some(Literal::string(value).into())],
        }],
    };
    let back = QueryResults::from_json(&r.to_json()).unwrap();
    match &back {
        QueryResults::Solutions { rows, .. } => match &rows[0].values[0] {
            Some(Term::Literal(l)) => assert_eq!(l.value(), value),
            other => panic!("unexpected term {other:?}"),
        },
        other => panic!("unexpected shape {other:?}"),
    }
}
