use applab_sparql::QueryResults;

fn probe(doc: &str, label: &str) {
    let r = std::panic::catch_unwind(|| QueryResults::from_json(doc));
    match r {
        Ok(inner) => assert!(inner.is_err(), "{label}: must reject, got {inner:?}"),
        Err(_) => panic!("{label}: from_json PANICKED on malformed input"),
    }
}

#[test]
fn malformed_surrogate_pairs_error_instead_of_panicking() {
    // High surrogate followed by a \u escape that is NOT a low surrogate:
    // exercises `low - 0xDC00` with low = 0x0041.
    probe(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD800A"}}]}}"#,
        "high-then-bmp",
    );
    // High surrogate followed by another high surrogate.
    probe(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD800\uD800"}}]}}"#,
        "high-then-high",
    );
    // High surrogate at end of string.
    probe(
        r#"{"head":{"vars":["v"]},"results":{"bindings":[{"v":{"type":"literal","value":"\uD800"}}]}}"#,
        "lone-high",
    );
}
