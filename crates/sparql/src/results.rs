//! Query results and their serializations.

use applab_rdf::{vocab, Graph, Term};

/// One solution row, aligned with the result's variable list.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub values: Vec<Option<Term>>,
}

impl Row {
    pub fn get<'a>(&'a self, variables: &[String], name: &str) -> Option<&'a Term> {
        let idx = variables.iter().position(|v| v == name)?;
        self.values.get(idx)?.as_ref()
    }
}

/// The result of evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// `SELECT` solutions.
    Solutions {
        variables: Vec<String>,
        rows: Vec<Row>,
    },
    /// `ASK` result.
    Boolean(bool),
    /// `CONSTRUCT` result.
    Graph(Graph),
}

impl QueryResults {
    /// Number of solution rows (0 for ASK/CONSTRUCT).
    pub fn len(&self) -> usize {
        match self {
            QueryResults::Solutions { rows, .. } => rows.len(),
            _ => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The variable list of a SELECT result.
    pub fn variables(&self) -> &[String] {
        match self {
            QueryResults::Solutions { variables, .. } => variables,
            _ => &[],
        }
    }

    /// The rows of a SELECT result.
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResults::Solutions { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Look up a value in a row by variable name.
    pub fn value(&self, row: usize, name: &str) -> Option<&Term> {
        match self {
            QueryResults::Solutions { variables, rows } => rows.get(row)?.get(variables, name),
            _ => None,
        }
    }

    /// The boolean of an ASK result.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The graph of a CONSTRUCT result.
    pub fn as_graph(&self) -> Option<&Graph> {
        match self {
            QueryResults::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// Serialize SELECT solutions as CSV (SPARQL 1.1 CSV results format:
    /// header row of variable names, plain lexical forms).
    pub fn to_csv(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables, rows),
            QueryResults::Boolean(b) => return format!("boolean\n{b}\n"),
            QueryResults::Graph(g) => return applab_rdf::ntriples::write_ntriples(g),
        };
        let mut out = String::new();
        out.push_str(&variables.join(","));
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .values
                .iter()
                .map(|v| match v {
                    Some(Term::Literal(l)) => csv_escape(l.value()),
                    Some(Term::Named(n)) => csv_escape(n.as_str()),
                    Some(Term::Blank(b)) => format!("_:{}", b.as_str()),
                    None => String::new(),
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Serialize as W3C SPARQL 1.1 Query Results JSON
    /// (<https://www.w3.org/TR/sparql11-results-json/>).
    ///
    /// `SELECT` solutions become `{"head":{"vars":[...]},"results":
    /// {"bindings":[...]}}` with unbound variables omitted from their
    /// binding objects; `ASK` becomes `{"head":{},"boolean":...}`. The
    /// format does not define `CONSTRUCT` output, so a graph is encoded as
    /// solutions over the pseudo-variables `subject`/`predicate`/`object`,
    /// one binding per triple.
    ///
    /// This is a *convenience* over the canonical streaming serializer,
    /// [`QueryResults::write_json`]: it collects the same byte stream into
    /// one `String`, which means the whole document lives in memory at
    /// once. Anything wire-facing (the `applab-http` response path, large
    /// result sets) should call `write_json` and let the 8 KiB flush
    /// windows bound peak memory; reach for `to_json` only when a small
    /// in-memory document is actually what you need (tests, diffing,
    /// fixed-length framing of small responses).
    pub fn to_json(&self) -> String {
        let mut out = Vec::new();
        self.write_json(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("the serializer emits UTF-8")
    }

    /// Stream the [`QueryResults::to_json`] document to a writer,
    /// byte-identically, without ever materializing the whole serialization:
    /// bindings are appended to an internal buffer that is handed to `w`
    /// every time it passes [`JSON_FLUSH_BYTES`]. Peak serializer memory is
    /// therefore one flush window plus the largest single binding,
    /// independent of the result's row count — this is what the service
    /// layer uses to keep large result sets from doubling as one giant
    /// `String`.
    pub fn write_json<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut buf = String::with_capacity(2 * JSON_FLUSH_BYTES);
        match self {
            QueryResults::Boolean(b) => {
                buf.push_str("{\"head\":{},\"boolean\":");
                buf.push_str(if *b { "true" } else { "false" });
                buf.push('}');
            }
            QueryResults::Solutions { variables, rows } => {
                push_json_head(&mut buf, variables.iter().map(String::as_str));
                for (ri, row) in rows.iter().enumerate() {
                    if ri > 0 {
                        buf.push(',');
                    }
                    push_json_binding(
                        &mut buf,
                        variables
                            .iter()
                            .zip(&row.values)
                            .filter_map(|(v, t)| t.as_ref().map(|t| (v.as_str(), t))),
                    );
                    if buf.len() >= JSON_FLUSH_BYTES {
                        w.write_all(buf.as_bytes())?;
                        buf.clear();
                    }
                }
                buf.push_str("]}}");
                return w.write_all(buf.as_bytes());
            }
            // The format does not define CONSTRUCT output; a graph streams
            // as solutions over the pseudo-variables subject / predicate /
            // object, one binding per triple, without building `Row`s.
            QueryResults::Graph(g) => {
                push_json_head(&mut buf, ["subject", "predicate", "object"].into_iter());
                for (ri, t) in g.iter().enumerate() {
                    if ri > 0 {
                        buf.push(',');
                    }
                    let subject = Term::from(t.subject.clone());
                    let predicate = Term::Named(t.predicate.clone());
                    push_json_binding(
                        &mut buf,
                        [
                            ("subject", &subject),
                            ("predicate", &predicate),
                            ("object", &t.object),
                        ]
                        .into_iter(),
                    );
                    if buf.len() >= JSON_FLUSH_BYTES {
                        w.write_all(buf.as_bytes())?;
                        buf.clear();
                    }
                }
                buf.push_str("]}}");
            }
        }
        w.write_all(buf.as_bytes())
    }

    /// A cheap estimate of the [`QueryResults::to_json`] byte length,
    /// computed by summing lexical-form lengths plus per-term JSON
    /// overhead — no allocation, no serialization pass.
    ///
    /// The estimate ignores JSON string escaping, so a result full of
    /// quotes or control characters serializes somewhat *larger* than
    /// estimated; for `ASK` the value is exact. This exists so response
    /// framing can be decided before serializing (see
    /// `QueryOutcome::content_length_hint` in `applab-service`); it must
    /// never be sent as a `Content-Length`.
    pub fn json_size_estimate(&self) -> u64 {
        // Per-term JSON overhead on top of the lexical form, e.g.
        // `{"type":"uri","value":""}` is 25 bytes around the IRI.
        fn term_estimate(t: &Term) -> u64 {
            match t {
                Term::Named(n) => 25 + n.as_str().len() as u64,
                Term::Blank(b) => 27 + b.as_str().len() as u64,
                Term::Literal(l) => {
                    let mut n = 29 + l.value().len() as u64;
                    if let Some(lang) = l.language() {
                        n += 14 + lang.len() as u64;
                    } else if l.datatype().as_str() != vocab::xsd::STRING {
                        n += 14 + l.datatype().as_str().len() as u64;
                    }
                    n
                }
            }
        }
        // `"var":` + term, plus the binding's comma share.
        fn binding_estimate(var: &str, t: &Term) -> u64 {
            var.len() as u64 + 4 + term_estimate(t)
        }
        match self {
            // Tiny and constant-size: just measure the real document.
            QueryResults::Boolean(_) => self.to_json().len() as u64,
            QueryResults::Solutions { variables, rows } => {
                let head = 44 + variables.iter().map(|v| v.len() as u64 + 3).sum::<u64>();
                let body: u64 = rows
                    .iter()
                    .map(|row| {
                        3 + variables
                            .iter()
                            .zip(&row.values)
                            .filter_map(|(v, t)| t.as_ref().map(|t| binding_estimate(v, t)))
                            .sum::<u64>()
                    })
                    .sum();
                head + body
            }
            QueryResults::Graph(g) => {
                let head = 44 + 30; // vars are subject/predicate/object
                let body: u64 = g
                    .iter()
                    .map(|t| {
                        let subject = match &t.subject {
                            applab_rdf::Resource::Named(n) => 25 + n.as_str().len() as u64,
                            applab_rdf::Resource::Blank(b) => 27 + b.as_str().len() as u64,
                        };
                        3 + 11
                            + subject
                            + 13
                            + 25
                            + t.predicate.as_str().len() as u64
                            + 10
                            + term_estimate(&t.object)
                    })
                    .sum();
                head + body
            }
        }
    }

    /// Parse a W3C SPARQL 1.1 Query Results JSON document (the inverse of
    /// [`QueryResults::to_json`], used by the QA differential diff so every
    /// compared result has round-tripped through the wire format).
    ///
    /// `{"head":{},"boolean":b}` parses to [`QueryResults::Boolean`];
    /// anything with a `head.vars` list parses to
    /// [`QueryResults::Solutions`] — including serialized CONSTRUCT graphs,
    /// which `to_json` encodes as `subject`/`predicate`/`object` solutions
    /// (the encoding is not self-describing, so the graph form is not
    /// reconstructed). Binding objects omit unbound variables; they come
    /// back as `None`. Keys not defined by the format are rejected.
    pub fn from_json(text: &str) -> Result<QueryResults, JsonParseError> {
        json::parse_results(text)
    }

    /// Serialize SELECT solutions as TSV with full term syntax.
    pub fn to_tsv(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables, rows),
            QueryResults::Boolean(b) => return format!("?boolean\n{b}\n"),
            QueryResults::Graph(g) => return applab_rdf::ntriples::write_ntriples(g),
        };
        let mut out = String::new();
        out.push_str(
            &variables
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .values
                .iter()
                .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Error parsing a SPARQL results JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError(pub String);

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SPARQL results JSON: {}", self.0)
    }
}

impl std::error::Error for JsonParseError {}

/// A hand-rolled parser for the results JSON subset `to_json` emits. The
/// workspace has no JSON dependency; the format is small enough that a
/// recursive-descent reader over the generic JSON grammar is ~150 lines.
mod json {
    use super::{JsonParseError, QueryResults, Row};
    use applab_rdf::{BlankNode, Literal, NamedNode, Term};
    use std::collections::BTreeMap;

    /// Generic JSON value (object keys keep insertion irrelevant — the
    /// results format never relies on duplicate or ordered keys).
    enum Value {
        Null,
        Bool(bool),
        /// Numbers never occur in the results format; parsed and discarded
        /// so structurally valid JSON still gets a shape-level error.
        Number,
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonParseError> {
            Err(JsonParseError(format!(
                "{} at byte {}",
                msg.into(),
                self.pos
            )))
        }

        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), JsonParseError> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&c) {
                self.pos += 1;
                Ok(())
            } else {
                self.err(format!("expected {:?}", c as char))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn value(&mut self) -> Result<Value, JsonParseError> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal_word("true", Value::Bool(true)),
                Some(b'f') => self.literal_word("false", Value::Bool(false)),
                Some(b'n') => self.literal_word("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => self.err("expected a JSON value"),
            }
        }

        fn literal_word(&mut self, word: &str, v: Value) -> Result<Value, JsonParseError> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                self.err(format!("expected {word}"))
            }
        }

        fn number(&mut self) -> Result<Value, JsonParseError> {
            self.skip_ws();
            let start = self.pos;
            while matches!(
                self.bytes.get(self.pos),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(|_| Value::Number)
                .ok_or_else(|| JsonParseError(format!("bad number at byte {start}")))
        }

        fn string(&mut self) -> Result<String, JsonParseError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return self.err("unterminated string"),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                let Some(code) = hex else {
                                    return self.err("bad \\u escape");
                                };
                                // Surrogate pairs: to_json never emits them
                                // (it only escapes control chars), but
                                // accept them for robustness.
                                let c = if (0xD800..0xDC00).contains(&code) {
                                    let low = self
                                        .bytes
                                        .get(self.pos + 5..self.pos + 11)
                                        .filter(|t| t.starts_with(b"\\u"))
                                        .and_then(|t| std::str::from_utf8(&t[2..]).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok());
                                    // The low half must itself be a low
                                    // surrogate; anything else (BMP char,
                                    // second high surrogate, end of input)
                                    // leaves the high half unpaired.
                                    let Some(low) = low.filter(|l| (0xDC00..0xE000).contains(l))
                                    else {
                                        return self.err("lone high surrogate");
                                    };
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    code
                                };
                                match char::from_u32(c) {
                                    Some(c) => out.push(c),
                                    None => return self.err("bad unicode escape"),
                                }
                                self.pos += 4;
                            }
                            _ => return self.err("bad escape"),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume the whole run up to the next quote or
                        // escape in one go; validating per character would
                        // make large result sets quadratic to parse.
                        let start = self.pos;
                        while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                            self.pos += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| JsonParseError("invalid UTF-8".into()))?;
                        out.push_str(chunk);
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, JsonParseError> {
            self.eat(b'[')?;
            let mut out = Vec::new();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(out));
            }
            loop {
                out.push(self.value()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(out));
                    }
                    _ => return self.err("expected ',' or ']'"),
                }
            }
        }

        fn object(&mut self) -> Result<Value, JsonParseError> {
            self.eat(b'{')?;
            let mut out = BTreeMap::new();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(out));
            }
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                out.insert(key, self.value()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(out));
                    }
                    _ => return self.err("expected ',' or '}'"),
                }
            }
        }
    }

    fn term(binding: &BTreeMap<String, Value>) -> Result<Term, JsonParseError> {
        let get_str = |key: &str| -> Option<&str> {
            match binding.get(key) {
                Some(Value::String(s)) => Some(s),
                _ => None,
            }
        };
        let value = get_str("value")
            .ok_or_else(|| JsonParseError("binding without string \"value\"".into()))?;
        match get_str("type") {
            Some("uri") => Ok(Term::Named(NamedNode::new(value))),
            Some("bnode") => Ok(Term::Blank(BlankNode::new(value))),
            Some("literal") => {
                if let Some(lang) = get_str("xml:lang") {
                    Ok(Literal::lang(value, lang).into())
                } else if let Some(dt) = get_str("datatype") {
                    Ok(Literal::typed(value, NamedNode::new(dt)).into())
                } else {
                    Ok(Literal::string(value).into())
                }
            }
            other => Err(JsonParseError(format!("bad term type {other:?}"))),
        }
    }

    pub(super) fn parse_results(text: &str) -> Result<QueryResults, JsonParseError> {
        let mut reader = Reader {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let top = reader.value()?;
        reader.skip_ws();
        if reader.pos != reader.bytes.len() {
            return reader.err("trailing input after document");
        }
        let Value::Object(doc) = top else {
            return Err(JsonParseError("document is not an object".into()));
        };
        if let Some(v) = doc.get("boolean") {
            return match v {
                Value::Bool(b) => Ok(QueryResults::Boolean(*b)),
                _ => Err(JsonParseError("\"boolean\" is not a bool".into())),
            };
        }
        let vars: Vec<String> = match doc.get("head") {
            Some(Value::Object(head)) => match head.get("vars") {
                Some(Value::Array(vs)) => vs
                    .iter()
                    .map(|v| match v {
                        Value::String(s) => Ok(s.clone()),
                        _ => Err(JsonParseError("head.vars entry is not a string".into())),
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err(JsonParseError("head has no vars list".into())),
            },
            _ => return Err(JsonParseError("document has no head object".into())),
        };
        let bindings = match doc.get("results") {
            Some(Value::Object(results)) => match results.get("bindings") {
                Some(Value::Array(bs)) => bs,
                _ => return Err(JsonParseError("results has no bindings list".into())),
            },
            _ => return Err(JsonParseError("document has no results object".into())),
        };
        let mut rows = Vec::with_capacity(bindings.len());
        for b in bindings {
            let Value::Object(b) = b else {
                return Err(JsonParseError("binding is not an object".into()));
            };
            for key in b.keys() {
                if !vars.iter().any(|v| v == key) {
                    return Err(JsonParseError(format!(
                        "binding variable {key:?} is not in head.vars"
                    )));
                }
            }
            let mut values = Vec::with_capacity(vars.len());
            for v in &vars {
                match b.get(v) {
                    None => values.push(None),
                    Some(Value::Object(t)) => values.push(Some(term(t)?)),
                    Some(_) => {
                        return Err(JsonParseError(format!(
                            "binding for {v:?} is not an object"
                        )))
                    }
                }
            }
            rows.push(Row { values });
        }
        Ok(QueryResults::Solutions {
            variables: vars,
            rows,
        })
    }
}

/// Flush threshold for [`QueryResults::write_json`]: once the internal
/// buffer passes this size it is handed to the writer and cleared, bounding
/// serializer memory regardless of result cardinality.
pub const JSON_FLUSH_BYTES: usize = 8 * 1024;

/// `{"head":{"vars":[...]},"results":{"bindings":[` — everything up to the
/// first binding object.
fn push_json_head<'a>(out: &mut String, variables: impl Iterator<Item = &'a str>) {
    out.push_str("{\"head\":{\"vars\":[");
    for (i, v) in variables.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, v);
    }
    out.push_str("]},\"results\":{\"bindings\":[");
}

/// One binding object: `{"var":{term},...}` over the bound pairs only.
fn push_json_binding<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a str, &'a Term)>) {
    out.push('{');
    for (i, (v, t)) in pairs.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, v);
        out.push(':');
        push_json_term(out, t);
    }
    out.push('}');
}

/// Append one RDF term as a SPARQL-results-JSON object.
fn push_json_term(out: &mut String, t: &Term) {
    match t {
        Term::Named(n) => {
            out.push_str("{\"type\":\"uri\",\"value\":");
            push_json_string(out, n.as_str());
            out.push('}');
        }
        Term::Blank(b) => {
            out.push_str("{\"type\":\"bnode\",\"value\":");
            push_json_string(out, b.as_str());
            out.push('}');
        }
        Term::Literal(l) => {
            out.push_str("{\"type\":\"literal\",\"value\":");
            push_json_string(out, l.value());
            if let Some(lang) = l.language() {
                out.push_str(",\"xml:lang\":");
                push_json_string(out, lang);
            } else if l.datatype().as_str() != vocab::xsd::STRING {
                out.push_str(",\"datatype\":");
                push_json_string(out, l.datatype().as_str());
            }
            out.push('}');
        }
    }
}

/// Append a JSON string literal with the escapes RFC 8259 requires.
fn push_json_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Literal;

    fn sample() -> QueryResults {
        QueryResults::Solutions {
            variables: vec!["name".into(), "lai".into()],
            rows: vec![
                Row {
                    values: vec![
                        Some(Literal::string("Bois, de \"Boulogne\"").into()),
                        Some(Literal::float(3.5).into()),
                    ],
                },
                Row {
                    values: vec![None, Some(Literal::float(1.0).into())],
                },
            ],
        }
    }

    #[test]
    fn csv_output() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,lai"));
        assert_eq!(lines.next(), Some("\"Bois, de \"\"Boulogne\"\"\",3.5"));
        assert_eq!(lines.next(), Some(",1"));
    }

    #[test]
    fn tsv_output_has_full_terms() {
        let tsv = sample().to_tsv();
        assert!(tsv.starts_with("?name\t?lai\n"));
        assert!(tsv.contains("^^<http://www.w3.org/2001/XMLSchema#float>"));
    }

    #[test]
    fn value_lookup() {
        let r = sample();
        assert_eq!(
            r.value(0, "lai").unwrap().as_literal().unwrap().as_f64(),
            Some(3.5)
        );
        assert!(r.value(1, "name").is_none());
        assert!(r.value(5, "lai").is_none());
    }

    #[test]
    fn ask_serialization() {
        assert_eq!(QueryResults::Boolean(true).to_csv(), "boolean\ntrue\n");
        assert_eq!(QueryResults::Boolean(true).as_bool(), Some(true));
    }

    /// Golden output for the W3C SPARQL 1.1 Results JSON writer: every
    /// term kind, string escaping, and an unbound variable.
    #[test]
    fn json_golden_output() {
        let r = QueryResults::Solutions {
            variables: vec!["s".into(), "label".into(), "lai".into()],
            rows: vec![
                Row {
                    values: vec![
                        Some(Term::named("http://ex.org/p1")),
                        Some(Literal::lang("Bois de \"Boulogne\"\n", "fr").into()),
                        Some(Literal::float(3.5).into()),
                    ],
                },
                Row {
                    values: vec![
                        Some(Term::Blank(applab_rdf::BlankNode::new("b0"))),
                        Some(Literal::string("plain").into()),
                        None,
                    ],
                },
            ],
        };
        assert_eq!(
            r.to_json(),
            concat!(
                "{\"head\":{\"vars\":[\"s\",\"label\",\"lai\"]},\"results\":{\"bindings\":[",
                "{\"s\":{\"type\":\"uri\",\"value\":\"http://ex.org/p1\"},",
                "\"label\":{\"type\":\"literal\",\"value\":\"Bois de \\\"Boulogne\\\"\\n\",\"xml:lang\":\"fr\"},",
                "\"lai\":{\"type\":\"literal\",\"value\":\"3.5\",\"datatype\":\"http://www.w3.org/2001/XMLSchema#float\"}},",
                "{\"s\":{\"type\":\"bnode\",\"value\":\"b0\"},",
                "\"label\":{\"type\":\"literal\",\"value\":\"plain\"}}",
                "]}}"
            )
        );
    }

    #[test]
    fn json_round_trip_covers_every_term_kind() {
        let r = QueryResults::Solutions {
            variables: vec!["s".into(), "label".into(), "lai".into()],
            rows: vec![
                Row {
                    values: vec![
                        Some(Term::named("http://ex.org/p1")),
                        Some(Literal::lang("Bois de \"Boulogne\"\n\t", "fr").into()),
                        Some(Literal::float(3.5).into()),
                    ],
                },
                Row {
                    values: vec![
                        Some(Term::Blank(applab_rdf::BlankNode::new("b0"))),
                        Some(Literal::string("plain ünïcode").into()),
                        None,
                    ],
                },
            ],
        };
        assert_eq!(QueryResults::from_json(&r.to_json()).unwrap(), r);
        assert_eq!(
            QueryResults::from_json("{\"head\":{},\"boolean\":true}").unwrap(),
            QueryResults::Boolean(true)
        );
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "[]",
            "{\"head\":{}}",
            "{\"head\":{\"vars\":[1]},\"results\":{\"bindings\":[]}}",
            "{\"head\":{\"vars\":[\"v\"]},\"results\":{}}",
            // Binding for a variable not in head.vars.
            "{\"head\":{\"vars\":[\"v\"]},\"results\":{\"bindings\":[{\"w\":{\"type\":\"uri\",\"value\":\"http://x\"}}]}}",
            // Unknown term type.
            "{\"head\":{\"vars\":[\"v\"]},\"results\":{\"bindings\":[{\"v\":{\"type\":\"triple\",\"value\":\"x\"}}]}}",
            // Trailing garbage.
            "{\"head\":{},\"boolean\":true} extra",
            "{\"head\":{\"vars\":[\"v\"]},\"results\":{\"bindings\":[{\"v\":{\"type\":\"literal\",\"value\":\"unterminated",
        ] {
            assert!(QueryResults::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn json_parser_handles_escapes_and_surrogates() {
        let doc = "{\"head\":{\"vars\":[\"v\"]},\"results\":{\"bindings\":[{\"v\":{\"type\":\"literal\",\"value\":\"a\\u0007b\\ud83d\\ude00c\\\\d\"}}]}}";
        let r = QueryResults::from_json(doc).unwrap();
        assert_eq!(
            r.value(0, "v").unwrap().as_literal().unwrap().value(),
            "a\u{7}b😀c\\d"
        );
    }

    /// The framing estimate tracks the real serialization closely (it
    /// only ignores escape expansion) and is exact for ASK.
    #[test]
    fn json_size_estimate_tracks_actual_length() {
        for r in [
            sample(),
            QueryResults::Solutions {
                variables: vec!["s".into()],
                rows: (0..500)
                    .map(|i| Row {
                        values: vec![Some(Term::named(format!("http://ex.org/r{i}")))],
                    })
                    .collect(),
            },
        ] {
            let actual = r.to_json().len() as u64;
            let estimate = r.json_size_estimate();
            assert!(
                estimate.abs_diff(actual) * 10 <= actual,
                "estimate {estimate} vs actual {actual} drifted more than 10%"
            );
        }
        for b in [true, false] {
            let r = QueryResults::Boolean(b);
            assert_eq!(r.json_size_estimate(), r.to_json().len() as u64);
        }
        let mut g = Graph::new();
        g.add(
            applab_rdf::Resource::named("http://ex.org/a"),
            applab_rdf::NamedNode::new("http://ex.org/p"),
            Term::named("http://ex.org/b"),
        );
        let r = QueryResults::Graph(g);
        let actual = r.to_json().len() as u64;
        let estimate = r.json_size_estimate();
        assert!(
            estimate.abs_diff(actual) * 5 <= actual,
            "graph estimate {estimate} vs actual {actual}"
        );
    }

    #[test]
    fn json_ask_and_graph() {
        assert_eq!(
            QueryResults::Boolean(false).to_json(),
            "{\"head\":{},\"boolean\":false}"
        );
        let mut g = Graph::new();
        g.add(
            applab_rdf::Resource::named("http://ex.org/a"),
            applab_rdf::NamedNode::new("http://ex.org/p"),
            Term::named("http://ex.org/b"),
        );
        let json = QueryResults::Graph(g).to_json();
        assert!(json.starts_with("{\"head\":{\"vars\":[\"subject\",\"predicate\",\"object\"]}"));
        assert!(json.contains("\"predicate\":{\"type\":\"uri\",\"value\":\"http://ex.org/p\"}"));
    }
}
