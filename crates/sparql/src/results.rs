//! Query results and their serializations.

use applab_rdf::{Graph, Term};

/// One solution row, aligned with the result's variable list.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub values: Vec<Option<Term>>,
}

impl Row {
    pub fn get<'a>(&'a self, variables: &[String], name: &str) -> Option<&'a Term> {
        let idx = variables.iter().position(|v| v == name)?;
        self.values.get(idx)?.as_ref()
    }
}

/// The result of evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// `SELECT` solutions.
    Solutions {
        variables: Vec<String>,
        rows: Vec<Row>,
    },
    /// `ASK` result.
    Boolean(bool),
    /// `CONSTRUCT` result.
    Graph(Graph),
}

impl QueryResults {
    /// Number of solution rows (0 for ASK/CONSTRUCT).
    pub fn len(&self) -> usize {
        match self {
            QueryResults::Solutions { rows, .. } => rows.len(),
            _ => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The variable list of a SELECT result.
    pub fn variables(&self) -> &[String] {
        match self {
            QueryResults::Solutions { variables, .. } => variables,
            _ => &[],
        }
    }

    /// The rows of a SELECT result.
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResults::Solutions { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Look up a value in a row by variable name.
    pub fn value(&self, row: usize, name: &str) -> Option<&Term> {
        match self {
            QueryResults::Solutions { variables, rows } => rows.get(row)?.get(variables, name),
            _ => None,
        }
    }

    /// The boolean of an ASK result.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The graph of a CONSTRUCT result.
    pub fn as_graph(&self) -> Option<&Graph> {
        match self {
            QueryResults::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// Serialize SELECT solutions as CSV (SPARQL 1.1 CSV results format:
    /// header row of variable names, plain lexical forms).
    pub fn to_csv(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables, rows),
            QueryResults::Boolean(b) => return format!("boolean\n{b}\n"),
            QueryResults::Graph(g) => return applab_rdf::ntriples::write_ntriples(g),
        };
        let mut out = String::new();
        out.push_str(&variables.join(","));
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .values
                .iter()
                .map(|v| match v {
                    Some(Term::Literal(l)) => csv_escape(l.value()),
                    Some(Term::Named(n)) => csv_escape(n.as_str()),
                    Some(Term::Blank(b)) => format!("_:{}", b.as_str()),
                    None => String::new(),
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Serialize SELECT solutions as TSV with full term syntax.
    pub fn to_tsv(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables, rows),
            QueryResults::Boolean(b) => return format!("?boolean\n{b}\n"),
            QueryResults::Graph(g) => return applab_rdf::ntriples::write_ntriples(g),
        };
        let mut out = String::new();
        out.push_str(
            &variables
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .values
                .iter()
                .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Literal;

    fn sample() -> QueryResults {
        QueryResults::Solutions {
            variables: vec!["name".into(), "lai".into()],
            rows: vec![
                Row {
                    values: vec![
                        Some(Literal::string("Bois, de \"Boulogne\"").into()),
                        Some(Literal::float(3.5).into()),
                    ],
                },
                Row {
                    values: vec![None, Some(Literal::float(1.0).into())],
                },
            ],
        }
    }

    #[test]
    fn csv_output() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,lai"));
        assert_eq!(lines.next(), Some("\"Bois, de \"\"Boulogne\"\"\",3.5"));
        assert_eq!(lines.next(), Some(",1"));
    }

    #[test]
    fn tsv_output_has_full_terms() {
        let tsv = sample().to_tsv();
        assert!(tsv.starts_with("?name\t?lai\n"));
        assert!(tsv.contains("^^<http://www.w3.org/2001/XMLSchema#float>"));
    }

    #[test]
    fn value_lookup() {
        let r = sample();
        assert_eq!(
            r.value(0, "lai").unwrap().as_literal().unwrap().as_f64(),
            Some(3.5)
        );
        assert!(r.value(1, "name").is_none());
        assert!(r.value(5, "lai").is_none());
    }

    #[test]
    fn ask_serialization() {
        assert_eq!(QueryResults::Boolean(true).to_csv(), "boolean\ntrue\n");
        assert_eq!(QueryResults::Boolean(true).as_bool(), Some(true));
    }
}
