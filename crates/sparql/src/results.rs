//! Query results and their serializations.

use applab_rdf::{vocab, Graph, Term};

/// One solution row, aligned with the result's variable list.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub values: Vec<Option<Term>>,
}

impl Row {
    pub fn get<'a>(&'a self, variables: &[String], name: &str) -> Option<&'a Term> {
        let idx = variables.iter().position(|v| v == name)?;
        self.values.get(idx)?.as_ref()
    }
}

/// The result of evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// `SELECT` solutions.
    Solutions {
        variables: Vec<String>,
        rows: Vec<Row>,
    },
    /// `ASK` result.
    Boolean(bool),
    /// `CONSTRUCT` result.
    Graph(Graph),
}

impl QueryResults {
    /// Number of solution rows (0 for ASK/CONSTRUCT).
    pub fn len(&self) -> usize {
        match self {
            QueryResults::Solutions { rows, .. } => rows.len(),
            _ => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The variable list of a SELECT result.
    pub fn variables(&self) -> &[String] {
        match self {
            QueryResults::Solutions { variables, .. } => variables,
            _ => &[],
        }
    }

    /// The rows of a SELECT result.
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResults::Solutions { rows, .. } => rows,
            _ => &[],
        }
    }

    /// Look up a value in a row by variable name.
    pub fn value(&self, row: usize, name: &str) -> Option<&Term> {
        match self {
            QueryResults::Solutions { variables, rows } => rows.get(row)?.get(variables, name),
            _ => None,
        }
    }

    /// The boolean of an ASK result.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The graph of a CONSTRUCT result.
    pub fn as_graph(&self) -> Option<&Graph> {
        match self {
            QueryResults::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// Serialize SELECT solutions as CSV (SPARQL 1.1 CSV results format:
    /// header row of variable names, plain lexical forms).
    pub fn to_csv(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables, rows),
            QueryResults::Boolean(b) => return format!("boolean\n{b}\n"),
            QueryResults::Graph(g) => return applab_rdf::ntriples::write_ntriples(g),
        };
        let mut out = String::new();
        out.push_str(&variables.join(","));
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .values
                .iter()
                .map(|v| match v {
                    Some(Term::Literal(l)) => csv_escape(l.value()),
                    Some(Term::Named(n)) => csv_escape(n.as_str()),
                    Some(Term::Blank(b)) => format!("_:{}", b.as_str()),
                    None => String::new(),
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Serialize as W3C SPARQL 1.1 Query Results JSON
    /// (<https://www.w3.org/TR/sparql11-results-json/>).
    ///
    /// `SELECT` solutions become `{"head":{"vars":[...]},"results":
    /// {"bindings":[...]}}` with unbound variables omitted from their
    /// binding objects; `ASK` becomes `{"head":{},"boolean":...}`. The
    /// format does not define `CONSTRUCT` output, so a graph is encoded as
    /// solutions over the pseudo-variables `subject`/`predicate`/`object`,
    /// one binding per triple.
    pub fn to_json(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables.clone(), rows.clone()),
            QueryResults::Boolean(b) => return format!("{{\"head\":{{}},\"boolean\":{b}}}"),
            QueryResults::Graph(g) => {
                let variables = vec![
                    "subject".to_string(),
                    "predicate".to_string(),
                    "object".to_string(),
                ];
                let rows = g
                    .iter()
                    .map(|t| Row {
                        values: vec![
                            Some(Term::from(t.subject.clone())),
                            Some(Term::Named(t.predicate.clone())),
                            Some(t.object.clone()),
                        ],
                    })
                    .collect();
                (variables, rows)
            }
        };
        let mut out = String::from("{\"head\":{\"vars\":[");
        for (i, v) in variables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(v));
        }
        out.push_str("]},\"results\":{\"bindings\":[");
        for (ri, row) in rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push('{');
            let mut first = true;
            for (v, t) in variables.iter().zip(&row.values) {
                let Some(t) = t else { continue };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&json_string(v));
                out.push(':');
                out.push_str(&json_term(t));
            }
            out.push('}');
        }
        out.push_str("]}}");
        out
    }

    /// Serialize SELECT solutions as TSV with full term syntax.
    pub fn to_tsv(&self) -> String {
        let (variables, rows) = match self {
            QueryResults::Solutions { variables, rows } => (variables, rows),
            QueryResults::Boolean(b) => return format!("?boolean\n{b}\n"),
            QueryResults::Graph(g) => return applab_rdf::ntriples::write_ntriples(g),
        };
        let mut out = String::new();
        out.push_str(
            &variables
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .values
                .iter()
                .map(|v| v.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// One RDF term as a SPARQL-results-JSON object.
fn json_term(t: &Term) -> String {
    match t {
        Term::Named(n) => format!("{{\"type\":\"uri\",\"value\":{}}}", json_string(n.as_str())),
        Term::Blank(b) => format!(
            "{{\"type\":\"bnode\",\"value\":{}}}",
            json_string(b.as_str())
        ),
        Term::Literal(l) => {
            let mut out = format!(
                "{{\"type\":\"literal\",\"value\":{}",
                json_string(l.value())
            );
            if let Some(lang) = l.language() {
                out.push_str(&format!(",\"xml:lang\":{}", json_string(lang)));
            } else if l.datatype().as_str() != vocab::xsd::STRING {
                out.push_str(&format!(
                    ",\"datatype\":{}",
                    json_string(l.datatype().as_str())
                ));
            }
            out.push('}');
            out
        }
    }
}

/// JSON string literal with the escapes RFC 8259 requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Literal;

    fn sample() -> QueryResults {
        QueryResults::Solutions {
            variables: vec!["name".into(), "lai".into()],
            rows: vec![
                Row {
                    values: vec![
                        Some(Literal::string("Bois, de \"Boulogne\"").into()),
                        Some(Literal::float(3.5).into()),
                    ],
                },
                Row {
                    values: vec![None, Some(Literal::float(1.0).into())],
                },
            ],
        }
    }

    #[test]
    fn csv_output() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,lai"));
        assert_eq!(lines.next(), Some("\"Bois, de \"\"Boulogne\"\"\",3.5"));
        assert_eq!(lines.next(), Some(",1"));
    }

    #[test]
    fn tsv_output_has_full_terms() {
        let tsv = sample().to_tsv();
        assert!(tsv.starts_with("?name\t?lai\n"));
        assert!(tsv.contains("^^<http://www.w3.org/2001/XMLSchema#float>"));
    }

    #[test]
    fn value_lookup() {
        let r = sample();
        assert_eq!(
            r.value(0, "lai").unwrap().as_literal().unwrap().as_f64(),
            Some(3.5)
        );
        assert!(r.value(1, "name").is_none());
        assert!(r.value(5, "lai").is_none());
    }

    #[test]
    fn ask_serialization() {
        assert_eq!(QueryResults::Boolean(true).to_csv(), "boolean\ntrue\n");
        assert_eq!(QueryResults::Boolean(true).as_bool(), Some(true));
    }

    /// Golden output for the W3C SPARQL 1.1 Results JSON writer: every
    /// term kind, string escaping, and an unbound variable.
    #[test]
    fn json_golden_output() {
        let r = QueryResults::Solutions {
            variables: vec!["s".into(), "label".into(), "lai".into()],
            rows: vec![
                Row {
                    values: vec![
                        Some(Term::named("http://ex.org/p1")),
                        Some(Literal::lang("Bois de \"Boulogne\"\n", "fr").into()),
                        Some(Literal::float(3.5).into()),
                    ],
                },
                Row {
                    values: vec![
                        Some(Term::Blank(applab_rdf::BlankNode::new("b0"))),
                        Some(Literal::string("plain").into()),
                        None,
                    ],
                },
            ],
        };
        assert_eq!(
            r.to_json(),
            concat!(
                "{\"head\":{\"vars\":[\"s\",\"label\",\"lai\"]},\"results\":{\"bindings\":[",
                "{\"s\":{\"type\":\"uri\",\"value\":\"http://ex.org/p1\"},",
                "\"label\":{\"type\":\"literal\",\"value\":\"Bois de \\\"Boulogne\\\"\\n\",\"xml:lang\":\"fr\"},",
                "\"lai\":{\"type\":\"literal\",\"value\":\"3.5\",\"datatype\":\"http://www.w3.org/2001/XMLSchema#float\"}},",
                "{\"s\":{\"type\":\"bnode\",\"value\":\"b0\"},",
                "\"label\":{\"type\":\"literal\",\"value\":\"plain\"}}",
                "]}}"
            )
        );
    }

    #[test]
    fn json_ask_and_graph() {
        assert_eq!(
            QueryResults::Boolean(false).to_json(),
            "{\"head\":{},\"boolean\":false}"
        );
        let mut g = Graph::new();
        g.add(
            applab_rdf::Resource::named("http://ex.org/a"),
            applab_rdf::NamedNode::new("http://ex.org/p"),
            Term::named("http://ex.org/b"),
        );
        let json = QueryResults::Graph(g).to_json();
        assert!(json.starts_with("{\"head\":{\"vars\":[\"subject\",\"predicate\",\"object\"]}"));
        assert!(json.contains("\"predicate\":{\"type\":\"uri\",\"value\":\"http://ex.org/p\"}"));
    }
}
