//! The SPARQL parser.
//!
//! Parses the subset described in the crate docs. The default prefix table
//! ([`applab_rdf::vocab::default_prefixes`]) is preloaded, matching the
//! paper's "assuming appropriate PREFIX definitions" convention in
//! Listings 1 and 3; `PREFIX` declarations in the query override it.

use crate::algebra::{
    Aggregate, Expression, GraphPattern, OrderKey, Projection, Query, QueryForm, TermPattern,
    TriplePattern,
};
use applab_rdf::{vocab, Literal, NamedNode, Term};
use std::collections::HashMap;
use std::fmt;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPARQL parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Var(String),
    Iri(String),
    Prefixed(String, String),
    Str {
        value: String,
        datatype: Option<Box<Tok>>,
        lang: Option<String>,
    },
    Num(String),
    Word(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Star,
    Slash,
    Caret2,
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'#' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn word(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// Word that may contain `:` (prefixed name) and interior dots/dashes.
    fn pname(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':') || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn next(&mut self) -> Result<Option<Tok>, ParseError> {
        self.skip_ws();
        let b = match self.bytes.get(self.pos) {
            Some(b) => *b,
            None => return Ok(None),
        };
        let tok = match b {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b';' => {
                self.pos += 1;
                Tok::Semicolon
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'/' => {
                self.pos += 1;
                Tok::Slash
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'!' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Neq
                } else {
                    Tok::Bang
                }
            }
            b'&' => {
                if self.bytes.get(self.pos + 1) == Some(&b'&') {
                    self.pos += 2;
                    Tok::AndAnd
                } else {
                    return self.err("expected '&&'");
                }
            }
            b'|' => {
                if self.bytes.get(self.pos + 1) == Some(&b'|') {
                    self.pos += 2;
                    Tok::OrOr
                } else {
                    return self.err("expected '||'");
                }
            }
            b'^' => {
                if self.bytes.get(self.pos + 1) == Some(&b'^') {
                    self.pos += 2;
                    Tok::Caret2
                } else {
                    return self.err("expected '^^'");
                }
            }
            b'?' | b'$' => {
                self.pos += 1;
                let name = self.word();
                if name.is_empty() {
                    return self.err("empty variable name");
                }
                Tok::Var(name)
            }
            b'<' => {
                // IRI or comparison: an IRI has a '>' before any whitespace.
                let rest = &self.bytes[self.pos + 1..];
                let mut is_iri = false;
                for &c in rest.iter() {
                    if c == b'>' {
                        is_iri = true;
                        break;
                    }
                    if c.is_ascii_whitespace() || c == b'<' || c == b'"' {
                        break;
                    }
                }
                if is_iri {
                    self.pos += 1;
                    let start = self.pos;
                    while self.bytes[self.pos] != b'>' {
                        self.pos += 1;
                    }
                    let iri = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    Tok::Iri(iri)
                } else {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
            }
            b'>' => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                self.pos += 1;
                let mut value = String::new();
                loop {
                    let c = match self.bytes.get(self.pos) {
                        Some(c) => *c,
                        None => return self.err("unterminated string"),
                    };
                    if c == quote {
                        self.pos += 1;
                        break;
                    }
                    if c == b'\\' {
                        self.pos += 1;
                        let esc = self.bytes.get(self.pos).copied().ok_or(ParseError {
                            message: "dangling escape".into(),
                            position: self.pos,
                        })?;
                        value.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            b'"' => '"',
                            b'\'' => '\'',
                            b'\\' => '\\',
                            other => other as char,
                        });
                        self.pos += 1;
                    } else {
                        let len = match c {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let end = (self.pos + len).min(self.bytes.len());
                        value.push_str(&String::from_utf8_lossy(&self.bytes[self.pos..end]));
                        self.pos = end;
                    }
                }
                // Suffix.
                if self.bytes.get(self.pos) == Some(&b'^')
                    && self.bytes.get(self.pos + 1) == Some(&b'^')
                {
                    self.pos += 2;
                    self.skip_ws();
                    let dt = match self.bytes.get(self.pos) {
                        Some(b'<') => match self.next()? {
                            Some(t @ Tok::Iri(_)) => t,
                            _ => return self.err("expected datatype IRI"),
                        },
                        Some(_) => {
                            let w = self.pname();
                            match w.split_once(':') {
                                Some((p, l)) => Tok::Prefixed(p.into(), l.into()),
                                None => return self.err("expected datatype"),
                            }
                        }
                        None => return self.err("expected datatype after '^^'"),
                    };
                    Tok::Str {
                        value,
                        datatype: Some(Box::new(dt)),
                        lang: None,
                    }
                } else if self.bytes.get(self.pos) == Some(&b'@') {
                    self.pos += 1;
                    let lang = self.word();
                    Tok::Str {
                        value,
                        datatype: None,
                        lang: Some(lang),
                    }
                } else {
                    Tok::Str {
                        value,
                        datatype: None,
                        lang: None,
                    }
                }
            }
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.bytes.len() {
                    let c = self.bytes[self.pos];
                    if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                // A trailing dot is the triple terminator.
                if self.bytes[self.pos - 1] == b'.' {
                    self.pos -= 1;
                }
                if self.pos == start + 1 && b == b'-' {
                    Tok::Minus
                } else {
                    Tok::Num(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
                }
            }
            _ => {
                let w = self.pname();
                if w.is_empty() {
                    return self.err(format!("unexpected character {:?}", b as char));
                }
                if let Some((p, l)) = w.split_once(':') {
                    Tok::Prefixed(p.to_string(), l.to_string())
                } else {
                    Tok::Word(w)
                }
            }
        };
        Ok(Some(tok))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Vec<Tok>,
    prefixes: HashMap<String, String>,
    blank_counter: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let prefixes = vocab::default_prefixes()
            .into_iter()
            .map(|(p, ns)| (p.to_string(), ns.to_string()))
            .collect();
        Parser {
            lexer: Lexer::new(input),
            peeked: Vec::new(),
            prefixes,
            blank_counter: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            position: self.lexer.pos,
        })
    }

    fn next(&mut self) -> Result<Option<Tok>, ParseError> {
        if let Some(t) = self.peeked.pop() {
            return Ok(Some(t));
        }
        self.lexer.next()
    }

    fn peek(&mut self) -> Result<Option<&Tok>, ParseError> {
        if self.peeked.is_empty() {
            if let Some(t) = self.lexer.next()? {
                self.peeked.push(t);
            }
        }
        Ok(self.peeked.last())
    }

    fn unread(&mut self, tok: Tok) {
        self.peeked.push(tok);
    }

    fn expect_tok(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.next()? {
            Some(t) if &t == want => Ok(()),
            Some(t) => self.err(format!("expected {want:?}, found {t:?}")),
            None => self.err(format!("expected {want:?}, found end of input")),
        }
    }

    /// Consume a keyword (case-insensitive). Returns false without
    /// consuming when the next token is different.
    fn keyword(&mut self, kw: &str) -> Result<bool, ParseError> {
        match self.next()? {
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw) => Ok(true),
            Some(other) => {
                self.unread(other);
                Ok(false)
            }
            None => Ok(false),
        }
    }

    fn resolve(&self, prefix: &str, local: &str) -> Result<NamedNode, ParseError> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(NamedNode::new(format!("{ns}{local}"))),
            None => Err(ParseError {
                message: format!("undeclared prefix {prefix:?}"),
                position: self.lexer.pos,
            }),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        // Prologue.
        loop {
            if self.keyword("PREFIX")? {
                let (p, l) = match self.next()? {
                    Some(Tok::Prefixed(p, l)) => (p, l),
                    Some(Tok::Word(w)) => {
                        // `PREFIX foo :`? Not supported; require `foo:`.
                        return self.err(format!("expected prefix declaration, found {w:?}"));
                    }
                    other => return self.err(format!("expected prefix name, found {other:?}")),
                };
                if !l.is_empty() {
                    return self.err("prefix declarations must end with ':'");
                }
                match self.next()? {
                    Some(Tok::Iri(iri)) => {
                        self.prefixes.insert(p, iri);
                    }
                    other => return self.err(format!("expected IRI, found {other:?}")),
                }
            } else if self.keyword("BASE")? {
                let _ = self.next()?; // ignored: all IRIs are absolute
            } else {
                break;
            }
        }

        if self.keyword("SELECT")? {
            self.parse_select()
        } else if self.keyword("ASK")? {
            // The WHERE keyword is optional in ASK, as in SELECT.
            self.keyword("WHERE")?;
            let pattern = self.parse_group()?;
            Ok(Query {
                form: QueryForm::Ask,
                pattern,
                order_by: vec![],
                limit: None,
                offset: 0,
            })
        } else if self.keyword("CONSTRUCT")? {
            self.expect_tok(&Tok::LBrace)?;
            let template = self.parse_triples_until_rbrace()?;
            if !self.keyword("WHERE")? {
                return self.err("expected WHERE after CONSTRUCT template");
            }
            let pattern = self.parse_group()?;
            let (order_by, limit, offset, _) = self.parse_modifiers()?;
            Ok(Query {
                form: QueryForm::Construct { template },
                pattern,
                order_by,
                limit,
                offset,
            })
        } else {
            self.err("expected SELECT, ASK or CONSTRUCT")
        }
    }

    fn parse_select(&mut self) -> Result<Query, ParseError> {
        let distinct = self.keyword("DISTINCT")?;
        let _ = self.keyword("REDUCED")?;
        let mut projection = Vec::new();
        let mut star = false;
        loop {
            match self.next()? {
                Some(Tok::Star) => {
                    star = true;
                }
                Some(Tok::Var(v)) => projection.push(Projection::Var(v)),
                Some(Tok::LParen) => {
                    projection.push(self.parse_projection_expr()?);
                }
                Some(other) => {
                    self.unread(other);
                    break;
                }
                None => return self.err("unexpected end of SELECT clause"),
            }
            if star {
                break;
            }
        }
        if !star && projection.is_empty() {
            return self.err("SELECT needs projections or *");
        }
        // WHERE is optional in SPARQL but we require the braces either way.
        let _ = self.keyword("WHERE")?;
        let pattern = self.parse_group()?;
        let (order_by, limit, offset, group_by) = self.parse_modifiers()?;
        Ok(Query {
            form: QueryForm::Select {
                distinct,
                projection: if star { vec![] } else { projection },
                group_by,
            },
            pattern,
            order_by,
            limit,
            offset,
        })
    }

    /// Inside `( ... )` of a SELECT clause: either `expr AS ?v` or
    /// `AGG(expr) AS ?v`.
    fn parse_projection_expr(&mut self) -> Result<Projection, ParseError> {
        // Aggregate?
        if let Some(Tok::Word(w)) = self.peek()? {
            let up = w.to_ascii_uppercase();
            let agg = match up.as_str() {
                "COUNT" => Some(Aggregate::Count),
                "SUM" => Some(Aggregate::Sum),
                "AVG" => Some(Aggregate::Avg),
                "MIN" => Some(Aggregate::Min),
                "MAX" => Some(Aggregate::Max),
                "SAMPLE" => Some(Aggregate::Sample),
                _ => None,
            };
            if let Some(agg) = agg {
                let _ = self.next()?;
                self.expect_tok(&Tok::LParen)?;
                let _ = self.keyword("DISTINCT")?; // accepted, not implemented
                let inner = if matches!(self.peek()?, Some(Tok::Star)) {
                    let _ = self.next()?;
                    None
                } else {
                    Some(self.parse_expression()?)
                };
                self.expect_tok(&Tok::RParen)?;
                if !self.keyword("AS")? {
                    return self.err("expected AS in aggregate projection");
                }
                let alias = match self.next()? {
                    Some(Tok::Var(v)) => v,
                    other => return self.err(format!("expected variable, found {other:?}")),
                };
                self.expect_tok(&Tok::RParen)?;
                let agg = if inner.is_none() && agg == Aggregate::Count {
                    Aggregate::CountAll
                } else {
                    agg
                };
                return Ok(Projection::Aggregate(agg, inner, alias));
            }
        }
        let expr = self.parse_expression()?;
        if !self.keyword("AS")? {
            return self.err("expected AS in projection expression");
        }
        let alias = match self.next()? {
            Some(Tok::Var(v)) => v,
            other => return self.err(format!("expected variable, found {other:?}")),
        };
        self.expect_tok(&Tok::RParen)?;
        Ok(Projection::Expr(expr, alias))
    }

    #[allow(clippy::type_complexity)]
    fn parse_modifiers(
        &mut self,
    ) -> Result<(Vec<OrderKey>, Option<usize>, usize, Vec<String>), ParseError> {
        let mut order_by = Vec::new();
        let mut limit = None;
        let mut offset = 0;
        let mut group_by = Vec::new();
        loop {
            if self.keyword("GROUP")? {
                if !self.keyword("BY")? {
                    return self.err("expected BY after GROUP");
                }
                loop {
                    match self.next()? {
                        Some(Tok::Var(v)) => group_by.push(v),
                        Some(other) => {
                            self.unread(other);
                            break;
                        }
                        None => break,
                    }
                }
                if group_by.is_empty() {
                    return self.err("GROUP BY needs at least one variable");
                }
            } else if self.keyword("ORDER")? {
                if !self.keyword("BY")? {
                    return self.err("expected BY after ORDER");
                }
                loop {
                    let descending = if self.keyword("DESC")? {
                        self.expect_tok(&Tok::LParen)?;
                        let e = self.parse_expression()?;
                        self.expect_tok(&Tok::RParen)?;
                        order_by.push(OrderKey {
                            expr: e,
                            descending: true,
                        });
                        continue;
                    } else if self.keyword("ASC")? {
                        self.expect_tok(&Tok::LParen)?;
                        let e = self.parse_expression()?;
                        self.expect_tok(&Tok::RParen)?;
                        order_by.push(OrderKey {
                            expr: e,
                            descending: false,
                        });
                        continue;
                    } else {
                        false
                    };
                    match self.next()? {
                        Some(Tok::Var(v)) => order_by.push(OrderKey {
                            expr: Expression::Var(v),
                            descending,
                        }),
                        Some(other) => {
                            self.unread(other);
                            break;
                        }
                        None => break,
                    }
                }
            } else if self.keyword("LIMIT")? {
                match self.next()? {
                    Some(Tok::Num(n)) => {
                        limit = Some(n.parse().map_err(|_| ParseError {
                            message: format!("bad LIMIT {n}"),
                            position: self.lexer.pos,
                        })?)
                    }
                    other => return self.err(format!("expected number, found {other:?}")),
                }
            } else if self.keyword("OFFSET")? {
                match self.next()? {
                    Some(Tok::Num(n)) => {
                        offset = n.parse().map_err(|_| ParseError {
                            message: format!("bad OFFSET {n}"),
                            position: self.lexer.pos,
                        })?
                    }
                    other => return self.err(format!("expected number, found {other:?}")),
                }
            } else {
                break;
            }
        }
        match self.next()? {
            None => Ok((order_by, limit, offset, group_by)),
            Some(t) => self.err(format!("unexpected trailing token {t:?}")),
        }
    }

    /// `{ ... }` — a group graph pattern.
    fn parse_group(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect_tok(&Tok::LBrace)?;
        let mut current: Option<GraphPattern> = None;
        let mut filters: Vec<Expression> = Vec::new();
        let mut triples: Vec<TriplePattern> = Vec::new();

        let flush = |current: &mut Option<GraphPattern>, triples: &mut Vec<TriplePattern>| {
            if !triples.is_empty() {
                let bgp = GraphPattern::Bgp(std::mem::take(triples));
                *current = Some(match current.take() {
                    None => bgp,
                    Some(c) => GraphPattern::Join(Box::new(c), Box::new(bgp)),
                });
            }
        };

        loop {
            match self.next()? {
                None => return self.err("unterminated group pattern"),
                Some(Tok::RBrace) => break,
                Some(Tok::Dot) => {} // optional separators
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    let e = self.parse_constraint()?;
                    filters.push(e);
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    flush(&mut current, &mut triples);
                    let right = self.parse_group()?;
                    let left = current.take().unwrap_or(GraphPattern::Bgp(vec![]));
                    current = Some(GraphPattern::LeftJoin(Box::new(left), Box::new(right)));
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("BIND") => {
                    flush(&mut current, &mut triples);
                    self.expect_tok(&Tok::LParen)?;
                    let e = self.parse_expression()?;
                    if !self.keyword("AS")? {
                        return self.err("expected AS in BIND");
                    }
                    let v = match self.next()? {
                        Some(Tok::Var(v)) => v,
                        other => return self.err(format!("expected variable, found {other:?}")),
                    };
                    self.expect_tok(&Tok::RParen)?;
                    let inner = current.take().unwrap_or(GraphPattern::Bgp(vec![]));
                    current = Some(GraphPattern::Extend(Box::new(inner), v, e));
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("VALUES") => {
                    flush(&mut current, &mut triples);
                    let values = self.parse_values()?;
                    current = Some(match current.take() {
                        None => values,
                        Some(c) => GraphPattern::Join(Box::new(c), Box::new(values)),
                    });
                }
                Some(Tok::LBrace) => {
                    // Sub-group, possibly a UNION chain.
                    self.unread(Tok::LBrace);
                    flush(&mut current, &mut triples);
                    let mut acc = self.parse_group()?;
                    while self.keyword("UNION")? {
                        let rhs = self.parse_group()?;
                        acc = GraphPattern::Union(Box::new(acc), Box::new(rhs));
                    }
                    current = Some(match current.take() {
                        None => acc,
                        Some(c) => GraphPattern::Join(Box::new(c), Box::new(acc)),
                    });
                }
                Some(other) => {
                    // A triples block starting with this token.
                    self.unread(other);
                    self.parse_triples_block(&mut triples)?;
                }
            }
        }
        flush(&mut current, &mut triples);
        let mut pattern = current.unwrap_or(GraphPattern::Bgp(vec![]));
        // Filters wrap the whole group (SPARQL group semantics).
        if !filters.is_empty() {
            let combined = filters
                .into_iter()
                .reduce(|a, b| Expression::And(Box::new(a), Box::new(b)))
                .unwrap();
            pattern = GraphPattern::Filter(combined, Box::new(pattern));
        }
        Ok(pattern)
    }

    fn parse_values(&mut self) -> Result<GraphPattern, ParseError> {
        // VALUES ?v { t1 t2 } or VALUES (?a ?b) { (t1 t2) (t3 t4) }
        let mut vars = Vec::new();
        let mut multi = false;
        match self.next()? {
            Some(Tok::Var(v)) => vars.push(v),
            Some(Tok::LParen) => {
                multi = true;
                loop {
                    match self.next()? {
                        Some(Tok::Var(v)) => vars.push(v),
                        Some(Tok::RParen) => break,
                        other => return self.err(format!("expected variable, found {other:?}")),
                    }
                }
            }
            other => return self.err(format!("expected VALUES variables, found {other:?}")),
        }
        self.expect_tok(&Tok::LBrace)?;
        let mut rows = Vec::new();
        loop {
            match self.next()? {
                Some(Tok::RBrace) => break,
                Some(Tok::LParen) if multi => {
                    let mut row = Vec::new();
                    loop {
                        match self.peek()? {
                            Some(Tok::RParen) => {
                                let _ = self.next()?;
                                break;
                            }
                            _ => {
                                let tok = self.next()?.unwrap();
                                if let Tok::Word(w) = &tok {
                                    if w.eq_ignore_ascii_case("UNDEF") {
                                        row.push(None);
                                        continue;
                                    }
                                }
                                row.push(Some(self.token_to_term(tok)?));
                            }
                        }
                    }
                    rows.push(row);
                }
                Some(tok) if !multi => {
                    if let Tok::Word(w) = &tok {
                        if w.eq_ignore_ascii_case("UNDEF") {
                            rows.push(vec![None]);
                            continue;
                        }
                    }
                    rows.push(vec![Some(self.token_to_term(tok)?)]);
                }
                other => return self.err(format!("bad VALUES row: {other:?}")),
            }
        }
        Ok(GraphPattern::Values(vars, rows))
    }

    fn parse_triples_until_rbrace(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.next()? {
                Some(Tok::RBrace) => break,
                Some(Tok::Dot) => {}
                Some(other) => {
                    self.unread(other);
                    self.parse_triples_block(&mut out)?;
                }
                None => return self.err("unterminated template"),
            }
        }
        Ok(out)
    }

    /// One subject with its predicate-object list.
    fn parse_triples_block(&mut self, out: &mut Vec<TriplePattern>) -> Result<(), ParseError> {
        let subject = self.parse_term_pattern()?;
        loop {
            let predicate = match self.next()? {
                Some(Tok::Word(w)) if w == "a" => TermPattern::Term(Term::named(vocab::rdf::TYPE)),
                Some(tok) => {
                    self.unread(tok);
                    self.parse_term_pattern()?
                }
                None => return self.err("expected predicate"),
            };
            loop {
                let object = self.parse_term_pattern()?;
                out.push(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                match self.peek()? {
                    Some(Tok::Comma) => {
                        let _ = self.next()?;
                    }
                    _ => break,
                }
            }
            match self.peek()? {
                Some(Tok::Semicolon) => {
                    let _ = self.next()?;
                    // A dangling semicolon before '.' or '}' is legal.
                    match self.peek()? {
                        Some(Tok::Dot) | Some(Tok::RBrace) => break,
                        _ => continue,
                    }
                }
                _ => break,
            }
        }
        Ok(())
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, ParseError> {
        let tok = self.next()?.ok_or_else(|| ParseError {
            message: "expected term".into(),
            position: self.lexer.pos,
        })?;
        match tok {
            Tok::Var(v) => Ok(TermPattern::Var(v)),
            Tok::Word(w) if w == "_" => {
                // not reachable: blank label comes through Prefixed("_", l)
                self.err(format!("unexpected {w:?}"))
            }
            Tok::Prefixed(p, l) if p == "_" => Ok(TermPattern::Term(Term::Blank(
                applab_rdf::BlankNode::new(l),
            ))),
            Tok::Word(w) if w == "[" => {
                let label = format!("anon{}", self.blank_counter);
                self.blank_counter += 1;
                Ok(TermPattern::Term(Term::Blank(applab_rdf::BlankNode::new(
                    label,
                ))))
            }
            other => Ok(TermPattern::Term(self.token_to_term(other)?)),
        }
    }

    fn token_to_term(&mut self, tok: Tok) -> Result<Term, ParseError> {
        match tok {
            Tok::Iri(iri) => Ok(Term::named(iri)),
            Tok::Prefixed(p, l) if p == "_" => Ok(Term::Blank(applab_rdf::BlankNode::new(l))),
            Tok::Prefixed(p, l) => Ok(Term::Named(self.resolve(&p, &l)?)),
            Tok::Str {
                value,
                datatype,
                lang,
            } => {
                if let Some(lang) = lang {
                    Ok(Literal::lang(value, lang).into())
                } else if let Some(dt) = datatype {
                    let dt = match *dt {
                        Tok::Iri(iri) => NamedNode::new(iri),
                        Tok::Prefixed(p, l) => self.resolve(&p, &l)?,
                        other => return self.err(format!("bad datatype token {other:?}")),
                    };
                    Ok(Literal::typed(value, dt).into())
                } else {
                    Ok(Literal::string(value).into())
                }
            }
            Tok::Num(n) => {
                let dt = if n.contains(['.', 'e', 'E']) {
                    vocab::xsd::DOUBLE
                } else {
                    vocab::xsd::INTEGER
                };
                Ok(Literal::typed(n, NamedNode::new(dt)).into())
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => Ok(Literal::boolean(true).into()),
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => Ok(Literal::boolean(false).into()),
            other => self.err(format!("expected RDF term, found {other:?}")),
        }
    }

    /// `FILTER` constraint: either a parenthesized expression or a function
    /// call.
    fn parse_constraint(&mut self) -> Result<Expression, ParseError> {
        match self.peek()? {
            Some(Tok::LParen) => {
                let _ = self.next()?;
                let e = self.parse_expression()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(e)
            }
            _ => self.parse_primary(),
        }
    }

    // Expression precedence: || < && < comparison < additive < multiplicative
    // < unary < primary.
    fn parse_expression(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek()?, Some(Tok::OrOr)) {
            let _ = self.next()?;
            let rhs = self.parse_and()?;
            lhs = Expression::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_comparison()?;
        while matches!(self.peek()?, Some(Tok::AndAnd)) {
            let _ = self.next()?;
            let rhs = self.parse_comparison()?;
            lhs = Expression::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expression, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek()? {
            Some(Tok::Eq) => Some("="),
            Some(Tok::Neq) => Some("!="),
            Some(Tok::Lt) => Some("<"),
            Some(Tok::Le) => Some("<="),
            Some(Tok::Gt) => Some(">"),
            Some(Tok::Ge) => Some(">="),
            _ => None,
        };
        if let Some(op) = op {
            let _ = self.next()?;
            let rhs = self.parse_additive()?;
            let (l, r) = (Box::new(lhs), Box::new(rhs));
            return Ok(match op {
                "=" => Expression::Equal(l, r),
                "!=" => Expression::NotEqual(l, r),
                "<" => Expression::Less(l, r),
                "<=" => Expression::LessOrEqual(l, r),
                ">" => Expression::Greater(l, r),
                _ => Expression::GreaterOrEqual(l, r),
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            match self.peek()? {
                Some(Tok::Plus) => {
                    let _ = self.next()?;
                    let rhs = self.parse_multiplicative()?;
                    lhs = Expression::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Minus) => {
                    let _ = self.next()?;
                    let rhs = self.parse_multiplicative()?;
                    lhs = Expression::Subtract(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek()? {
                Some(Tok::Star) => {
                    let _ = self.next()?;
                    let rhs = self.parse_unary()?;
                    lhs = Expression::Multiply(Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Slash) => {
                    let _ = self.next()?;
                    let rhs = self.parse_unary()?;
                    lhs = Expression::Divide(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expression, ParseError> {
        match self.peek()? {
            Some(Tok::Bang) => {
                let _ = self.next()?;
                Ok(Expression::Not(Box::new(self.parse_unary()?)))
            }
            Some(Tok::Minus) => {
                let _ = self.next()?;
                Ok(Expression::UnaryMinus(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expression, ParseError> {
        let tok = self.next()?.ok_or_else(|| ParseError {
            message: "expected expression".into(),
            position: self.lexer.pos,
        })?;
        match tok {
            Tok::LParen => {
                let e = self.parse_expression()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Var(v) => Ok(Expression::Var(v)),
            Tok::Num(_) | Tok::Str { .. } => Ok(Expression::Constant(self.token_to_term(tok)?)),
            Tok::Word(w) => {
                let up = w.to_ascii_uppercase();
                match up.as_str() {
                    "TRUE" => return Ok(Expression::Constant(Literal::boolean(true).into())),
                    "FALSE" => return Ok(Expression::Constant(Literal::boolean(false).into())),
                    "BOUND" => {
                        self.expect_tok(&Tok::LParen)?;
                        let v = match self.next()? {
                            Some(Tok::Var(v)) => v,
                            other => {
                                return self.err(format!("BOUND expects a variable, got {other:?}"))
                            }
                        };
                        self.expect_tok(&Tok::RParen)?;
                        return Ok(Expression::Bound(v));
                    }
                    "IF" => {
                        self.expect_tok(&Tok::LParen)?;
                        let c = self.parse_expression()?;
                        self.expect_tok(&Tok::Comma)?;
                        let t = self.parse_expression()?;
                        self.expect_tok(&Tok::Comma)?;
                        let e = self.parse_expression()?;
                        self.expect_tok(&Tok::RParen)?;
                        return Ok(Expression::If(Box::new(c), Box::new(t), Box::new(e)));
                    }
                    _ => {}
                }
                // Builtin function call?
                const BUILTINS: &[&str] = &[
                    "STR",
                    "STRLEN",
                    "UCASE",
                    "LCASE",
                    "CONTAINS",
                    "STRSTARTS",
                    "STRENDS",
                    "CONCAT",
                    "ABS",
                    "CEIL",
                    "FLOOR",
                    "ROUND",
                    "LANG",
                    "DATATYPE",
                    "ISIRI",
                    "ISURI",
                    "ISLITERAL",
                    "ISBLANK",
                    "ISNUMERIC",
                    "YEAR",
                    "MONTH",
                    "DAY",
                ];
                if BUILTINS.contains(&up.as_str()) {
                    let args = self.parse_call_args()?;
                    return Ok(Expression::Call(
                        NamedNode::new(format!("builtin:{}", up.to_lowercase())),
                        args,
                    ));
                }
                self.err(format!("unexpected word {w:?} in expression"))
            }
            Tok::Prefixed(p, l) => {
                let func = self.resolve(&p, &l)?;
                let args = self.parse_call_args()?;
                Ok(Expression::Call(func, args))
            }
            Tok::Iri(iri) => {
                // Either a function call or an IRI constant.
                if matches!(self.peek()?, Some(Tok::LParen)) {
                    let args = self.parse_call_args()?;
                    Ok(Expression::Call(NamedNode::new(iri), args))
                } else {
                    Ok(Expression::Constant(Term::named(iri)))
                }
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expression>, ParseError> {
        self.expect_tok(&Tok::LParen)?;
        let mut args = Vec::new();
        if matches!(self.peek()?, Some(Tok::RParen)) {
            let _ = self.next()?;
            return Ok(args);
        }
        loop {
            args.push(self.parse_expression()?);
            match self.next()? {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return self.err(format!("expected ',' or ')', found {other:?}")),
            }
        }
        Ok(args)
    }
}

/// Parse a SPARQL query string.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut span = applab_obs::span("parse");
    span.record("bytes", input.len());
    Parser::new(input).parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_listing1() {
        // Listing 1 of the paper (normalized: the paper's PDF has a stray
        // `>` artifact in the hasName line).
        let q = r#"
SELECT DISTINCT ?geoA ?geoB ?lai WHERE
{ ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne"^^xsd:string .
  ?areaB lai:lai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA, ?geoB))
}
"#;
        let parsed = parse_query(q).unwrap();
        match &parsed.form {
            QueryForm::Select {
                distinct,
                projection,
                ..
            } => {
                assert!(*distinct);
                assert_eq!(projection.len(), 3);
            }
            other => panic!("wrong form {other:?}"),
        }
        // The pattern is Filter(sfIntersects, Bgp(7 patterns)).
        match &parsed.pattern {
            GraphPattern::Filter(Expression::Call(f, args), inner) => {
                assert_eq!(f.as_str(), vocab::geof::SF_INTERSECTS);
                assert_eq!(args.len(), 2);
                match inner.as_ref() {
                    GraphPattern::Bgp(ps) => assert_eq!(ps.len(), 7),
                    other => panic!("expected BGP, got {other:?}"),
                }
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn parse_listing3() {
        let q = r#"
SELECT DISTINCT ?s ?wkt ?lai
WHERE { ?s lai:hasLai ?lai .
        ?s geo:hasGeometry ?g .
        ?g geo:asWKT ?wkt }
"#;
        let parsed = parse_query(q).unwrap();
        match &parsed.pattern {
            GraphPattern::Bgp(ps) => assert_eq!(ps.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_prefix_declarations() {
        let q = r#"
PREFIX my: <http://my.org/ns#>
SELECT ?x WHERE { ?x a my:Thing }
"#;
        let parsed = parse_query(q).unwrap();
        match &parsed.pattern {
            GraphPattern::Bgp(ps) => {
                assert_eq!(
                    ps[0].object,
                    TermPattern::Term(Term::named("http://my.org/ns#Thing"))
                );
                assert_eq!(
                    ps[0].predicate,
                    TermPattern::Term(Term::named(vocab::rdf::TYPE))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_optional_union_bind_values() {
        let q = r#"
SELECT * WHERE {
  ?s a osm:PointOfInterest .
  OPTIONAL { ?s osm:hasName ?name }
  { ?s osm:poiType osm:park } UNION { ?s osm:poiType osm:forest }
  BIND(STRLEN(?name) AS ?len)
  VALUES ?kind { osm:park osm:forest }
}
"#;
        let parsed = parse_query(q).unwrap();
        // Expect Extend(Join(Join(LeftJoin(...), Union(...)), Values) shape —
        // just verify the pieces exist.
        fn count_nodes(p: &GraphPattern, pred: &dyn Fn(&GraphPattern) -> bool) -> usize {
            let here = usize::from(pred(p));
            here + match p {
                GraphPattern::Filter(_, i) | GraphPattern::Extend(i, _, _) => count_nodes(i, pred),
                GraphPattern::Join(a, b)
                | GraphPattern::LeftJoin(a, b)
                | GraphPattern::Union(a, b) => count_nodes(a, pred) + count_nodes(b, pred),
                _ => 0,
            }
        }
        assert_eq!(
            count_nodes(&parsed.pattern, &|p| matches!(p, GraphPattern::Union(..))),
            1
        );
        assert_eq!(
            count_nodes(&parsed.pattern, &|p| matches!(
                p,
                GraphPattern::LeftJoin(..)
            )),
            1
        );
        assert_eq!(
            count_nodes(&parsed.pattern, &|p| matches!(p, GraphPattern::Values(..))),
            1
        );
        assert_eq!(
            count_nodes(&parsed.pattern, &|p| matches!(p, GraphPattern::Extend(..))),
            1
        );
    }

    #[test]
    fn parse_aggregates_and_modifiers() {
        let q = r#"
SELECT ?cls (AVG(?lai) AS ?mean) (COUNT(*) AS ?n)
WHERE { ?o lai:hasLai ?lai . ?o clc:hasCorineValue ?cls }
GROUP BY ?cls
ORDER BY DESC(?mean)
LIMIT 5 OFFSET 2
"#;
        let parsed = parse_query(q).unwrap();
        match &parsed.form {
            QueryForm::Select {
                projection,
                group_by,
                ..
            } => {
                assert_eq!(group_by, &vec!["cls".to_string()]);
                assert!(matches!(
                    projection[1],
                    Projection::Aggregate(Aggregate::Avg, Some(_), _)
                ));
                assert!(matches!(
                    projection[2],
                    Projection::Aggregate(Aggregate::CountAll, None, _)
                ));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parsed.limit, Some(5));
        assert_eq!(parsed.offset, 2);
        assert!(parsed.order_by[0].descending);
    }

    #[test]
    fn parse_ask_and_construct() {
        let ask = parse_query("ASK { ?s a osm:PointOfInterest }").unwrap();
        assert_eq!(ask.form, QueryForm::Ask);

        let c = parse_query("CONSTRUCT { ?s rdfs:label ?name } WHERE { ?s osm:hasName ?name }")
            .unwrap();
        match c.form {
            QueryForm::Construct { template } => assert_eq!(template.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_filter_comparisons() {
        let q = parse_query("SELECT ?v WHERE { ?s lai:hasLai ?v . FILTER(?v > 0 && ?v <= 10.5) }")
            .unwrap();
        match &q.pattern {
            GraphPattern::Filter(Expression::And(a, b), _) => {
                assert!(matches!(a.as_ref(), Expression::Greater(..)));
                assert!(matches!(b.as_ref(), Expression::LessOrEqual(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_object_lists_and_pred_lists() {
        let q =
            parse_query("SELECT * WHERE { ?s a osm:PointOfInterest ; osm:hasName \"A\", \"B\" . }")
                .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(ps) => assert_eq!(ps.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_typed_and_lang_literals() {
        let q = parse_query(
            r#"SELECT * WHERE { ?s ?p "3.5"^^xsd:float . ?s ?q "chat"@fr . ?s ?r "2017-06-15T00:00:00Z"^^xsd:dateTime }"#,
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(ps) => {
                let lit = |i: usize| match &ps[i].object {
                    TermPattern::Term(Term::Literal(l)) => l.clone(),
                    other => panic!("{other:?}"),
                };
                assert_eq!(lit(0).as_f64(), Some(3.5));
                assert_eq!(lit(1).language(), Some("fr"));
                assert!(lit(2).as_datetime().is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT WHERE { }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x a unknown:Thing }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x a osm:park").is_err());
        assert!(parse_query("NONSENSE ?x { }").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn comparison_vs_iri_disambiguation() {
        let q = parse_query("SELECT ?x WHERE { ?x lai:hasLai ?v . FILTER(?v < 5) }").unwrap();
        match &q.pattern {
            GraphPattern::Filter(Expression::Less(..), _) => {}
            other => panic!("{other:?}"),
        }
        let q =
            parse_query("SELECT ?x WHERE { ?x <http://ex.org/p> ?v . FILTER(?v < 5) }").unwrap();
        match &q.pattern {
            GraphPattern::Filter(_, inner) => match inner.as_ref() {
                GraphPattern::Bgp(ps) => {
                    assert_eq!(
                        ps[0].predicate,
                        TermPattern::Term(Term::named("http://ex.org/p"))
                    );
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
