//! Columnar solution batches: the unit of data flow in the vectorized
//! evaluator.
//!
//! A [`Batch`] holds one fixed-width `u64` id column per variable slot
//! plus a validity bitmap per column, replacing the old row-at-a-time
//! `Vec<Option<u64>>` representation. Operators (scan, hash join, filter,
//! BIND, aggregate) consume and produce whole batches; per-row work in the
//! hot loops reduces to indexed loads and bit tests instead of `Option`
//! vectors allocated per solution.
//!
//! Two representation tricks keep batches cheap:
//!
//! * **lazy columns** — a column with no storage at all (`ids` and `valid`
//!   both empty) means *every row is unbound* for that slot, whatever the
//!   batch length. Scans produce batches that materialize only the slots
//!   the pattern binds; a join output materializes only the union of its
//!   inputs' bound slots. A column is backfilled with zero ids and zero
//!   validity words the first time a bound value lands in it.
//! * **word-packed validity** — validity is one bit per row in `u64`
//!   words, so "which rows bind this slot" checks are bit tests and
//!   "does this column bind anything" is a word-level `any`.
//!
//! Ordering is part of the contract: [`Batch::gather`],
//! [`Batch::append_gather`] and [`merge_gather`] preserve the order of
//! their selection/pair lists exactly, which is how the vectorized join
//! reproduces the row order of the sequential row-at-a-time engine
//! byte for byte (the QA differential harness depends on it).

/// One id column with a validity bitmap. The empty column (no storage)
/// represents "all rows unbound" for any batch length.
#[derive(Debug, Clone, Default)]
pub(crate) struct Column {
    /// Row ids; meaningful only where the validity bit is set. Either
    /// empty (lazy all-unbound column) or exactly `Batch::len` long.
    ids: Vec<u64>,
    /// One bit per row, little-endian within each word. Either empty or
    /// `Batch::len.div_ceil(64)` words.
    valid: Vec<u64>,
}

#[inline]
fn words(len: usize) -> usize {
    len.div_ceil(64)
}

impl Column {
    /// Whether this column has storage. An unmaterialized column is
    /// all-unbound by definition.
    #[inline]
    pub(crate) fn materialized(&self) -> bool {
        !self.valid.is_empty()
    }

    /// Whether this column binds any row at all.
    #[inline]
    pub(crate) fn any_valid(&self) -> bool {
        self.valid.iter().any(|w| *w != 0)
    }

    /// Whether row `i` binds this slot.
    #[inline]
    pub(crate) fn is_valid(&self, i: usize) -> bool {
        self.valid
            .get(i >> 6)
            .is_some_and(|w| w >> (i & 63) & 1 == 1)
    }

    /// The id bound at row `i`, if any.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<u64> {
        if self.is_valid(i) {
            Some(self.ids[i])
        } else {
            None
        }
    }

    /// The id at row `i` without the validity check. Only correct when the
    /// caller has already established the row is valid (e.g. via the join
    /// group mask).
    #[inline]
    pub(crate) fn id_unchecked(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Backfill storage for `len` all-unbound rows.
    fn materialize(&mut self, len: usize) {
        self.ids.resize(len, 0);
        self.valid.resize(words(len), 0);
    }

    /// Append one value to a column currently `len_before` rows long.
    /// Pushing `None` onto an unmaterialized column keeps it lazy.
    #[inline]
    fn push(&mut self, len_before: usize, v: Option<u64>) {
        match v {
            None if !self.materialized() && self.ids.is_empty() => {}
            None => {
                self.materialize(len_before);
                self.ids.push(0);
                if len_before & 63 == 0 {
                    self.valid.push(0);
                }
            }
            Some(id) => {
                self.materialize(len_before);
                self.ids.push(id);
                if len_before & 63 == 0 {
                    self.valid.push(1);
                } else {
                    *self.valid.last_mut().expect("materialized") |= 1 << (len_before & 63);
                }
            }
        }
    }

    /// Append `src[sel]` to a column currently `len_before` rows long.
    fn append_gather(&mut self, len_before: usize, src: &Column, sel: &[u32]) {
        if !src.materialized() {
            if self.materialized() {
                self.materialize(len_before + sel.len());
            }
            return;
        }
        for (off, &i) in sel.iter().enumerate() {
            self.push(len_before + off, src.get(i as usize));
        }
    }

    /// Append all of `other` (of length `other_len`) to a column currently
    /// `len_before` rows long.
    fn append(&mut self, len_before: usize, other: &Column, other_len: usize) {
        if !other.materialized() {
            if self.materialized() {
                self.materialize(len_before + other_len);
            }
            return;
        }
        for i in 0..other_len {
            self.push(len_before + i, other.get(i));
        }
    }
}

/// Incremental [`Column`] construction without knowing the length upfront.
/// Stays lazy (zero allocation) while only `None` values are pushed.
#[derive(Default)]
pub(crate) struct ColumnBuilder {
    col: Column,
    len: usize,
}

impl ColumnBuilder {
    pub(crate) fn new() -> Self {
        ColumnBuilder::default()
    }

    #[inline]
    pub(crate) fn push(&mut self, v: Option<u64>) {
        self.col.push(self.len, v);
        self.len += 1;
    }

    pub(crate) fn finish(self) -> Column {
        self.col
    }
}

/// A batch of solutions: `len` rows over one column per variable slot.
#[derive(Debug, Clone, Default)]
pub(crate) struct Batch {
    len: usize,
    cols: Vec<Column>,
}

impl Batch {
    /// An empty batch of the given width.
    pub(crate) fn new(width: usize) -> Batch {
        Batch {
            len: 0,
            cols: vec![Column::default(); width],
        }
    }

    /// A batch of `len` all-unbound rows (every column lazy).
    pub(crate) fn with_len(width: usize, len: usize) -> Batch {
        Batch {
            len,
            cols: vec![Column::default(); width],
        }
    }

    /// The evaluation entry state: one all-unbound row.
    pub(crate) fn seed(width: usize) -> Batch {
        Batch::with_len(width, 1)
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub(crate) fn width(&self) -> usize {
        self.cols.len()
    }

    /// Approximate in-memory size: id words plus validity words across
    /// the materialized columns (lazy columns hold nothing). Feeds the
    /// peak-batch-bytes query accounting.
    pub(crate) fn approx_bytes(&self) -> u64 {
        self.cols
            .iter()
            .map(|c| (c.ids.len() + c.valid.len()) as u64 * 8)
            .sum()
    }

    #[inline]
    pub(crate) fn col(&self, slot: usize) -> &Column {
        &self.cols[slot]
    }

    /// The id bound at (`row`, `slot`), if any.
    #[inline]
    pub(crate) fn get(&self, row: usize, slot: usize) -> Option<u64> {
        self.cols[slot].get(row)
    }

    /// Whether row `i` binds nothing at all (the pristine seed state).
    pub(crate) fn row_all_unbound(&self, i: usize) -> bool {
        self.cols.iter().all(|c| !c.is_valid(i))
    }

    /// Copy row `i` out as an option-per-slot row (boundary interop with
    /// the row-wise helpers: VALUES substitution, decoded scans).
    pub(crate) fn row(&self, i: usize) -> Vec<Option<u64>> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// Append one option-per-slot row.
    pub(crate) fn push_row(&mut self, row: &[Option<u64>]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(self.len, *v);
        }
        self.len += 1;
    }

    /// Install a fully-valid id column at `slot` (scan output). The vector
    /// length must equal the batch length.
    pub(crate) fn set_column(&mut self, slot: usize, ids: Vec<u64>) {
        debug_assert_eq!(ids.len(), self.len);
        let mut valid = vec![u64::MAX; words(self.len)];
        if self.len & 63 != 0 {
            if let Some(last) = valid.last_mut() {
                *last = (1u64 << (self.len & 63)) - 1;
            }
        }
        self.cols[slot] = Column { ids, valid };
    }

    /// Replace the column at `slot` wholesale (BIND output).
    pub(crate) fn set_col(&mut self, slot: usize, col: Column) {
        self.cols[slot] = col;
    }

    /// Bind `slot` to the row index in every row (LeftJoin provenance tag).
    pub(crate) fn fill_iota(&mut self, slot: usize) {
        let ids: Vec<u64> = (0..self.len as u64).collect();
        self.set_column(slot, ids);
    }

    /// Reset `slot` to all-unbound.
    pub(crate) fn clear_column(&mut self, slot: usize) {
        self.cols[slot] = Column::default();
    }

    /// Which slots are bound in at least one row.
    pub(crate) fn bound_slots(&self) -> Vec<bool> {
        self.cols.iter().map(Column::any_valid).collect()
    }

    /// The batch containing exactly the selected rows, in selection order.
    pub(crate) fn gather(&self, sel: &[u32]) -> Batch {
        let mut out = Batch::new(self.width());
        out.append_gather(self, sel);
        out
    }

    /// Append the selected rows of `src`, in selection order.
    pub(crate) fn append_gather(&mut self, src: &Batch, sel: &[u32]) {
        debug_assert_eq!(self.width(), src.width());
        for (col, s) in self.cols.iter_mut().zip(&src.cols) {
            col.append_gather(self.len, s, sel);
        }
        self.len += sel.len();
    }

    /// Append all rows of `other` (UNION / OPTIONAL concatenation).
    pub(crate) fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.width(), other.width());
        for (col, o) in self.cols.iter_mut().zip(&other.cols) {
            col.append(self.len, o, other.len);
        }
        self.len += other.len;
    }
}

/// The join merge: one output row per `(probe row, build row)` pair, in
/// pair order. Per slot, the probe value wins where bound; otherwise the
/// build value fills in — exactly the row-at-a-time `if slot.is_none()
/// { *slot = *v }` merge, vectorized per column.
pub(crate) fn merge_gather(probe: &Batch, build: &Batch, pairs: &[(u32, u32)]) -> Batch {
    debug_assert_eq!(probe.width(), build.width());
    let mut out = Batch::with_len(probe.width(), pairs.len());
    for slot in 0..probe.width() {
        let p = probe.col(slot);
        let b = build.col(slot);
        match (p.materialized(), b.materialized()) {
            (false, false) => {}
            (true, false) => {
                let mut col = ColumnBuilder::new();
                for &(pi, _) in pairs {
                    col.push(p.get(pi as usize));
                }
                out.set_col(slot, col.finish());
            }
            (false, true) => {
                let mut col = ColumnBuilder::new();
                for &(_, bi) in pairs {
                    col.push(b.get(bi as usize));
                }
                out.set_col(slot, col.finish());
            }
            (true, true) => {
                let mut col = ColumnBuilder::new();
                for &(pi, bi) in pairs {
                    col.push(p.get(pi as usize).or_else(|| b.get(bi as usize)));
                }
                out.set_col(slot, col.finish());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_rows(b: &Batch) -> Vec<Vec<Option<u64>>> {
        (0..b.len()).map(|i| b.row(i)).collect()
    }

    #[test]
    fn seed_is_one_unbound_row() {
        let b = Batch::seed(3);
        assert_eq!(b.len(), 1);
        assert!(b.row_all_unbound(0));
        assert_eq!(b.row(0), vec![None, None, None]);
        assert!(!b.col(0).materialized());
    }

    #[test]
    fn push_row_materializes_lazily() {
        let mut b = Batch::new(3);
        b.push_row(&[None, None, None]);
        b.push_row(&[None, Some(7), None]);
        b.push_row(&[None, None, None]);
        assert!(!b.col(0).materialized(), "untouched column stays lazy");
        assert!(b.col(1).materialized());
        assert_eq!(b.get(0, 1), None, "backfilled rows read as unbound");
        assert_eq!(b.get(1, 1), Some(7));
        assert_eq!(b.get(2, 1), None);
        assert_eq!(b.bound_slots(), vec![false, true, false]);
    }

    #[test]
    fn validity_crosses_word_boundaries() {
        let mut b = Batch::new(1);
        for i in 0..130u64 {
            let v = if i % 3 == 0 { Some(i) } else { None };
            b.push_row(&[v]);
        }
        for i in 0..130 {
            let expected = (i % 3 == 0).then_some(i as u64);
            assert_eq!(b.get(i, 0), expected, "row {i}");
        }
    }

    #[test]
    fn set_column_is_fully_valid() {
        let mut b = Batch::with_len(2, 70);
        b.set_column(1, (0..70).collect());
        assert!(b.col(1).is_valid(69));
        assert!(!b.col(1).is_valid(70), "past-the-end bit stays clear");
        assert_eq!(b.get(69, 1), Some(69));
        assert_eq!(b.get(3, 0), None);
    }

    #[test]
    fn gather_preserves_order_and_laziness() {
        let mut b = Batch::new(2);
        for i in 0..10u64 {
            b.push_row(&[Some(i), None]);
        }
        let g = b.gather(&[7, 1, 1, 4]);
        assert_eq!(
            batch_rows(&g),
            vec![
                vec![Some(7), None],
                vec![Some(1), None],
                vec![Some(1), None],
                vec![Some(4), None]
            ]
        );
        assert!(!g.col(1).materialized());
    }

    #[test]
    fn append_mixes_lazy_and_materialized() {
        let mut a = Batch::new(2);
        a.push_row(&[Some(1), None]);
        let mut b = Batch::new(2);
        b.push_row(&[None, Some(2)]);
        a.append(&b);
        assert_eq!(
            batch_rows(&a),
            vec![vec![Some(1), None], vec![None, Some(2)]]
        );
    }

    #[test]
    fn fill_iota_and_clear() {
        let mut b = Batch::with_len(2, 4);
        b.fill_iota(1);
        assert_eq!(b.get(3, 1), Some(3));
        b.clear_column(1);
        assert_eq!(b.get(3, 1), None);
        assert!(!b.col(1).materialized());
    }

    #[test]
    fn merge_gather_probe_wins() {
        // probe binds slot 0 (and slot 1 on row 0 only); build binds slot 1.
        let mut probe = Batch::new(3);
        probe.push_row(&[Some(10), Some(99), None]);
        probe.push_row(&[Some(11), None, None]);
        let mut build = Batch::new(3);
        build.push_row(&[None, Some(20), None]);
        build.push_row(&[None, Some(21), None]);
        let out = merge_gather(&probe, &build, &[(0, 1), (1, 0), (1, 1)]);
        assert_eq!(
            batch_rows(&out),
            vec![
                vec![Some(10), Some(99), None], // probe value wins
                vec![Some(11), Some(20), None], // filled from build
                vec![Some(11), Some(21), None],
            ]
        );
        assert!(!out.col(2).materialized());
    }
}
