//! The query evaluator: a dictionary-encoded, vectorized hash-join
//! pipeline.
//!
//! Evaluation is bottom-up over [`GraphPattern`], but unlike a classic
//! binding-at-a-time interpreter the intermediate solutions flow as
//! **columnar batches** (`batch::Batch`): one fixed-width `u64`
//! id column per variable slot plus a validity bitmap, indexed by a
//! per-query variable table (`Slots`). Each triple pattern of a BGP is
//! scanned exactly once into a batch (id-level sources emit whole columns
//! directly); batches are then combined with hash joins on the shared
//! variable slots, smallest (connected) batch first. A join builds one
//! `(probe row, build row)` pair list and materializes the output with a
//! single column-at-a-time gather; FILTER evaluates its compiled conjuncts
//! over [`EvalOptions::batch_size`]-row windows and gathers the passing
//! rows. Terms are only decoded at FILTER / projection boundaries — late
//! materialization in the Strabon style.
//!
//! Sources that store triples as dictionary ids (the spatiotemporal store)
//! expose them through [`crate::source::IdAccess`]; scans then yield native
//! id triples and join keys are integer comparisons end to end. All other
//! sources keep the decoded-triple contract and the evaluator interns terms
//! into a query-local overflow dictionary.
//!
//! Two further optimizations mirror Strabon/Ontop-spatial:
//!
//! * **spatial/temporal pushdown** — a `FILTER` with a `geof:` predicate
//!   between a variable and a constant geometry (or a dateTime comparison)
//!   yields an envelope/time-range constraint that is offered to the source
//!   while scanning patterns binding that variable
//!   ([`crate::source::GraphSource::triples_matching_spatial`] /
//!   [`crate::source::IdAccess::scan_ids_spatial`]). The constraint is an
//!   over-approximation, so the filter is always re-applied;
//! * **compiled spatial filters** — `geof:sf*` conjuncts over variables are
//!   evaluated against a per-id geometry cache with an envelope precheck,
//!   so each distinct geometry is parsed once per query instead of once per
//!   candidate row.
//!
//! Large hash joins probe in parallel with scoped threads; the chunked
//! results are concatenated in order, so parallel and sequential evaluation
//! produce identical row orders (see [`EvalOptions`]).

use crate::algebra::{
    Aggregate, Expression, GraphPattern, OrderKey, Projection, Query, QueryForm, TermPattern,
    TriplePattern,
};
use crate::batch::{merge_gather, Batch, ColumnBuilder};
use crate::expr::{
    compare_terms, eval_expr, eval_filter, geof_area_of, geof_convex_hull_of, Binding,
};
use crate::plan;
use crate::results::{QueryResults, Row};
use crate::source::{GraphSource, IdAccess, IdColumns};
use applab_geo::{Envelope, Geometry, SpatialRelation};
use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term, Triple};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Multiplicative hasher (FxHash-style) for the maps keyed by dictionary
/// ids on the join/aggregation hot path, where SipHash would dominate the
/// per-row cost. Not DoS-resistant — fine for query-local tables keyed by
/// dense ids.
#[derive(Default)]
struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn add(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

type IdHashMap<K, V> = HashMap<K, V, BuildHasherDefault<IdHasher>>;

/// Evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The query's cooperative [`Budget`] deadline elapsed mid-evaluation.
    /// The payload is the configured budget, not the elapsed time.
    Timeout(Duration),
    /// The query's [`Budget`] cancellation token was triggered.
    Cancelled,
    /// Any other evaluation failure.
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Timeout(budget) => {
                write!(f, "evaluation exceeded its {budget:?} time budget")
            }
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
            EvalError::Other(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A cooperative evaluation budget: an optional wall-clock deadline and an
/// optional external cancellation token.
///
/// The evaluator polls the budget at scan, probe-chunk, and filter
/// boundaries (about every [`CHECK_INTERVAL`] rows on the hot loops). When
/// it trips, the in-flight operators unwind and [`evaluate_with`] returns
/// [`EvalError::Timeout`] / [`EvalError::Cancelled`] — partial results are
/// never surfaced. The default budget is unlimited and costs two `Option`
/// checks per poll.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// `(deadline instant, configured duration)` — the duration is kept
    /// only so the timeout error can report what the budget was.
    deadline: Option<(Instant, Duration)>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with no deadline and no cancellation token.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget that trips once `limit` has elapsed from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Budget {
            deadline: Some((Instant::now() + limit, limit)),
            cancel: None,
        }
    }

    /// Attach an external cancellation token; storing `true` in it aborts
    /// the evaluation at the next poll.
    pub fn cancelled_by(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether the budget can ever trip.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// The absolute deadline instant, if one is set. This is what
    /// [`evaluate_with`] installs as the thread's
    /// [`applab_obs::deadline`] scope, so layers below the evaluator
    /// (e.g. the DAP retry loop) can stay inside the query budget.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline.map(|(at, _)| at)
    }

    /// Poll the budget. Cancellation wins over the deadline when both trip.
    #[inline]
    pub fn check(&self) -> Result<(), EvalError> {
        if let Some(token) = &self.cancel {
            if token.load(Ordering::Relaxed) {
                return Err(EvalError::Cancelled);
            }
        }
        if let Some((at, limit)) = self.deadline {
            if Instant::now() >= at {
                return Err(EvalError::Timeout(limit));
            }
        }
        Ok(())
    }
}

/// How many rows the evaluator's hot loops process between budget polls.
/// Small enough that runaway spatial joins abort within milliseconds,
/// large enough that `Instant::now` stays off the per-row path.
pub const CHECK_INTERVAL: usize = 1024;

/// Tuning knobs for [`evaluate_with`].
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Probe-side row count at or above which a hash join probes in
    /// parallel with scoped threads. Chunk results are concatenated in
    /// order, so the output is identical to the sequential path.
    pub parallel_probe_threshold: usize,
    /// Number of probe threads to use once the threshold is reached.
    /// `None` (the default) uses [`std::thread::available_parallelism`],
    /// so single-core hosts stay sequential; setting `Some(n)` forces
    /// `n` workers regardless of the host's core count.
    pub parallel_workers: Option<usize>,
    /// How many rows the vectorized operators process per batch window
    /// (FILTER selection vectors, EXPLAIN batch counts). Any value ≥ 1
    /// produces identical results — the knob trades selection-vector
    /// memory high-water against per-window overhead. `0` is treated
    /// as `1`.
    pub batch_size: usize,
    /// The cooperative deadline / cancellation budget for this evaluation.
    pub budget: Budget,
    /// Use the cost-based planner ([`crate::plan`]) for BGP evaluation:
    /// joins are reordered by estimated cardinality from the source's
    /// seal-time statistics, build/probe sides are chosen by size,
    /// spatial/temporal access paths are taken only when the sketch says
    /// they prune, and build-side Bloom/min-max filters drop probe rows
    /// early. `false` (the default) keeps the written-order pipeline —
    /// the byte-stable oracle the differential harnesses compare against.
    /// Planned evaluation returns the same *multiset* of solutions but
    /// may order unsorted results differently.
    pub planner: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            parallel_probe_threshold: 4096,
            parallel_workers: None,
            batch_size: 1024,
            budget: Budget::unlimited(),
            planner: false,
        }
    }
}

impl EvalOptions {
    /// Options that pin evaluation to the sequential probe path regardless
    /// of input size or host core count. Differential harnesses use this to
    /// make "the sequential pipeline" a reproducible engine configuration.
    pub fn sequential() -> Self {
        EvalOptions {
            parallel_probe_threshold: usize::MAX,
            parallel_workers: None,
            ..EvalOptions::default()
        }
    }

    /// Options that force every hash join to probe in parallel with exactly
    /// `workers` scoped threads, even on single-core hosts and tiny inputs.
    /// The counterpart of [`EvalOptions::sequential`] for differential
    /// testing: both paths must produce identical output.
    pub fn forced_parallel(workers: usize) -> Self {
        EvalOptions {
            parallel_probe_threshold: 1,
            parallel_workers: Some(workers.max(2)),
            ..EvalOptions::default()
        }
    }

    /// Toggle the cost-based planner (builder style).
    pub fn planner(mut self, on: bool) -> Self {
        self.planner = on;
        self
    }
}

/// Evaluate a query against a source with default options.
pub fn evaluate(source: &dyn GraphSource, query: &Query) -> Result<QueryResults, EvalError> {
    evaluate_with(source, query, &EvalOptions::default())
}

/// Evaluate a query against a source with explicit [`EvalOptions`].
pub fn evaluate_with(
    source: &dyn GraphSource,
    query: &Query,
    options: &EvalOptions,
) -> Result<QueryResults, EvalError> {
    applab_obs::counter!("applab_sparql_queries_total").inc();
    let started = std::time::Instant::now();
    // Publish the query deadline to everything this evaluation calls into
    // (scans run on this thread), so e.g. DAP retry backoffs never
    // outlive the budget.
    let _deadline_scope = applab_obs::deadline::enter(options.budget.deadline_instant());
    let mut eval_span = applab_obs::span("sparql.evaluate");
    if options.planner {
        eval_span.record("planner", true);
        // The statically chosen plan for the whole query — per-BGP spans
        // repeat it next to their actual rows. Planning the query a
        // second time just for the field is only worth it when something
        // is actually tracing.
        if eval_span.enabled() {
            if let Some(stats) = source.stats() {
                eval_span.record(
                    "plan_fingerprint",
                    format!("{:016x}", plan::query_fingerprint(stats, &query.pattern)),
                );
            }
        }
    }
    let slots = Slots::new(&query.pattern);
    let width = slots.width;
    let n_real = slots.names.len();
    let mut ev = Evaluator {
        source,
        interner: Interner::new(source.id_access()),
        slots,
        options,
        geometries: IdHashMap::default(),
        next_prov: n_real,
        interrupt: None,
    };
    let batch = ev.eval_pattern(&query.pattern, Batch::seed(width), &Constraints::default());

    let out = if let Some(e) = ev.interrupt.take() {
        Err(e)
    } else {
        form_results(&mut ev, query, batch)
            // A deadline that trips during projection/aggregation still
            // fails the whole query: no partial results past this point.
            .and_then(|r| options.budget.check().map(|()| r))
    };

    match &out {
        Ok(results) => eval_span.record("rows", result_cardinality(results)),
        Err(EvalError::Timeout(_)) => {
            applab_obs::counter!("applab_sparql_timeouts_total").inc();
            eval_span.record("timeout", true);
        }
        Err(EvalError::Cancelled) => {
            applab_obs::counter!("applab_sparql_cancellations_total").inc();
            eval_span.record("cancelled", true);
        }
        Err(_) => {}
    }
    drop(eval_span);
    applab_obs::histogram!("applab_sparql_query_seconds", QUERY_SECONDS_BUCKETS)
        .observe(started.elapsed().as_secs_f64());
    out
}

/// Shape the final solution batch into the query-form-specific results.
fn form_results(
    ev: &mut Evaluator<'_>,
    query: &Query,
    batch: Batch,
) -> Result<QueryResults, EvalError> {
    match &query.form {
        QueryForm::Ask => Ok(QueryResults::Boolean(!batch.is_empty())),
        QueryForm::Construct { template } => {
            // Variables the template mentions, with their slots. Template
            // variables absent from the pattern stay unbound and become
            // fresh blank nodes in `instantiate`.
            let mut tvars: Vec<(String, usize)> = Vec::new();
            for t in template {
                for v in t.variables() {
                    if let Some(s) = ev.slots.get(v) {
                        if !tvars.iter().any(|(n, _)| n == v) {
                            tvars.push((v.to_string(), s));
                        }
                    }
                }
            }
            let mut g = Graph::new();
            for i in 0..batch.len() {
                let b = ev.decode_binding_at(&batch, i, &tvars);
                for (j, t) in template.iter().enumerate() {
                    if let Some(triple) = instantiate(t, &b, i, j) {
                        g.insert(triple);
                    }
                }
            }
            Ok(QueryResults::Graph(g))
        }
        QueryForm::Select {
            distinct,
            projection,
            group_by,
        } => {
            let has_aggregates = projection
                .iter()
                .any(|p| matches!(p, Projection::Aggregate(..)));
            let mut variables: Vec<String>;
            let mut rows: Vec<Row>;

            let grouped = has_aggregates || !group_by.is_empty();
            let mut proj_span = applab_obs::span(if grouped { "aggregate" } else { "project" });
            proj_span.record("input_rows", batch.len());
            let batch_size = ev.options.batch_size.max(1);
            proj_span.record("batches", batch.len().div_ceil(batch_size).max(1) as u64);
            applab_obs::querystats::batches(batch.len().div_ceil(batch_size).max(1) as u64);
            applab_obs::querystats::peak_batch_bytes(batch.approx_bytes());

            if grouped {
                (variables, rows) = ev.aggregate_batch(&batch, projection, group_by)?;
            } else if projection.is_empty() {
                // SELECT *: every variable in the pattern, in pattern order.
                variables = query.pattern.variables();
                let var_slots: Vec<Option<usize>> =
                    variables.iter().map(|v| ev.slots.get(v)).collect();
                rows = (0..batch.len())
                    .map(|i| Row {
                        values: var_slots
                            .iter()
                            .map(|s| {
                                s.and_then(|s| batch.get(i, s))
                                    .map(|id| ev.interner.decode(id).clone())
                            })
                            .collect(),
                    })
                    .collect();
            } else {
                variables = projection.iter().map(|p| p.name().to_string()).collect();
                // Per-projection decode plan, computed once. Unary `geof:`
                // calls on a plain variable get a vectorized path: the
                // result term is computed once per distinct geometry id
                // (via the per-id geometry cache) instead of decoding and
                // re-parsing the WKT for every row.
                enum Plan<'p> {
                    Slot(Option<usize>),
                    GeofUnary(GeofUnaryOp, Option<usize>),
                    Expr(&'p Expression, Vec<(String, usize)>),
                }
                let plans: Vec<Plan> = projection
                    .iter()
                    .map(|p| match p {
                        Projection::Var(v) => Plan::Slot(ev.slots.get(v)),
                        Projection::Expr(e, _) => match classify_geof_unary(e, &ev.slots) {
                            Some((op, slot)) => Plan::GeofUnary(op, slot),
                            None => Plan::Expr(e, ev.expr_slots(e)),
                        },
                        Projection::Aggregate(..) => unreachable!(),
                    })
                    .collect();
                let mut memos: Vec<IdHashMap<u64, Option<Term>>> =
                    plans.iter().map(|_| IdHashMap::default()).collect();
                rows = Vec::with_capacity(batch.len());
                for i in 0..batch.len() {
                    let mut values = Vec::with_capacity(plans.len());
                    for (plan, memo) in plans.iter().zip(&mut memos) {
                        let v = match plan {
                            Plan::Slot(s) => s
                                .and_then(|s| batch.get(i, s))
                                .map(|id| ev.interner.decode(id).clone()),
                            Plan::GeofUnary(op, slot) => {
                                match slot.and_then(|s| batch.get(i, s)) {
                                    // Unbound argument: the generic path's
                                    // eval error, i.e. an unbound value.
                                    None => None,
                                    // Hulls are costly enough to memoize per
                                    // distinct id; the area and envelope
                                    // kernels run off the cached geometry and
                                    // are cheaper than the memo bookkeeping.
                                    Some(id) if *op == GeofUnaryOp::ConvexHull => memo
                                        .entry(id)
                                        .or_insert_with(|| ev.geof_unary(*op, id))
                                        .clone(),
                                    Some(id) => ev.geof_unary(*op, id),
                                }
                            }
                            Plan::Expr(e, vars) => {
                                eval_expr(e, &ev.decode_binding_at(&batch, i, vars)).ok()
                            }
                        };
                        values.push(v);
                    }
                    rows.push(Row { values });
                }
            }
            proj_span.record("rows", rows.len());
            proj_span.record_rate("rows_per_sec", rows.len() as u64);
            drop(proj_span);

            // ORDER BY over the projected rows (pre-slice).
            if !query.order_by.is_empty() {
                sort_rows(&mut rows, &variables, &query.order_by);
            }

            if *distinct {
                let mut seen = HashSet::new();
                rows.retain(|r| {
                    let key: Vec<Option<String>> = r
                        .values
                        .iter()
                        .map(|v| v.as_ref().map(|t| t.to_string()))
                        .collect();
                    seen.insert(key)
                });
            }

            // OFFSET / LIMIT.
            let start = query.offset.min(rows.len());
            rows.drain(..start);
            if let Some(limit) = query.limit {
                rows.truncate(limit);
            }

            // Deduplicate variable list defensively.
            let mut seen = HashSet::new();
            variables.retain(|v| seen.insert(v.clone()));

            Ok(QueryResults::Solutions { variables, rows })
        }
    }
}

/// Latency buckets for `applab_sparql_query_seconds`: 100µs up to 5s.
const QUERY_SECONDS_BUCKETS: &[f64] =
    &[0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

fn result_cardinality(results: &QueryResults) -> u64 {
    match results {
        QueryResults::Boolean(_) => 1,
        QueryResults::Graph(g) => g.len() as u64,
        QueryResults::Solutions { rows, .. } => rows.len() as u64,
    }
}

/// A unary `geof:` projection eligible for the vectorized per-id path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GeofUnaryOp {
    Area,
    Envelope,
    ConvexHull,
}

/// The WKT of an envelope's rectangle — byte-identical to serializing
/// `Polygon::rect(min_x, min_y, max_x, max_y)` through `write_wkt`, but
/// formatting each of the four distinct coordinates once instead of ten
/// times (float formatting dominates `geof:envelope` projections).
fn rect_wkt(e: &Envelope) -> String {
    use std::fmt::Write;
    // All four coordinates formatted once into one scratch buffer, then
    // assembled by slice: two allocations per call total.
    let mut scratch = String::with_capacity(96);
    let _ = write!(scratch, "{}", e.min_x);
    let ex0 = scratch.len();
    let _ = write!(scratch, "{}", e.min_y);
    let ey0 = scratch.len();
    let _ = write!(scratch, "{}", e.max_x);
    let ex1 = scratch.len();
    let _ = write!(scratch, "{}", e.max_y);
    let (x0, y0) = (&scratch[..ex0], &scratch[ex0..ey0]);
    let (x1, y1) = (&scratch[ey0..ex1], &scratch[ex1..]);
    let mut out = String::with_capacity(22 + 2 * scratch.len() + ex0 + (ey0 - ex0));
    out.push_str("POLYGON ((");
    for (i, (x, y)) in [(x0, y0), (x1, y0), (x1, y1), (x0, y1), (x0, y0)]
        .into_iter()
        .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(x);
        out.push(' ');
        out.push_str(y);
    }
    out.push_str("))");
    out
}

/// Recognize `geof:area(?v)` / `geof:envelope(?v)` / `geof:convexHull(?v)`
/// with exactly one plain-variable argument. Anything else (extra
/// arguments, nested expressions) must go through the generic interpreter
/// so its own evaluation errors propagate per row.
fn classify_geof_unary(e: &Expression, slots: &Slots) -> Option<(GeofUnaryOp, Option<usize>)> {
    let Expression::Call(f, args) = e else {
        return None;
    };
    let local = f.as_str().strip_prefix(vocab::geof::NS)?;
    let op = match local {
        "area" => GeofUnaryOp::Area,
        "envelope" => GeofUnaryOp::Envelope,
        "convexHull" => GeofUnaryOp::ConvexHull,
        _ => return None,
    };
    let [Expression::Var(v)] = args.as_slice() else {
        return None;
    };
    Some((op, slots.get(v)))
}

/// The per-query variable table. Real (named) slots come first, in
/// [`GraphPattern::variables`] order; the remaining slots are anonymous
/// provenance slots, one per `LeftJoin` node in the pattern.
struct Slots {
    names: Vec<String>,
    index: HashMap<String, usize>,
    width: usize,
}

impl Slots {
    fn new(pattern: &GraphPattern) -> Slots {
        let names = pattern.variables();
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let width = names.len() + count_left_joins(pattern);
        Slots {
            names,
            index,
            width,
        }
    }

    fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }
}

fn count_left_joins(pattern: &GraphPattern) -> usize {
    match pattern {
        GraphPattern::Bgp(_) | GraphPattern::Values(..) => 0,
        GraphPattern::Filter(_, inner) => count_left_joins(inner),
        GraphPattern::Extend(inner, _, _) => count_left_joins(inner),
        GraphPattern::Join(l, r) | GraphPattern::Union(l, r) => {
            count_left_joins(l) + count_left_joins(r)
        }
        GraphPattern::LeftJoin(l, r) => 1 + count_left_joins(l) + count_left_joins(r),
    }
}

/// Term ↔ id mapping for one query. When the source exposes
/// [`IdAccess`], its native ids (`0..base`) are used directly and only
/// terms the source has never seen get query-local overflow ids
/// (`base..`). Id equality is term equality in either range.
struct Interner<'a> {
    native: Option<&'a dyn IdAccess>,
    base: u64,
    local_ids: HashMap<Term, u64>,
    local_terms: Vec<Term>,
}

impl<'a> Interner<'a> {
    fn new(native: Option<&'a dyn IdAccess>) -> Self {
        let base = native.map_or(0, |n| n.id_count());
        Interner {
            native,
            base,
            local_ids: HashMap::new(),
            local_terms: Vec::new(),
        }
    }

    fn intern(&mut self, term: &Term) -> u64 {
        if let Some(native) = self.native {
            if let Some(id) = native.term_to_id(term) {
                return id;
            }
        }
        if let Some(&id) = self.local_ids.get(term) {
            return id;
        }
        let id = self.base + self.local_terms.len() as u64;
        self.local_ids.insert(term.clone(), id);
        self.local_terms.push(term.clone());
        id
    }

    fn decode(&self, id: u64) -> &Term {
        if id < self.base {
            self.native
                .expect("ids below base only exist with a native dictionary")
                .id_to_term(id)
                .expect("native id decodes")
        } else {
            &self.local_terms[(id - self.base) as usize]
        }
    }
}

/// Per-variable index-pushdown constraints extracted from filters.
#[derive(Debug, Clone, Default)]
struct Constraints {
    spatial: HashMap<String, Envelope>,
    temporal: HashMap<String, (i64, i64)>,
    /// Variable pairs linked by a non-disjoint `geof:sf*(?a, ?b)`
    /// conjunct of an enclosing FILTER. Only collected when the planner
    /// is on: once one side is bound, the union envelope of its
    /// geometries becomes a spatial constraint for the other side
    /// (sideways information passing — on the OBDA path this prunes
    /// OPeNDAP grid-cell fetches before any DAP round trip).
    spatial_links: Vec<(String, String)>,
}

/// A pre-classified FILTER conjunct. Spatial `geof:sf*` conjuncts get a
/// fast path through the per-id geometry cache; everything else decodes the
/// variables it mentions and reuses the generic expression interpreter.
enum Conjunct<'e> {
    /// `geof:sfX(?a, ?b)` — both arguments variables (slots, if known).
    SpatialVV(SpatialRelation, Option<usize>, Option<usize>),
    /// `geof:sfX(?a, CONST)`.
    SpatialVC(SpatialRelation, Option<usize>, Geometry, Envelope),
    /// `geof:sfX(CONST, ?b)` — argument order matters for e.g. sfWithin.
    SpatialCV(SpatialRelation, Geometry, Envelope, Option<usize>),
    /// A spatial call with a constant non-geometry argument: the call
    /// always errors, so the conjunct is false for every row.
    AlwaysFalse,
    Generic(&'e Expression, Vec<(String, usize)>),
}

/// Envelope precheck + exact test. Disjoint envelopes decide every
/// relation: `false` for the intersecting family, `true` for sfDisjoint.
fn spatial_check(
    rel: SpatialRelation,
    a: &Geometry,
    a_env: &Envelope,
    b: &Geometry,
    b_env: &Envelope,
) -> bool {
    let boxes_meet = a_env.intersects(b_env);
    if rel == SpatialRelation::Disjoint {
        if !boxes_meet {
            return true;
        }
    } else if !boxes_meet {
        return false;
    }
    rel.evaluate(a, b)
}

/// One entry of the per-id geometry cache. Native entries borrow the
/// source's pre-parsed geometry table ([`IdAccess::geometry`]) — zero
/// parsing and zero copies; local entries own the parse result of a
/// query-local term (`None` caches a parse failure or non-geometry term).
enum GeomEntry<'a> {
    Native(&'a (Geometry, Envelope)),
    Local(Option<Box<(Geometry, Envelope)>>),
}

impl<'a> GeomEntry<'a> {
    #[inline]
    fn get(&self) -> Option<&(Geometry, Envelope)> {
        match self {
            GeomEntry::Native(g) => Some(g),
            GeomEntry::Local(o) => o.as_deref(),
        }
    }
}

struct Evaluator<'a> {
    source: &'a dyn GraphSource,
    interner: Interner<'a>,
    slots: Slots,
    options: &'a EvalOptions,
    /// Per-id parsed geometry (with envelope).
    geometries: IdHashMap<u64, GeomEntry<'a>>,
    /// Next free provenance slot (see [`Slots`]).
    next_prov: usize,
    /// Set when the budget trips mid-evaluation. Operators then unwind
    /// with empty outputs and [`evaluate_with`] turns this into the error,
    /// so truncated row sets never escape as results.
    interrupt: Option<EvalError>,
}

impl<'a> Evaluator<'a> {
    /// Poll the budget, latching the first error. Returns `true` when the
    /// evaluation should unwind.
    #[inline]
    fn interrupted(&mut self) -> bool {
        if self.interrupt.is_some() {
            return true;
        }
        if let Err(e) = self.options.budget.check() {
            self.interrupt = Some(e);
            return true;
        }
        false
    }

    fn eval_pattern(
        &mut self,
        pattern: &GraphPattern,
        input: Batch,
        constraints: &Constraints,
    ) -> Batch {
        let width = self.slots.width;
        if self.interrupted() {
            return Batch::new(width);
        }
        match pattern {
            GraphPattern::Bgp(patterns) => self.eval_bgp(patterns, input, constraints),
            GraphPattern::Filter(expr, inner) => {
                // Derive envelope and time-range constraints from the filter
                // and push them into the inner pattern.
                let mut merged = constraints.clone();
                for (var, env) in spatial_constraints(expr) {
                    merged
                        .spatial
                        .entry(var)
                        .and_modify(|e| *e = e.intersection(&env))
                        .or_insert(env);
                }
                for (var, (s, e)) in temporal_constraints(expr) {
                    merged
                        .temporal
                        .entry(var)
                        .and_modify(|r| *r = (r.0.max(s), r.1.min(e)))
                        .or_insert((s, e));
                }
                if self.options.planner {
                    for link in spatial_join_links(expr) {
                        if !merged.spatial_links.contains(&link) {
                            merged.spatial_links.push(link);
                        }
                    }
                }
                let inner_batch = self.eval_pattern(inner, input, &merged);
                let total = inner_batch.len();
                let mut fspan = applab_obs::span("filter");
                fspan.record("input_rows", total);
                let compiled = self.compile_conjuncts(expr);
                fspan.record("conjuncts", compiled.len());
                // The conjuncts are evaluated over `batch_size`-row windows:
                // each window builds a selection vector of passing rows and
                // gathers it into the output, so the selection memory
                // high-water is one window regardless of input size.
                let batch_size = self.options.batch_size.max(1);
                fspan.record("batches", total.div_ceil(batch_size).max(1) as u64);
                let mut out = Batch::new(width);
                let mut sel: Vec<u32> = Vec::new();
                let mut all_passed_single_window = false;
                let mut start = 0usize;
                while start < total {
                    let end = start.saturating_add(batch_size).min(total);
                    sel.clear();
                    for i in start..end {
                        if i % CHECK_INTERVAL == 0 && self.interrupted() {
                            return Batch::new(width);
                        }
                        if compiled
                            .iter()
                            .all(|c| self.eval_conjunct(c, &inner_batch, i))
                        {
                            sel.push(i as u32);
                        }
                    }
                    if end == total && start == 0 && sel.len() == total {
                        // Everything passed in a single window: the input
                        // batch is the output, no copy.
                        all_passed_single_window = true;
                        break;
                    }
                    out.append_gather(&inner_batch, &sel);
                    start = end;
                }
                let out = if all_passed_single_window {
                    inner_batch
                } else {
                    out
                };
                fspan.record("rows", out.len());
                fspan.record_rate("rows_per_sec", total as u64);
                applab_obs::querystats::filter(total as u64, out.len() as u64);
                applab_obs::querystats::batches(total.div_ceil(batch_size).max(1) as u64);
                applab_obs::querystats::peak_batch_bytes(out.approx_bytes());
                out
            }
            GraphPattern::Join(left, right) => {
                let lhs = self.eval_pattern(left, input, constraints);
                self.eval_pattern(right, lhs, constraints)
            }
            GraphPattern::LeftJoin(left, right) => {
                // The right side is evaluated ONCE for all left rows; an
                // anonymous provenance slot records which left row each
                // extension came from, so unmatched left rows can be kept.
                let lhs = self.eval_pattern(left, input, constraints);
                if lhs.is_empty() {
                    return lhs;
                }
                let prov = self.next_prov;
                self.next_prov += 1;
                let mut tagged = lhs;
                tagged.fill_iota(prov);
                let rhs = self.eval_pattern(right, tagged.clone(), constraints);
                let mut matched = vec![false; tagged.len()];
                for i in 0..rhs.len() {
                    if let Some(j) = rhs.get(i, prov) {
                        matched[j as usize] = true;
                    }
                }
                let mut out = rhs;
                out.clear_column(prov);
                tagged.clear_column(prov);
                let unmatched: Vec<u32> = (0..tagged.len())
                    .filter(|&i| !matched[i])
                    .map(|i| i as u32)
                    .collect();
                out.append_gather(&tagged, &unmatched);
                out
            }
            GraphPattern::Union(left, right) => {
                let mut out = self.eval_pattern(left, input.clone(), constraints);
                let rhs = self.eval_pattern(right, input, constraints);
                out.append(&rhs);
                out
            }
            GraphPattern::Extend(inner, var, expr) => {
                let inner_batch = self.eval_pattern(inner, input, constraints);
                // BIND targets a fresh variable; with no slot the value
                // would be discarded, so skip evaluating the (pure)
                // expression entirely.
                let Some(slot) = self.slots.get(var) else {
                    return inner_batch;
                };
                let evars = self.expr_slots(expr);
                let mut col = ColumnBuilder::new();
                for i in 0..inner_batch.len() {
                    if i % CHECK_INTERVAL == 0 && self.interrupted() {
                        return Batch::new(width);
                    }
                    let b = self.decode_binding_at(&inner_batch, i, &evars);
                    match eval_expr(expr, &b) {
                        Ok(v) => col.push(Some(self.interner.intern(&v))),
                        // Evaluation error: the variable keeps whatever
                        // binding it already had (usually none).
                        Err(_) => col.push(inner_batch.get(i, slot)),
                    }
                }
                let mut out = inner_batch;
                out.set_col(slot, col.finish());
                out
            }
            GraphPattern::Values(vars, rows) => {
                let var_slots: Vec<Option<usize>> =
                    vars.iter().map(|v| self.slots.get(v)).collect();
                let mut const_rows: Vec<Vec<Option<u64>>> = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut ids = Vec::with_capacity(row.len());
                    for t in row {
                        ids.push(t.as_ref().map(|t| self.interner.intern(t)));
                    }
                    const_rows.push(ids);
                }
                let mut out = Batch::new(width);
                let mut buf: Vec<Option<u64>> = vec![None; width];
                for i in 0..input.len() {
                    for vrow in &const_rows {
                        for (s, v) in buf.iter_mut().enumerate() {
                            *v = input.get(i, s);
                        }
                        let mut compatible = true;
                        for (slot, val) in var_slots.iter().zip(vrow) {
                            if let (Some(s), Some(val)) = (slot, val) {
                                match buf[*s] {
                                    Some(existing) if existing != *val => {
                                        compatible = false;
                                        break;
                                    }
                                    _ => buf[*s] = Some(*val),
                                }
                            }
                        }
                        if compatible {
                            out.push_row(&buf);
                        }
                    }
                }
                out
            }
        }
    }

    // --- FILTER compilation ------------------------------------------------

    fn compile_conjuncts<'e>(&self, expr: &'e Expression) -> Vec<Conjunct<'e>> {
        expr.conjuncts()
            .into_iter()
            .map(|c| self.compile_conjunct(c))
            .collect()
    }

    fn compile_conjunct<'e>(&self, conjunct: &'e Expression) -> Conjunct<'e> {
        enum Arg {
            Slot(Option<usize>),
            Geom(Geometry, Envelope),
            Bad,
            Other,
        }
        if let Expression::Call(f, args) = conjunct {
            if let Some(local) = f.as_str().strip_prefix(vocab::geof::NS) {
                if let Some(rel) = SpatialRelation::from_geof_name(local) {
                    if args.len() == 2 {
                        let classify = |e: &Expression| -> Arg {
                            match e {
                                Expression::Var(v) => Arg::Slot(self.slots.get(v)),
                                Expression::Constant(t) => {
                                    match t.as_literal().and_then(Literal::as_geometry) {
                                        Some(g) => {
                                            let env = g.envelope();
                                            Arg::Geom(g, env)
                                        }
                                        None => Arg::Bad,
                                    }
                                }
                                _ => Arg::Other,
                            }
                        };
                        match (classify(&args[0]), classify(&args[1])) {
                            (Arg::Slot(a), Arg::Slot(b)) => return Conjunct::SpatialVV(rel, a, b),
                            (Arg::Slot(a), Arg::Geom(g, env)) => {
                                return Conjunct::SpatialVC(rel, a, g, env)
                            }
                            (Arg::Geom(g, env), Arg::Slot(b)) => {
                                return Conjunct::SpatialCV(rel, g, env, b)
                            }
                            (Arg::Bad, _) | (_, Arg::Bad) => return Conjunct::AlwaysFalse,
                            _ => {}
                        }
                    }
                }
            }
        }
        Conjunct::Generic(conjunct, self.expr_slots(conjunct))
    }

    /// Evaluate one compiled conjunct against row `i` of a batch.
    fn eval_conjunct(&mut self, conjunct: &Conjunct<'_>, batch: &Batch, i: usize) -> bool {
        match conjunct {
            Conjunct::AlwaysFalse => false,
            Conjunct::Generic(e, vars) => {
                let b = self.decode_binding_at(batch, i, vars);
                eval_filter(e, &b)
            }
            Conjunct::SpatialVC(rel, slot, g, env) => {
                let Some(id) = slot.and_then(|s| batch.get(i, s)) else {
                    return false;
                };
                self.ensure_geometry(id);
                match self.geometries.get(&id).and_then(GeomEntry::get) {
                    Some((ga, ea)) => spatial_check(*rel, ga, ea, g, env),
                    None => false,
                }
            }
            Conjunct::SpatialCV(rel, g, env, slot) => {
                let Some(id) = slot.and_then(|s| batch.get(i, s)) else {
                    return false;
                };
                self.ensure_geometry(id);
                match self.geometries.get(&id).and_then(GeomEntry::get) {
                    Some((gb, eb)) => spatial_check(*rel, g, env, gb, eb),
                    None => false,
                }
            }
            Conjunct::SpatialVV(rel, sa, sb) => {
                let (Some(ia), Some(ib)) = (
                    sa.and_then(|s| batch.get(i, s)),
                    sb.and_then(|s| batch.get(i, s)),
                ) else {
                    return false;
                };
                self.ensure_geometry(ia);
                self.ensure_geometry(ib);
                let Some((ga, ea)) = self.geometries.get(&ia).and_then(GeomEntry::get) else {
                    return false;
                };
                let Some((gb, eb)) = self.geometries.get(&ib).and_then(GeomEntry::get) else {
                    return false;
                };
                spatial_check(*rel, ga, ea, gb, eb)
            }
        }
    }

    fn ensure_geometry(&mut self, id: u64) {
        if self.geometries.contains_key(&id) {
            return;
        }
        // Native ids first consult the source's pre-parsed geometry table;
        // a hit costs no WKT parse and no geometry copy.
        if id < self.interner.base {
            if let Some(native) = self.interner.native {
                if let Some(g) = native.geometry(id) {
                    self.geometries.insert(id, GeomEntry::Native(g));
                    return;
                }
            }
        }
        let parsed = self
            .interner
            .decode(id)
            .as_literal()
            .and_then(Literal::as_geometry)
            .map(|g| {
                let env = g.envelope();
                Box::new((g, env))
            });
        self.geometries.insert(id, GeomEntry::Local(parsed));
    }

    /// Compute one vectorized unary `geof:` projection for a single id
    /// (memoized by the caller per distinct id). `None` mirrors the generic
    /// path's behavior for non-geometry terms: an evaluation error, i.e.
    /// an unbound projected value.
    fn geof_unary(&mut self, op: GeofUnaryOp, id: u64) -> Option<Term> {
        // Native ids read the source's geometry table directly — one lookup,
        // no evaluator-cache traffic (projections visit each id once, so
        // caching here would only add bookkeeping).
        let native = (id < self.interner.base)
            .then(|| self.interner.native.and_then(|n| n.geometry(id)))
            .flatten();
        let (g, env) = match native {
            Some(entry) => entry,
            None => {
                self.ensure_geometry(id);
                self.geometries.get(&id).and_then(GeomEntry::get)?
            }
        };
        Some(match op {
            GeofUnaryOp::Area => geof_area_of(g),
            // The envelope is cached next to the geometry, so the rectangle
            // WKT can be assembled directly from its four coordinates.
            GeofUnaryOp::Envelope => Literal::wkt(rect_wkt(env)).into(),
            GeofUnaryOp::ConvexHull => geof_convex_hull_of(g),
        })
    }

    // --- BGP evaluation ----------------------------------------------------

    fn eval_bgp(
        &mut self,
        patterns: &[TriplePattern],
        input: Batch,
        constraints: &Constraints,
    ) -> Batch {
        if patterns.is_empty() || input.is_empty() {
            return input;
        }
        let width = self.slots.width;
        let mut bgp_span = applab_obs::span("bgp");
        bgp_span.record("patterns", patterns.len());
        bgp_span.record("input_rows", input.len());
        // Sideways envelope passing (planner only): geometry variables the
        // input batch already binds constrain their spatial-join partners,
        // so the source's whole-BGP hook — and through it the OPeNDAP
        // grid-cell fetch — sees the tightened envelope before any round
        // trip happens.
        let sideways = self.sideways_spatial(constraints, &input, None);
        let spatial_for_source = sideways.as_ref().unwrap_or(&constraints.spatial);
        // OBDA fast path: let the source answer the whole BGP at once, then
        // hash-join the answers with the current solutions.
        if let Some(answers) = self.source.evaluate_bgp(patterns, spatial_for_source) {
            bgp_span.record("source_bgp", true);
            bgp_span.record("source_rows", answers.len());
            applab_obs::querystats::scan(answers.len() as u64);
            let mut build = Batch::new(width);
            let mut rowbuf: Vec<Option<u64>> = vec![None; width];
            for b in &answers {
                rowbuf.fill(None);
                for (k, v) in b {
                    if let Some(s) = self.slots.get(k) {
                        rowbuf[s] = Some(self.interner.intern(v));
                    }
                }
                build.push_row(&rowbuf);
            }
            return self.join(input, build);
        }

        // Cost-based path: statistics-ordered lazy scan/join with
        // build-side filters. Falls through to the written-order pipeline
        // when the source has no seal-time stats.
        if self.options.planner {
            let source = self.source;
            if let Some(stats) = source.stats() {
                return self.eval_bgp_planned(stats, patterns, input, constraints, &mut bgp_span);
            }
        }

        // When the input is a single row, its bindings substitute into the
        // scans directly (the common top-of-query and Join-chain case).
        let subst: Option<Vec<Option<u64>>> = (input.len() == 1).then(|| input.row(0));

        // Scan every pattern exactly once into a match batch.
        let mut columns: Vec<(Batch, Vec<usize>)> = Vec::with_capacity(patterns.len());
        for (i, p) in patterns.iter().enumerate() {
            if self.interrupted() {
                return Batch::new(width);
            }
            let mut scan_span = applab_obs::span("scan");
            scan_span.record("pattern", i);
            let col = self.scan_column(p, subst.as_deref(), constraints);
            scan_span.record("rows", col.0.len());
            scan_span.record_rate("rows_per_sec", col.0.len() as u64);
            applab_obs::querystats::scan(col.0.len() as u64);
            drop(scan_span);
            if col.0.is_empty() {
                return Batch::new(width);
            }
            columns.push(col);
        }

        // Greedy join order: smallest batch among those sharing a bound
        // slot (to keep joins selective), else smallest overall. Actual
        // batch sizes replace the old static selectivity heuristic.
        let mut bound = input.bound_slots();
        let mut result = input;
        while !columns.is_empty() {
            if self.interrupted() {
                return Batch::new(width);
            }
            let pick = columns
                .iter()
                .enumerate()
                .filter(|(_, (_, used))| used.iter().any(|&s| bound[s]))
                .min_by_key(|(_, (rows, _))| rows.len())
                .map(|(i, _)| i)
                .or_else(|| {
                    columns
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (rows, _))| rows.len())
                        .map(|(i, _)| i)
                })
                .expect("columns is non-empty");
            let (col_batch, used) = columns.swap_remove(pick);
            for s in used {
                bound[s] = true;
            }
            result = self.join(result, col_batch);
            if result.is_empty() {
                return result;
            }
        }
        result
    }

    /// Cost-based BGP evaluation ([`EvalOptions::planner`] on, source has
    /// seal-time [`plan::Stats`]): patterns are scanned lazily in the
    /// order [`plan::order_patterns`] chooses and joined immediately, so
    /// every scan sees the constraints (single-row substitution, sideways
    /// envelopes, Bloom/min-max filters) the already-joined prefix
    /// established. Produces the same solution multiset as the
    /// written-order pipeline, possibly in a different row order.
    fn eval_bgp_planned(
        &mut self,
        stats: &plan::Stats,
        patterns: &[TriplePattern],
        input: Batch,
        constraints: &Constraints,
        bgp_span: &mut applab_obs::Span,
    ) -> Batch {
        let width = self.slots.width;
        // Variables the input batch binds (any-row semantics, matching the
        // greedy loop's `bound_slots`).
        let input_bound = input.bound_slots();
        let mut bound_vars: HashSet<String> = self
            .slots
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| input_bound[*i])
            .map(|(_, n)| n.clone())
            .collect();
        let steps = plan::order_patterns(
            stats,
            patterns,
            &bound_vars,
            &constraints.spatial,
            &constraints.temporal,
        );
        bgp_span.record("planned", true);
        if bgp_span.enabled() {
            bgp_span.record(
                "plan_fingerprint",
                format!("{:016x}", plan::fingerprint(&steps)),
            );
        }
        let mut result = input;
        let mut result_est = result.len().max(1) as f64;
        for step in &steps {
            if self.interrupted() {
                return Batch::new(width);
            }
            let pattern = &patterns[step.pattern];
            // Per-step constraints: sideways envelopes derived from the
            // current result, then the access-path choice — constraints
            // the sketch proves useless are stripped so the scan takes
            // the plain index instead. Copy-on-write: most steps change
            // nothing and then the shared `constraints` is used as is.
            let mut effective = std::borrow::Cow::Borrowed(constraints);
            // Only this step's own variables can consume a sideways
            // envelope, so restrict the (whole-result) union-envelope
            // computation to them instead of walking every link each
            // step.
            let step_vars = pattern.variables();
            if let Some(augmented) =
                self.sideways_spatial(constraints, &result, Some(step_vars.as_slice()))
            {
                effective.to_mut().spatial = augmented;
            }
            let access = plan::access_path(stats, pattern, &effective.spatial, &effective.temporal);
            if let Some(v) = pattern.object.as_var() {
                let (strip_spatial, strip_temporal) = match access {
                    plan::AccessPath::Spatial => (false, effective.temporal.contains_key(v)),
                    plan::AccessPath::Temporal => (effective.spatial.contains_key(v), false),
                    plan::AccessPath::Scan => (
                        effective.spatial.contains_key(v),
                        effective.temporal.contains_key(v),
                    ),
                };
                if strip_spatial {
                    effective.to_mut().spatial.remove(v);
                }
                if strip_temporal {
                    effective.to_mut().temporal.remove(v);
                }
            }
            let subst: Option<Vec<Option<u64>>> = (result.len() == 1).then(|| result.row(0));
            let mut scan_span = applab_obs::span("scan");
            scan_span.record("pattern", step.pattern);
            scan_span.record("est_rows", step.est_rows.round() as u64);
            scan_span.record("access", access.tag());
            let (mut col_batch, used) =
                self.scan_column(pattern, subst.as_deref(), effective.as_ref());
            scan_span.record("rows", col_batch.len());
            scan_span.record_rate("rows_per_sec", col_batch.len() as u64);
            applab_obs::querystats::scan(col_batch.len() as u64);

            // Build-side Bloom/min-max filters: drop scanned rows that
            // cannot equal any current-result row on a shared slot. Only
            // sound per slot when EVERY result row binds it — an unbound
            // row joins with anything on that variable. Only worth the
            // build + per-row probes when the result side is much
            // smaller than the scan; otherwise the hash join (which
            // already builds on the smaller side) discards the same rows
            // for the same work.
            let seed = result.len() == 1 && result.row_all_unbound(0);
            if !seed && !col_batch.is_empty() && result.len() * 8 <= col_batch.len() {
                let result_bound = result.bound_slots();
                let mut filters: Vec<(usize, plan::IdFilter)> = Vec::new();
                for &slot in used.iter().filter(|&&s| result_bound[s]) {
                    let mut ids = Vec::with_capacity(result.len());
                    let mut all_bound = true;
                    for i in 0..result.len() {
                        match result.get(i, slot) {
                            Some(id) => ids.push(id),
                            None => {
                                all_bound = false;
                                break;
                            }
                        }
                    }
                    if all_bound {
                        if let Some(f) = plan::IdFilter::build(&ids) {
                            filters.push((slot, f));
                        }
                    }
                }
                if !filters.is_empty() {
                    let before = col_batch.len();
                    let mut sel: Vec<u32> = Vec::with_capacity(before);
                    'rows: for i in 0..before {
                        if i % CHECK_INTERVAL == 0 && self.interrupted() {
                            return Batch::new(width);
                        }
                        for (slot, f) in &filters {
                            if let Some(id) = col_batch.get(i, *slot) {
                                if !f.contains(id) {
                                    continue 'rows;
                                }
                            }
                        }
                        sel.push(i as u32);
                    }
                    if sel.len() < before {
                        col_batch = col_batch.gather(&sel);
                        let pruned = (before - sel.len()) as u64;
                        scan_span.record("pruned_rows", pruned);
                        applab_obs::querystats::pruned(pruned);
                    }
                }
            }
            drop(scan_span);
            if col_batch.is_empty() {
                return Batch::new(width);
            }

            // Join-size estimate threads through the chain so EXPLAIN can
            // show estimate-vs-actual per join operator.
            let d_key = pattern
                .variables()
                .iter()
                .filter(|v| bound_vars.contains(**v))
                .filter_map(|v| stats.distinct_at(pattern, v))
                .fold(None, |acc: Option<f64>, d| {
                    Some(acc.map_or(d, |a| a.min(d)))
                })
                .unwrap_or(1.0);
            let est_out = plan::estimate_join(result_est, step.est_rows, d_key);
            // Build/probe choice: hash the smaller side. The seed row
            // keeps the canonical orientation (its join short-circuit
            // returns the scanned batch untouched).
            result = if seed || col_batch.len() <= result.len() {
                self.join_est(result, col_batch, Some(est_out))
            } else {
                self.join_est(col_batch, result, Some(est_out))
            };
            result_est = est_out.max(1.0);
            for v in pattern.variables() {
                bound_vars.insert(v.to_string());
            }
            if result.is_empty() {
                return result;
            }
        }
        result
    }

    /// The augmented spatial-constraint map for a batch: for every
    /// spatial-join link ([`Constraints::spatial_links`]) with one side
    /// bound by `batch`, the union envelope of that side's geometries
    /// constrains the other side. `None` when nothing was added (planner
    /// off, no links, nothing usable bound). Sound because a row whose
    /// linked variable is unbound or not a geometry cannot satisfy the
    /// originating `geof:` conjunct anyway, and the filter is always
    /// re-applied downstream.
    fn sideways_spatial(
        &mut self,
        constraints: &Constraints,
        batch: &Batch,
        receivers: Option<&[&str]>,
    ) -> Option<HashMap<String, Envelope>> {
        if !self.options.planner || constraints.spatial_links.is_empty() || batch.is_empty() {
            return None;
        }
        // With a spatial sketch on hand, a union envelope wider than
        // [`plan::INDEX_SELECTIVITY_CUTOFF`] is dropped: unlike a constant
        // filter envelope it saves no exact geometry tests, and an R-tree
        // walk it cannot meaningfully narrow costs more than the plain
        // column scan. The check also runs mid-walk so a hopeless union
        // stops early.
        let sketch = self.source.stats().map(|s| &s.spatial);
        let too_wide = |env: &Envelope| {
            sketch.is_some_and(|sk| {
                sk.bounds.is_some() && sk.selectivity(env) >= plan::INDEX_SELECTIVITY_CUTOFF
            })
        };
        let mut out: Option<HashMap<String, Envelope>> = None;
        for (a, b) in &constraints.spatial_links {
            for (src, dst) in [(a, b), (b, a)] {
                // When the caller names the variables its next scan can
                // bind, links pointing anywhere else are skipped before
                // the per-row union-envelope walk.
                if receivers.is_some_and(|vars| !vars.contains(&dst.as_str())) {
                    continue;
                }
                let Some(slot) = self.slots.get(src) else {
                    continue;
                };
                // Every row must bind the source side: an unbound row can
                // still acquire this variable from a scan inside the BGP,
                // with a geometry outside the union envelope. A row bound
                // to a non-geometry is safe to exclude — the originating
                // `geof:` conjunct drops it no matter what the other side
                // holds.
                let mut env = Envelope::EMPTY;
                let mut any = false;
                let mut all_bound = true;
                let mut useless = false;
                for i in 0..batch.len() {
                    let Some(id) = batch.get(i, slot) else {
                        all_bound = false;
                        break;
                    };
                    self.ensure_geometry(id);
                    if let Some((_, e)) = self.geometries.get(&id).and_then(GeomEntry::get) {
                        env.expand(e);
                        any = true;
                    }
                    if i & 63 == 63 && too_wide(&env) {
                        useless = true;
                        break;
                    }
                }
                if !all_bound || !any || useless || too_wide(&env) {
                    continue; // side not (fully) bound, or envelope too wide
                }
                // Do NOT intersect with an existing constraint: "g meets
                // box A" and "g meets box B" does not imply "g meets
                // A∩B" for non-point geometries, so intersecting two
                // individually-necessary envelopes can drop valid rows.
                // Keep whichever constraint got there first.
                let target = out.get_or_insert_with(|| constraints.spatial.clone());
                target.entry(dst.clone()).or_insert(env);
            }
        }
        out
    }

    /// Scan one triple pattern into a batch, plus the variable slots the
    /// batch binds. An empty batch means the pattern provably matches
    /// nothing.
    fn scan_column(
        &mut self,
        pattern: &TriplePattern,
        subst: Option<&[Option<u64>]>,
        constraints: &Constraints,
    ) -> (Batch, Vec<usize>) {
        if let Some(native) = self.interner.native {
            return self.scan_column_native(native, pattern, subst, constraints);
        }
        self.scan_column_decoded(pattern, subst, constraints)
    }

    /// Id-level scan against an [`IdAccess`] source: no term decoding at
    /// all, and the source writes its match columns directly into the
    /// output batch ([`IdAccess::scan_ids_columns`]) — no per-row tuple
    /// allocation on the hot path.
    fn scan_column_native(
        &mut self,
        native: &dyn IdAccess,
        pattern: &TriplePattern,
        subst: Option<&[Option<u64>]>,
        constraints: &Constraints,
    ) -> (Batch, Vec<usize>) {
        let width = self.slots.width;
        let base = self.interner.base;
        // Each position resolves to a constant id, a variable slot, or a
        // proof that the pattern cannot match (term/local id absent from
        // the store dictionary).
        let resolve = |tp: &TermPattern| -> Result<(Option<u64>, Option<usize>), ()> {
            match tp {
                TermPattern::Term(t) => match native.term_to_id(t) {
                    Some(id) => Ok((Some(id), None)),
                    None => Err(()),
                },
                TermPattern::Var(v) => {
                    let slot = self.slots.get(v).expect("pattern var has a slot");
                    if let Some(row) = subst {
                        if let Some(id) = row[slot] {
                            if id < base {
                                return Ok((Some(id), None));
                            }
                            return Err(()); // query-local term: not in the store
                        }
                    }
                    Ok((None, Some(slot)))
                }
            }
        };
        let Ok((s_c, s_slot)) = resolve(&pattern.subject) else {
            return (Batch::new(width), Vec::new());
        };
        let Ok((p_c, p_slot)) = resolve(&pattern.predicate) else {
            return (Batch::new(width), Vec::new());
        };
        let Ok((o_c, o_slot)) = resolve(&pattern.object) else {
            return (Batch::new(width), Vec::new());
        };

        if self.interrupted() {
            return (Batch::new(width), Vec::new());
        }

        // Index pushdown: the object is an unbound variable carrying an
        // envelope or time-range constraint. Pushdown hits come back as
        // triple lists (they are small by construction); the unconstrained
        // path scans straight into columns.
        let mut cols = IdColumns::default();
        let pushdown_hit = match (o_c, pattern.object.as_var()) {
            (None, Some(var)) => {
                let spatial_hit = constraints
                    .spatial
                    .get(var)
                    .and_then(|env| native.scan_ids_spatial(s_c, p_c, env));
                let temporal_hit = if spatial_hit.is_none() {
                    constraints
                        .temporal
                        .get(var)
                        .and_then(|&(lo, hi)| native.scan_ids_temporal(s_c, p_c, lo, hi))
                } else {
                    None
                };
                spatial_hit.or(temporal_hit)
            }
            _ => None,
        };
        match pushdown_hit {
            Some(triples) => {
                cols.reserve(triples.len());
                for (ts, tp, to) in triples {
                    cols.push(ts, tp, to);
                }
            }
            None => native.scan_ids_columns(s_c, p_c, o_c, &mut cols),
        }
        if self.interrupted() {
            return (Batch::new(width), Vec::new());
        }

        let n = cols.s.len();
        let mut used: Vec<usize> = [s_slot, p_slot, o_slot].into_iter().flatten().collect();
        used.sort_unstable();
        used.dedup();
        let distinct_slots = used.len();
        let slot_count = [s_slot, p_slot, o_slot].iter().flatten().count();

        let mut batch = Batch::with_len(width, n);
        if slot_count == distinct_slots {
            // No repeated variable: each match column moves into the batch
            // wholesale.
            if let Some(s) = s_slot {
                batch.set_column(s, cols.s);
            }
            if let Some(s) = p_slot {
                batch.set_column(s, cols.p);
            }
            if let Some(s) = o_slot {
                batch.set_column(s, cols.o);
            }
        } else {
            // A variable repeats within the pattern (`?x :p ?x`): keep only
            // the rows where the repeated positions agree.
            let same = |a: Option<usize>, b: Option<usize>, x: u64, y: u64| match a.zip(b) {
                Some((a, b)) => a != b || x == y,
                None => true,
            };
            let mut sel: Vec<u32> = Vec::with_capacity(n);
            for i in 0..n {
                if same(s_slot, p_slot, cols.s[i], cols.p[i])
                    && same(s_slot, o_slot, cols.s[i], cols.o[i])
                    && same(p_slot, o_slot, cols.p[i], cols.o[i])
                {
                    sel.push(i as u32);
                }
            }
            if let Some(s) = s_slot {
                batch.set_column(s, cols.s);
            }
            if let Some(s) = p_slot {
                batch.set_column(s, cols.p);
            }
            if let Some(s) = o_slot {
                batch.set_column(s, cols.o);
            }
            batch = batch.gather(&sel);
        }
        (batch, used)
    }

    /// Decoded-triple scan for sources without [`IdAccess`]; results are
    /// interned into the query-local dictionary.
    fn scan_column_decoded(
        &mut self,
        pattern: &TriplePattern,
        subst: Option<&[Option<u64>]>,
        constraints: &Constraints,
    ) -> (Batch, Vec<usize>) {
        let width = self.slots.width;
        let resolve = |tp: &TermPattern| -> (Option<Term>, Option<usize>) {
            match tp {
                TermPattern::Term(t) => (Some(t.clone()), None),
                TermPattern::Var(v) => {
                    let slot = self.slots.get(v).expect("pattern var has a slot");
                    if let Some(row) = subst {
                        if let Some(id) = row[slot] {
                            return (Some(self.interner.decode(id).clone()), Some(slot));
                        }
                    }
                    (None, Some(slot))
                }
            }
        };
        let (s_t, s_slot) = resolve(&pattern.subject);
        let (p_t, p_slot) = resolve(&pattern.predicate);
        let (o_t, o_slot) = resolve(&pattern.object);

        // A literal in subject position can never match.
        let s_res: Option<Resource> = match &s_t {
            Some(Term::Literal(_)) => return (Batch::new(width), Vec::new()),
            Some(t) => t.as_resource(),
            None => None,
        };
        let p_named: Option<NamedNode> = match &p_t {
            Some(Term::Named(n)) => Some(n.clone()),
            Some(_) => return (Batch::new(width), Vec::new()),
            None => None,
        };

        let triples = match (&o_t, pattern.object.as_var()) {
            (None, Some(var)) => {
                let spatial_hit = constraints.spatial.get(var).and_then(|env| {
                    self.source
                        .triples_matching_spatial(s_res.as_ref(), p_named.as_ref(), env)
                });
                let temporal_hit = if spatial_hit.is_none() {
                    constraints.temporal.get(var).and_then(|&(lo, hi)| {
                        self.source.triples_matching_temporal(
                            s_res.as_ref(),
                            p_named.as_ref(),
                            lo,
                            hi,
                        )
                    })
                } else {
                    None
                };
                spatial_hit.or(temporal_hit).unwrap_or_else(|| {
                    self.source
                        .triples_matching(s_res.as_ref(), p_named.as_ref(), None)
                })
            }
            _ => self
                .source
                .triples_matching(s_res.as_ref(), p_named.as_ref(), o_t.as_ref()),
        };

        let mut batch = Batch::new(width);
        let mut rowbuf: Vec<Option<u64>> = vec![None; width];
        'next: for (n, t) in triples.into_iter().enumerate() {
            if n % CHECK_INTERVAL == 0 && self.interrupted() {
                return (Batch::new(width), Vec::new());
            }
            rowbuf.fill(None);
            for (slot, term) in [
                (s_slot, Term::from(t.subject.clone())),
                (p_slot, Term::Named(t.predicate.clone())),
                (o_slot, t.object.clone()),
            ] {
                if let Some(slot) = slot {
                    let id = self.interner.intern(&term);
                    match rowbuf[slot] {
                        Some(existing) if existing != id => continue 'next,
                        _ => rowbuf[slot] = Some(id),
                    }
                }
            }
            batch.push_row(&rowbuf);
        }
        let mut used: Vec<usize> = [s_slot, p_slot, o_slot].into_iter().flatten().collect();
        used.sort_unstable();
        used.dedup();
        (batch, used)
    }

    // --- hash join ---------------------------------------------------------

    /// Hash-join two batches on their shared bound slots.
    ///
    /// Rows are grouped by the bitmask of which shared slots they actually
    /// bind (SPARQL compatibility: a row that leaves a shared variable
    /// unbound joins with everything on that variable), and each group pair
    /// is joined on the slots bound in both. Probing produces one global
    /// `(probe row, build row)` pair list in probe order; the output batch
    /// is then materialized with a single column-at-a-time
    /// [`merge_gather`] (probe values win where bound, build values fill
    /// the rest) instead of cloning a row per match. Large probe groups are
    /// chunked across scoped threads; chunk pair lists are concatenated in
    /// order so the result is independent of the thread count.
    fn join(&mut self, probe: Batch, build: Batch) -> Batch {
        self.join_est(probe, build, None)
    }

    /// [`Self::join`] with an optional planner cardinality estimate,
    /// recorded on the join span so EXPLAIN shows estimate-vs-actual
    /// rows per operator.
    fn join_est(&mut self, probe: Batch, build: Batch, est_rows: Option<f64>) -> Batch {
        let width = self.slots.width;
        if probe.is_empty() || build.is_empty() {
            return Batch::new(width);
        }
        // Joining the pristine all-unbound seed row (the BGP entry state)
        // against a scan batch yields the batch itself.
        if probe.len() == 1 && probe.row_all_unbound(0) {
            return build;
        }
        applab_obs::counter!("applab_sparql_joins_total").inc();
        applab_obs::querystats::join(build.len() as u64, probe.len() as u64);
        let mut join_span = applab_obs::span("join");
        join_span.record("probe", probe.len());
        join_span.record("build", build.len());
        if let Some(est) = est_rows {
            join_span.record("est_rows", est.round() as u64);
        }
        let bound_probe = probe.bound_slots();
        let bound_build = build.bound_slots();
        let shared: Vec<usize> = (0..width)
            .filter(|&i| bound_probe[i] && bound_build[i])
            .collect();
        if shared.len() > 64 {
            return nested_join(&probe, &build);
        }
        let mask_of = |b: &Batch, i: usize| -> u64 {
            let mut m = 0u64;
            for (bit, &slot) in shared.iter().enumerate() {
                if b.col(slot).is_valid(i) {
                    m |= 1 << bit;
                }
            }
            m
        };
        // Group row indices by mask, preserving first-occurrence order. Scan
        // batches bind the same slots in every row, so the single-mask case
        // is the common one and skips the map entirely.
        let group = |b: &Batch| -> Vec<(u64, Vec<u32>)> {
            let first = mask_of(b, 0);
            if (1..b.len()).all(|i| mask_of(b, i) == first) {
                return vec![(first, (0..b.len() as u32).collect())];
            }
            let mut order: Vec<(u64, Vec<u32>)> = Vec::new();
            let mut index: IdHashMap<u64, usize> = IdHashMap::default();
            for i in 0..b.len() {
                let m = mask_of(b, i);
                let e = *index.entry(m).or_insert_with(|| {
                    order.push((m, Vec::new()));
                    order.len() - 1
                });
                order[e].1.push(i as u32);
            }
            order
        };
        let probe_groups = group(&probe);
        let build_groups = group(&build);

        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (pmask, prows) in &probe_groups {
            for (bmask, brows) in &build_groups {
                let common = pmask & bmask;
                let key_slots: Vec<usize> = shared
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| common >> bit & 1 == 1)
                    .map(|(_, &s)| s)
                    .collect();
                // With no common key this degenerates to a cross product of
                // the two groups (single empty key). Single-slot keys (the
                // overwhelmingly common join shape) are kept as bare `u64`s
                // to avoid a key allocation per row. Key slots are valid in
                // every group member by construction of the masks, so the
                // unchecked column loads are safe.
                // Single-slot build tables chain same-key rows through one
                // flat `next` array (`head`/`tail` per key, positions into
                // `brows`) instead of growing a `Vec<u32>` per distinct key
                // — with mostly-unique keys that was an allocation per
                // build row. Walking a chain front-to-back yields matches
                // in exactly the order the per-key vectors held them.
                const CHAIN_END: u32 = u32::MAX;
                enum Table {
                    One(usize, IdHashMap<u64, (u32, u32)>, Vec<u32>),
                    Many(IdHashMap<Vec<u64>, Vec<u32>>),
                }
                let table = if let [slot] = key_slots[..] {
                    let bcol = build.col(slot);
                    let mut heads: IdHashMap<u64, (u32, u32)> = IdHashMap::default();
                    heads.reserve(brows.len());
                    let mut next: Vec<u32> = vec![CHAIN_END; brows.len()];
                    for (j, &bi) in brows.iter().enumerate() {
                        let j = j as u32;
                        match heads.entry(bcol.id_unchecked(bi as usize)) {
                            Entry::Occupied(mut e) => {
                                let (_, tail) = e.get_mut();
                                next[*tail as usize] = j;
                                *tail = j;
                            }
                            Entry::Vacant(e) => {
                                e.insert((j, j));
                            }
                        }
                    }
                    Table::One(slot, heads, next)
                } else {
                    let mut t: IdHashMap<Vec<u64>, Vec<u32>> = IdHashMap::default();
                    for &bi in brows {
                        let key: Vec<u64> = key_slots
                            .iter()
                            .map(|&s| build.col(s).id_unchecked(bi as usize))
                            .collect();
                        t.entry(key).or_default().push(bi);
                    }
                    Table::Many(t)
                };
                let probe_one = |pi: u32, out: &mut Vec<(u32, u32)>| match &table {
                    Table::One(slot, heads, next) => {
                        if let Some(&(head, _)) =
                            heads.get(&probe.col(*slot).id_unchecked(pi as usize))
                        {
                            let mut j = head;
                            loop {
                                out.push((pi, brows[j as usize]));
                                j = next[j as usize];
                                if j == CHAIN_END {
                                    break;
                                }
                            }
                        }
                    }
                    Table::Many(t) => {
                        let key: Vec<u64> = key_slots
                            .iter()
                            .map(|&s| probe.col(s).id_unchecked(pi as usize))
                            .collect();
                        if let Some(matches) = t.get(&key) {
                            for &bi in matches {
                                out.push((pi, bi));
                            }
                        }
                    }
                };
                if prows.len() >= self.options.parallel_probe_threshold {
                    let workers = self
                        .options
                        .parallel_workers
                        .unwrap_or_else(|| {
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(1)
                        })
                        .min(prows.len());
                    if workers > 1 {
                        applab_obs::counter!("applab_sparql_parallel_probes_total").inc();
                        let chunk = prows.len().div_ceil(workers);
                        let pr = &probe_one;
                        let parent = join_span.context();
                        let budget = &self.options.budget;
                        // Worker threads don't inherit this thread's
                        // accounting scope; hand them the live cell the
                        // same way `parent` hands them the span context.
                        let stats_cell = applab_obs::querystats::current();
                        let stats_cell = &stats_cell;
                        let results: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
                            let handles: Vec<_> = prows
                                .chunks(chunk)
                                .map(|c| {
                                    scope.spawn(move || {
                                        let _stats =
                                            stats_cell.clone().map(applab_obs::querystats::attach);
                                        applab_obs::querystats::probe_chunk();
                                        let mut chunk_span =
                                            applab_obs::child_of(Some(parent), "probe.chunk");
                                        chunk_span.record("rows", c.len());
                                        let mut local = Vec::new();
                                        for (n, &pi) in c.iter().enumerate() {
                                            // A tripped budget truncates the
                                            // chunk; the post-scope poll below
                                            // fails the whole query, so the
                                            // truncation is never observable.
                                            if n % CHECK_INTERVAL == 0 && budget.check().is_err() {
                                                break;
                                            }
                                            pr(pi, &mut local);
                                        }
                                        chunk_span.record("out", local.len());
                                        local
                                    })
                                })
                                .collect();
                            handles
                                .into_iter()
                                .map(|h| h.join().expect("probe worker panicked"))
                                .collect()
                        });
                        if self.interrupted() {
                            return Batch::new(width);
                        }
                        for mut r in results {
                            pairs.append(&mut r);
                        }
                        continue;
                    }
                }
                applab_obs::querystats::probe_chunk();
                for (n, &pi) in prows.iter().enumerate() {
                    if n % CHECK_INTERVAL == 0 && self.interrupted() {
                        return Batch::new(width);
                    }
                    probe_one(pi, &mut pairs);
                }
            }
        }
        let out = merge_gather(&probe, &build, &pairs);
        join_span.record("out", out.len());
        join_span.record_rate("rows_per_sec", out.len() as u64);
        out
    }

    // --- decoding ----------------------------------------------------------

    /// The (variable, slot) pairs an expression reads, deduplicated.
    fn expr_slots(&self, expr: &Expression) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = Vec::new();
        for v in expr.variables() {
            if let Some(s) = self.slots.get(v) {
                if !out.iter().any(|(n, _)| n == v) {
                    out.push((v.to_string(), s));
                }
            }
        }
        out
    }

    /// Decode the listed slots of one batch row into a term binding.
    fn decode_binding_at(&self, batch: &Batch, i: usize, vars: &[(String, usize)]) -> Binding {
        vars.iter()
            .filter_map(|(n, s)| {
                batch
                    .get(i, *s)
                    .map(|id| (n.clone(), self.interner.decode(id).clone()))
            })
            .collect()
    }

    fn aggregate_batch(
        &self,
        batch: &Batch,
        projection: &[Projection],
        group_by: &[String],
    ) -> Result<(Vec<String>, Vec<Row>), EvalError> {
        let group_slots: Vec<Option<usize>> = group_by.iter().map(|v| self.slots.get(v)).collect();
        // Group row indices by the group-by key — id comparisons only.
        let mut groups: Vec<(Vec<Option<u64>>, Vec<usize>)> = Vec::new();
        let mut index: IdHashMap<Vec<Option<u64>>, usize> = IdHashMap::default();
        let mut key: Vec<Option<u64>> = Vec::with_capacity(group_slots.len());
        for ri in 0..batch.len() {
            // The key buffer is reused across rows; it is only cloned when a
            // new group is first seen.
            key.clear();
            key.extend(group_slots.iter().map(|s| s.and_then(|s| batch.get(ri, s))));
            let gi = match index.get(&key) {
                Some(&gi) => gi,
                None => {
                    groups.push((key.clone(), Vec::new()));
                    index.insert(key.clone(), groups.len() - 1);
                    groups.len() - 1
                }
            };
            groups[gi].1.push(ri);
        }
        // With no GROUP BY but aggregates present, there is one global group
        // (even if empty).
        if group_by.is_empty() && groups.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let variables: Vec<String> = projection.iter().map(|p| p.name().to_string()).collect();
        let mut out = Vec::with_capacity(groups.len());
        for (key_ids, members) in &groups {
            let mut values = Vec::with_capacity(projection.len());
            for p in projection {
                let v = match p {
                    Projection::Var(v) => {
                        // Must be a grouped variable.
                        match group_by.iter().position(|g| g == v) {
                            Some(i) => key_ids
                                .get(i)
                                .copied()
                                .flatten()
                                .map(|id| self.interner.decode(id).clone()),
                            None => {
                                return Err(EvalError::Other(format!(
                                    "variable ?{v} is projected but neither grouped nor aggregated"
                                )))
                            }
                        }
                    }
                    Projection::Expr(e, _) => {
                        // Evaluated against the group key binding.
                        let b: Binding = group_by
                            .iter()
                            .zip(key_ids)
                            .filter_map(|(v, id)| {
                                id.map(|id| (v.clone(), self.interner.decode(id).clone()))
                            })
                            .collect();
                        eval_expr(e, &b).ok()
                    }
                    Projection::Aggregate(agg, expr, _) => match expr {
                        None => Some(Literal::integer(members.len() as i64).into()),
                        // COUNT(?v) needs only how many members bind the
                        // slot — no decoding.
                        Some(Expression::Var(v)) if *agg == Aggregate::Count => {
                            let n = match self.slots.get(v) {
                                Some(s) => members
                                    .iter()
                                    .filter(|&&ri| batch.col(s).is_valid(ri))
                                    .count(),
                                None => 0,
                            };
                            Some(Literal::integer(n as i64).into())
                        }
                        Some(e) => {
                            // Plain-variable aggregates read the column
                            // directly; anything else decodes per member.
                            let vals: Vec<Term> = if let Expression::Var(v) = e {
                                let slot = self.slots.get(v);
                                members
                                    .iter()
                                    .filter_map(|&ri| {
                                        slot.and_then(|s| batch.get(ri, s))
                                            .map(|id| self.interner.decode(id).clone())
                                    })
                                    .collect()
                            } else {
                                let evars = self.expr_slots(e);
                                members
                                    .iter()
                                    .filter_map(|&ri| {
                                        eval_expr(e, &self.decode_binding_at(batch, ri, &evars))
                                            .ok()
                                    })
                                    .collect()
                            };
                            aggregate_values(*agg, vals, members.len())
                        }
                    },
                };
                values.push(v);
            }
            out.push(Row { values });
        }
        Ok((variables, out))
    }
}

/// Plain nested-loop fallback for joins over more than 64 shared slots
/// (out of `u64` mask range; practically unreachable).
fn nested_join(probe: &Batch, build: &Batch) -> Batch {
    let mut out = Batch::new(probe.width());
    for p in 0..probe.len() {
        'build: for b in 0..build.len() {
            let mut row = probe.row(p);
            for (slot, v) in row.iter_mut().zip(build.row(b)) {
                if let Some(v) = v {
                    match slot {
                        Some(existing) if *existing != v => continue 'build,
                        _ => *slot = Some(v),
                    }
                }
            }
            out.push_row(&row);
        }
    }
    out
}

/// Reduce the evaluated member values of one group to the aggregate's
/// result term. `member_count` is the full group size (for `COUNT(*)`,
/// which ignores evaluation errors in `values`).
pub(crate) fn aggregate_values(
    agg: Aggregate,
    values: Vec<Term>,
    member_count: usize,
) -> Option<Term> {
    match agg {
        Aggregate::CountAll => Some(Literal::integer(member_count as i64).into()),
        Aggregate::Count => Some(Literal::integer(values.len() as i64).into()),
        Aggregate::Sample => values.into_iter().next(),
        Aggregate::Sum | Aggregate::Avg => {
            let mut nums: Vec<f64> = values
                .iter()
                .filter_map(|t| t.as_literal().and_then(Literal::as_f64))
                .collect();
            if nums.is_empty() {
                return if agg == Aggregate::Sum {
                    Some(Literal::double(0.0).into())
                } else {
                    None
                };
            }
            // Engines deliver group members in different (all legal) orders
            // and f64 addition is not associative, so reduce in a canonical
            // order: the sum depends only on the value multiset, never on
            // the evaluation strategy that produced it.
            nums.sort_by(f64::total_cmp);
            let sum: f64 = nums.iter().sum();
            let out = if agg == Aggregate::Sum {
                sum
            } else {
                sum / nums.len() as f64
            };
            Some(Literal::double(out).into())
        }
        Aggregate::Min | Aggregate::Max => {
            let mut best: Option<Term> = None;
            for v in values {
                best = match best {
                    None => Some(v),
                    Some(b) => {
                        // Distinct terms can compare Equal (e.g. "1"^^xsd:int
                        // vs "1.0"^^xsd:double); break the tie on the printed
                        // form so the winner is order-independent across
                        // engines.
                        let ord = compare_terms(&v, &b)
                            .filter(|o| *o != std::cmp::Ordering::Equal)
                            .unwrap_or_else(|| v.to_string().cmp(&b.to_string()));
                        if (agg == Aggregate::Min && ord == std::cmp::Ordering::Less)
                            || (agg == Aggregate::Max && ord == std::cmp::Ordering::Greater)
                        {
                            Some(v)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best
        }
    }
}

fn sort_rows(rows: &mut [Row], variables: &[String], keys: &[OrderKey]) {
    rows.sort_by(|a, b| {
        for key in keys {
            let ba = row_binding(a, variables);
            let bb = row_binding(b, variables);
            let va = eval_expr(&key.expr, &ba).ok();
            let vb = eval_expr(&key.expr, &bb).ok();
            let ord = match (va, vb) {
                (Some(x), Some(y)) => {
                    compare_terms(&x, &y).unwrap_or_else(|| x.to_string().cmp(&y.to_string()))
                }
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            };
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn row_binding(row: &Row, variables: &[String]) -> Binding {
    variables
        .iter()
        .zip(&row.values)
        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
        .collect()
}

fn instantiate(
    pattern: &TriplePattern,
    binding: &Binding,
    row: usize,
    idx: usize,
) -> Option<Triple> {
    let resolve = |tp: &TermPattern| -> Option<Term> {
        match tp {
            TermPattern::Var(v) => binding.get(v).cloned(),
            TermPattern::Term(t) => Some(t.clone()),
        }
    };
    let s = match resolve(&pattern.subject)? {
        Term::Named(n) => Resource::Named(n),
        Term::Blank(b) => Resource::Blank(b),
        Term::Literal(_) => return None,
    };
    let p = match resolve(&pattern.predicate)? {
        Term::Named(n) => n,
        _ => return None,
    };
    let o = resolve(&pattern.object).or_else(|| {
        // Unbound object in a CONSTRUCT template becomes a fresh blank node.
        Some(Term::Blank(applab_rdf::BlankNode::new(format!(
            "c{row}_{idx}"
        ))))
    })?;
    Some(Triple::new(s, p, o))
}

/// Extract envelope constraints from a filter expression.
///
/// Recognized forms (and their mirror images):
/// * `geof:sfIntersects(?v, CONST)`, and the other non-negative `sf*`
///   predicates — envelope of the constant;
/// * `geof:distance(?v, CONST) < d` / `<= d` — envelope buffered by `d`.
pub fn spatial_constraints(expr: &Expression) -> HashMap<String, Envelope> {
    let mut out = HashMap::new();
    for conjunct in expr.conjuncts() {
        match conjunct {
            Expression::Call(f, args) => {
                if let Some(local) = f.as_str().strip_prefix(vocab::geof::NS) {
                    if local == "sfDisjoint" {
                        continue; // negative constraint: no pushdown
                    }
                    if applab_geo::SpatialRelation::from_geof_name(local).is_some()
                        && args.len() == 2
                    {
                        if let Some((var, env)) = var_const_envelope(&args[0], &args[1]) {
                            merge(&mut out, var, env);
                        }
                    }
                }
            }
            Expression::Less(a, b) | Expression::LessOrEqual(a, b) => {
                // geof:distance(?v, CONST) < d
                if let (Expression::Call(f, args), Expression::Constant(Term::Literal(l))) =
                    (a.as_ref(), b.as_ref())
                {
                    if f.as_str() == vocab::geof::DISTANCE && args.len() >= 2 {
                        if let (Some((var, env)), Some(d)) =
                            (var_const_envelope(&args[0], &args[1]), l.as_f64())
                        {
                            merge(&mut out, var, env.buffered(d));
                        }
                    }
                }
            }
            Expression::Greater(a, b) | Expression::GreaterOrEqual(a, b) => {
                // d > geof:distance(?v, CONST)
                if let (Expression::Constant(Term::Literal(l)), Expression::Call(f, args)) =
                    (a.as_ref(), b.as_ref())
                {
                    if f.as_str() == vocab::geof::DISTANCE && args.len() >= 2 {
                        if let (Some((var, env)), Some(d)) =
                            (var_const_envelope(&args[0], &args[1]), l.as_f64())
                        {
                            merge(&mut out, var, env.buffered(d));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn merge(out: &mut HashMap<String, Envelope>, var: String, env: Envelope) {
    out.entry(var)
        .and_modify(|e| *e = e.intersection(&env))
        .or_insert(env);
}

/// Variable pairs linked by a non-disjoint `geof:sf*(?a, ?b)` conjunct.
/// Every such relation requires the two envelopes to intersect, so once
/// one side's geometries are known, their union envelope constrains the
/// other side (consumed through `Constraints::spatial_links`).
pub fn spatial_join_links(expr: &Expression) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for conjunct in expr.conjuncts() {
        if let Expression::Call(f, args) = conjunct {
            if let Some(local) = f.as_str().strip_prefix(vocab::geof::NS) {
                if local == "sfDisjoint" {
                    continue; // negative constraint: envelopes need not meet
                }
                if applab_geo::SpatialRelation::from_geof_name(local).is_some() && args.len() == 2 {
                    if let (Expression::Var(a), Expression::Var(b)) = (&args[0], &args[1]) {
                        out.push((a.clone(), b.clone()));
                    }
                }
            }
        }
    }
    out
}

/// Extract time-range constraints (epoch seconds) from a filter expression.
///
/// Recognized conjunct forms: `?v OP const` and `const OP ?v` where `const`
/// is an `xsd:dateTime`/`xsd:date` literal and OP is a comparison.
pub fn temporal_constraints(expr: &Expression) -> HashMap<String, (i64, i64)> {
    let mut out: HashMap<String, (i64, i64)> = HashMap::new();
    let mut narrow = |var: &str, lo: i64, hi: i64| {
        out.entry(var.to_string())
            .and_modify(|r| *r = (r.0.max(lo), r.1.min(hi)))
            .or_insert((lo, hi));
    };
    let dt = |e: &Expression| -> Option<i64> {
        match e {
            Expression::Constant(Term::Literal(l)) => l.as_datetime(),
            _ => None,
        }
    };
    for conjunct in expr.conjuncts() {
        let (a, b, flip) = match conjunct {
            Expression::Less(a, b) | Expression::LessOrEqual(a, b) => (a, b, false),
            Expression::Greater(a, b) | Expression::GreaterOrEqual(a, b) => (a, b, true),
            Expression::Equal(a, b) => {
                if let (Expression::Var(v), Some(t)) = (a.as_ref(), dt(b)) {
                    narrow(v, t, t);
                } else if let (Some(t), Expression::Var(v)) = (dt(a), b.as_ref()) {
                    narrow(v, t, t);
                }
                continue;
            }
            _ => continue,
        };
        // Normalize to `?v <= const` / `?v >= const`.
        match (a.as_ref(), b.as_ref()) {
            (Expression::Var(v), other) => {
                if let Some(t) = dt(other) {
                    if flip {
                        narrow(v, t, i64::MAX); // ?v > const
                    } else {
                        narrow(v, i64::MIN, t); // ?v < const
                    }
                }
            }
            (other, Expression::Var(v)) => {
                if let Some(t) = dt(other) {
                    if flip {
                        narrow(v, i64::MIN, t); // const > ?v
                    } else {
                        narrow(v, t, i64::MAX); // const < ?v
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Match (Var, Const-geometry) in either order.
fn var_const_envelope(a: &Expression, b: &Expression) -> Option<(String, Envelope)> {
    let extract = |e: &Expression| -> Option<Envelope> {
        match e {
            Expression::Constant(Term::Literal(l)) => l.as_geometry().map(|g| g.envelope()),
            _ => None,
        }
    };
    match (a, b) {
        (Expression::Var(v), other) => extract(other).map(|env| (v.clone(), env)),
        (other, Expression::Var(v)) => extract(other).map(|env| (v.clone(), env)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TermPattern as TP;

    fn test_graph() -> Graph {
        let mut g = Graph::new();
        for (id, name, wkt) in [
            (
                "p1",
                "Bois de Boulogne",
                "POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.88, 2.21 48.85))",
            ),
            (
                "p2",
                "Parc Monceau",
                "POLYGON ((2.30 48.87, 2.31 48.87, 2.31 48.88, 2.30 48.88, 2.30 48.87))",
            ),
        ] {
            let park = Resource::named(format!("http://ex.org/{id}"));
            let geom = Resource::named(format!("http://ex.org/{id}/geom"));
            g.add(
                park.clone(),
                NamedNode::new(vocab::rdf::TYPE),
                Term::named(vocab::osm::POI),
            );
            g.add(
                park.clone(),
                NamedNode::new(vocab::osm::HAS_NAME),
                Literal::string(name),
            );
            g.add(
                park.clone(),
                NamedNode::new(vocab::geo::HAS_GEOMETRY),
                Term::Named(geom.as_named().unwrap().clone()),
            );
            g.add(geom, NamedNode::new(vocab::geo::AS_WKT), Literal::wkt(wkt));
        }
        g
    }

    fn var(v: &str) -> TP {
        TP::var(v)
    }

    fn select_all(pattern: GraphPattern) -> Query {
        Query {
            form: QueryForm::Select {
                distinct: false,
                projection: vec![],
                group_by: vec![],
            },
            pattern,
            order_by: vec![],
            limit: None,
            offset: 0,
        }
    }

    #[test]
    fn bgp_join() {
        let g = test_graph();
        let q = select_all(GraphPattern::Bgp(vec![
            TriplePattern::new(
                var("s"),
                Term::named(vocab::rdf::TYPE),
                Term::named(vocab::osm::POI),
            ),
            TriplePattern::new(var("s"), Term::named(vocab::osm::HAS_NAME), var("name")),
        ]));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn filter_with_geof() {
        let g = test_graph();
        // Find parks whose geometry intersects a probe box around Bois de
        // Boulogne only.
        let probe =
            Literal::wkt("POLYGON ((2.2 48.84, 2.28 48.84, 2.28 48.89, 2.2 48.89, 2.2 48.84))");
        let q = select_all(GraphPattern::Filter(
            Expression::Call(
                NamedNode::new(vocab::geof::SF_INTERSECTS),
                vec![
                    Expression::Var("wkt".into()),
                    Expression::Constant(probe.into()),
                ],
            ),
            Box::new(GraphPattern::Bgp(vec![
                TriplePattern::new(var("s"), Term::named(vocab::geo::HAS_GEOMETRY), var("g")),
                TriplePattern::new(var("g"), Term::named(vocab::geo::AS_WKT), var("wkt")),
            ])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
        let s = r.value(0, "s").unwrap();
        assert_eq!(s.as_named().unwrap().as_str(), "http://ex.org/p1");
    }

    #[test]
    fn optional_keeps_unmatched() {
        let mut g = test_graph();
        // A POI without a name.
        g.add(
            Resource::named("http://ex.org/p3"),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        );
        let q = select_all(GraphPattern::LeftJoin(
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::rdf::TYPE),
                Term::named(vocab::osm::POI),
            )])),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 3);
        let unnamed = r
            .rows()
            .iter()
            .filter(|row| row.get(r.variables(), "name").is_none())
            .count();
        assert_eq!(unnamed, 1);
    }

    #[test]
    fn union_concatenates() {
        let g = test_graph();
        let left = GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::osm::HAS_NAME),
            Term::from(Literal::string("Bois de Boulogne")),
        )]);
        let right = GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::osm::HAS_NAME),
            Term::from(Literal::string("Parc Monceau")),
        )]);
        let q = select_all(GraphPattern::Union(Box::new(left), Box::new(right)));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ask_and_construct() {
        let g = test_graph();
        let bgp = GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        )]);
        let ask = Query {
            form: QueryForm::Ask,
            pattern: bgp.clone(),
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        assert_eq!(evaluate(&g, &ask).unwrap().as_bool(), Some(true));

        let construct = Query {
            form: QueryForm::Construct {
                template: vec![TriplePattern::new(
                    var("s"),
                    Term::named(vocab::rdfs::LABEL),
                    Term::from(Literal::string("poi")),
                )],
            },
            pattern: bgp,
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        let out = evaluate(&g, &construct).unwrap();
        assert_eq!(out.as_graph().unwrap().len(), 2);
    }

    #[test]
    fn aggregation_avg_per_group() {
        let mut g = Graph::new();
        for (cls, v) in [("a", 1.0), ("a", 3.0), ("b", 10.0)] {
            let obs = Resource::named(format!("http://ex.org/o{cls}{v}"));
            g.add(
                obs.clone(),
                NamedNode::new("http://ex.org/class"),
                Term::named(format!("http://ex.org/{cls}")),
            );
            g.add(obs, NamedNode::new(vocab::lai::HAS_LAI), Literal::float(v));
        }
        let q = Query {
            form: QueryForm::Select {
                distinct: false,
                projection: vec![
                    Projection::Var("cls".into()),
                    Projection::Aggregate(
                        Aggregate::Avg,
                        Some(Expression::Var("lai".into())),
                        "avg".into(),
                    ),
                    Projection::Aggregate(Aggregate::Count, None, "n".into()),
                ],
                group_by: vec!["cls".into()],
            },
            pattern: GraphPattern::Bgp(vec![
                TriplePattern::new(var("o"), Term::named("http://ex.org/class"), var("cls")),
                TriplePattern::new(var("o"), Term::named(vocab::lai::HAS_LAI), var("lai")),
            ]),
            order_by: vec![OrderKey {
                expr: Expression::Var("avg".into()),
                descending: false,
            }],
            limit: None,
            offset: 0,
        };
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.value(0, "avg").unwrap().as_literal().unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            r.value(1, "avg").unwrap().as_literal().unwrap().as_f64(),
            Some(10.0)
        );
        assert_eq!(
            r.value(0, "n").unwrap().as_literal().unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn distinct_limit_offset() {
        let g = test_graph();
        let q = Query {
            form: QueryForm::Select {
                distinct: true,
                projection: vec![Projection::Var("t".into())],
                group_by: vec![],
            },
            pattern: GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::rdf::TYPE),
                var("t"),
            )]),
            order_by: vec![],
            limit: Some(10),
            offset: 0,
        };
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1); // both POIs have the same type
    }

    #[test]
    fn extend_binds_expression() {
        let g = test_graph();
        let q = select_all(GraphPattern::Extend(
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
            "upper".into(),
            Expression::Call(
                NamedNode::new("builtin:ucase"),
                vec![Expression::Var("name".into())],
            ),
        ));
        let r = evaluate(&g, &q).unwrap();
        let u = r.value(0, "upper").unwrap().as_literal().unwrap();
        assert_eq!(u.value(), u.value().to_uppercase());
    }

    #[test]
    fn values_restricts() {
        let g = test_graph();
        let q = select_all(GraphPattern::Join(
            Box::new(GraphPattern::Values(
                vec!["name".into()],
                vec![vec![Some(Literal::string("Parc Monceau").into())]],
            )),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn spatial_constraint_extraction() {
        let expr = Expression::And(
            Box::new(Expression::Call(
                NamedNode::new(vocab::geof::SF_INTERSECTS),
                vec![
                    Expression::Var("g".into()),
                    Expression::Constant(
                        Literal::wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").into(),
                    ),
                ],
            )),
            Box::new(Expression::Less(
                Box::new(Expression::Call(
                    NamedNode::new(vocab::geof::DISTANCE),
                    vec![
                        Expression::Var("h".into()),
                        Expression::Constant(Literal::wkt("POINT (10 10)").into()),
                    ],
                )),
                Box::new(Expression::Constant(Literal::double(1.5).into())),
            )),
        );
        let cons = spatial_constraints(&expr);
        assert_eq!(cons.len(), 2);
        assert_eq!(cons["g"], Envelope::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(cons["h"], Envelope::new(8.5, 8.5, 11.5, 11.5));
    }

    #[test]
    fn same_var_twice_in_pattern() {
        let mut g = Graph::new();
        g.add(
            Resource::named("http://ex.org/n"),
            NamedNode::new("http://ex.org/linksTo"),
            Term::named("http://ex.org/n"),
        );
        g.add(
            Resource::named("http://ex.org/m"),
            NamedNode::new("http://ex.org/linksTo"),
            Term::named("http://ex.org/n"),
        );
        // ?x linksTo ?x matches only the self-loop.
        let q = select_all(GraphPattern::Bgp(vec![TriplePattern::new(
            var("x"),
            Term::named("http://ex.org/linksTo"),
            var("x"),
        )]));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
    }

    // --- new-pipeline tests ------------------------------------------------

    /// A minimal dictionary-encoded source exercising the id-level scan
    /// path without depending on the store crate.
    struct IdGraph {
        by_term: HashMap<Term, u64>,
        terms: Vec<Term>,
        triples: Vec<(u64, u64, u64)>,
    }

    impl IdGraph {
        fn from_graph(g: &Graph) -> IdGraph {
            let mut out = IdGraph {
                by_term: HashMap::new(),
                terms: Vec::new(),
                triples: Vec::new(),
            };
            let encode = |t: Term, out: &mut IdGraph| -> u64 {
                if let Some(&id) = out.by_term.get(&t) {
                    return id;
                }
                let id = out.terms.len() as u64;
                out.by_term.insert(t.clone(), id);
                out.terms.push(t);
                id
            };
            for t in g.triples_matching(None, None, None) {
                let s = encode(Term::from(t.subject.clone()), &mut out);
                let p = encode(Term::Named(t.predicate.clone()), &mut out);
                let o = encode(t.object.clone(), &mut out);
                out.triples.push((s, p, o));
            }
            out
        }
    }

    impl GraphSource for IdGraph {
        fn triples_matching(
            &self,
            subject: Option<&Resource>,
            predicate: Option<&NamedNode>,
            object: Option<&Term>,
        ) -> Vec<Triple> {
            let s = subject.map(|s| Term::from(s.clone()));
            let p = predicate.map(|p| Term::Named(p.clone()));
            self.triples
                .iter()
                .filter_map(|&(ts, tp, to)| {
                    let st = &self.terms[ts as usize];
                    let pt = &self.terms[tp as usize];
                    let ot = &self.terms[to as usize];
                    if s.as_ref().is_some_and(|s| s != st)
                        || p.as_ref().is_some_and(|p| p != pt)
                        || object.is_some_and(|o| o != ot)
                    {
                        return None;
                    }
                    Some(Triple::new(
                        st.as_resource().unwrap(),
                        pt.as_named().unwrap().clone(),
                        ot.clone(),
                    ))
                })
                .collect()
        }

        fn id_access(&self) -> Option<&dyn IdAccess> {
            Some(self)
        }
    }

    impl IdAccess for IdGraph {
        fn term_to_id(&self, term: &Term) -> Option<u64> {
            self.by_term.get(term).copied()
        }

        fn id_to_term(&self, id: u64) -> Option<&Term> {
            self.terms.get(id as usize)
        }

        fn id_count(&self) -> u64 {
            self.terms.len() as u64
        }

        fn scan_ids(&self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> Vec<(u64, u64, u64)> {
            self.triples
                .iter()
                .filter(|&&(ts, tp, to)| {
                    s.is_none_or(|s| s == ts)
                        && p.is_none_or(|p| p == tp)
                        && o.is_none_or(|o| o == to)
                })
                .copied()
                .collect()
        }
    }

    fn sorted_rows(r: &QueryResults) -> Vec<Vec<Option<String>>> {
        let mut rows: Vec<Vec<Option<String>>> = r
            .rows()
            .iter()
            .map(|row| {
                row.values
                    .iter()
                    .map(|v| v.as_ref().map(|t| t.to_string()))
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn id_level_scan_matches_decoded_scan() {
        let g = test_graph();
        let idg = IdGraph::from_graph(&g);
        let probe =
            Literal::wkt("POLYGON ((2.2 48.84, 2.28 48.84, 2.28 48.89, 2.2 48.89, 2.2 48.84))");
        let queries = vec![
            select_all(GraphPattern::Bgp(vec![
                TriplePattern::new(
                    var("s"),
                    Term::named(vocab::rdf::TYPE),
                    Term::named(vocab::osm::POI),
                ),
                TriplePattern::new(var("s"), Term::named(vocab::osm::HAS_NAME), var("name")),
            ])),
            select_all(GraphPattern::Filter(
                Expression::Call(
                    NamedNode::new(vocab::geof::SF_INTERSECTS),
                    vec![
                        Expression::Var("wkt".into()),
                        Expression::Constant(probe.into()),
                    ],
                ),
                Box::new(GraphPattern::Bgp(vec![
                    TriplePattern::new(var("s"), Term::named(vocab::geo::HAS_GEOMETRY), var("g")),
                    TriplePattern::new(var("g"), Term::named(vocab::geo::AS_WKT), var("wkt")),
                ])),
            )),
        ];
        for q in &queries {
            let a = evaluate(&g, q).unwrap();
            let b = evaluate(&idg, q).unwrap();
            assert_eq!(a.variables(), b.variables());
            assert_eq!(sorted_rows(&a), sorted_rows(&b));
        }
        // A constant absent from the dictionary is provably empty.
        let q = select_all(GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named("http://ex.org/noSuchPredicate"),
            var("o"),
        )]));
        assert_eq!(evaluate(&idg, &q).unwrap().len(), 0);
    }

    #[test]
    fn parallel_probe_matches_sequential() {
        let g = test_graph();
        let q = select_all(GraphPattern::Bgp(vec![
            TriplePattern::new(
                var("s"),
                Term::named(vocab::rdf::TYPE),
                Term::named(vocab::osm::POI),
            ),
            TriplePattern::new(var("s"), Term::named(vocab::osm::HAS_NAME), var("name")),
            TriplePattern::new(var("s"), Term::named(vocab::geo::HAS_GEOMETRY), var("g")),
        ]));
        let parallel = evaluate_with(
            &g,
            &q,
            &EvalOptions {
                parallel_probe_threshold: 1,
                // Force real threads even on single-core hosts, where
                // available_parallelism() would keep this sequential.
                parallel_workers: Some(4),
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let sequential = evaluate_with(
            &g,
            &q,
            &EvalOptions {
                parallel_probe_threshold: usize::MAX,
                parallel_workers: None,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        // Identical including row order: chunked results concatenate in order.
        assert_eq!(
            format!("{:?}", sorted_rows(&parallel)),
            format!("{:?}", sorted_rows(&sequential))
        );
        assert_eq!(parallel.len(), sequential.len());
        let p_rows: Vec<_> = parallel
            .rows()
            .iter()
            .map(|r| format!("{:?}", r.values))
            .collect();
        let s_rows: Vec<_> = sequential
            .rows()
            .iter()
            .map(|r| format!("{:?}", r.values))
            .collect();
        assert_eq!(p_rows, s_rows);
    }

    #[test]
    fn disjoint_fast_path_keeps_far_geometries() {
        let g = test_graph();
        // A probe box far away from both parks: sfDisjoint holds for both,
        // via the envelope precheck alone.
        let probe = Literal::wkt("POLYGON ((50 50, 51 50, 51 51, 50 51, 50 50))");
        let q = select_all(GraphPattern::Filter(
            Expression::Call(
                NamedNode::new(vocab::geof::SF_DISJOINT),
                vec![
                    Expression::Var("wkt".into()),
                    Expression::Constant(probe.into()),
                ],
            ),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("g"),
                Term::named(vocab::geo::AS_WKT),
                var("wkt"),
            )])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn optional_without_shared_variables() {
        // OPTIONAL whose right side shares no variables with the left: each
        // left row is extended by every right solution (cross product), and
        // nothing is lost. Exercises the provenance-slot plumbing.
        let mut g = test_graph();
        g.add(
            Resource::named("http://ex.org/x"),
            NamedNode::new("http://ex.org/flag"),
            Literal::string("on"),
        );
        let q = select_all(GraphPattern::LeftJoin(
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("f"),
                Term::named("http://ex.org/flag"),
                var("v"),
            )])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
        // Every row carries the optional flag bindings.
        for row in r.rows() {
            assert!(row.get(r.variables(), "v").is_some());
        }
    }

    fn any_query() -> Query {
        select_all(GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::osm::HAS_NAME),
            var("name"),
        )]))
    }

    #[test]
    fn zero_budget_times_out_without_partial_results() {
        let g = test_graph();
        let q = any_query();
        let options = EvalOptions {
            budget: Budget::with_deadline(Duration::ZERO),
            ..EvalOptions::default()
        };
        match evaluate_with(&g, &q, &options) {
            Err(EvalError::Timeout(d)) => assert_eq!(d, Duration::ZERO),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_token_aborts_evaluation() {
        let g = test_graph();
        let q = any_query();
        let token = Arc::new(AtomicBool::new(true));
        let options = EvalOptions {
            budget: Budget::unlimited().cancelled_by(token),
            ..EvalOptions::default()
        };
        assert_eq!(evaluate_with(&g, &q, &options), Err(EvalError::Cancelled));
    }

    #[test]
    fn generous_budget_matches_unlimited_results() {
        let g = test_graph();
        let q = any_query();
        let unlimited = evaluate(&g, &q).unwrap();
        let options = EvalOptions {
            budget: Budget::with_deadline(Duration::from_secs(60))
                .cancelled_by(Arc::new(AtomicBool::new(false))),
            ..EvalOptions::default()
        };
        assert_eq!(evaluate_with(&g, &q, &options).unwrap(), unlimited);
    }

    /// `batch_size` is a pure windowing knob: any value (including the
    /// degenerate 1 and the single-window `usize::MAX`) must produce
    /// byte-identical serializations across query shapes that exercise
    /// FILTER windows, LIMIT/OFFSET slicing, grouping and OPTIONAL.
    #[test]
    fn results_identical_across_batch_sizes() {
        let g = test_graph();
        let queries = [
            "PREFIX osm: <http://www.app-lab.eu/osm/>\n\
             SELECT ?s ?name WHERE { ?s osm:hasName ?name } ORDER BY ?name",
            "PREFIX osm: <http://www.app-lab.eu/osm/>\n\
             SELECT ?name WHERE { ?s osm:hasName ?name FILTER(STRLEN(?name) > 4) } \
             ORDER BY ?name LIMIT 1 OFFSET 1",
            "PREFIX osm: <http://www.app-lab.eu/osm/>\n\
             SELECT (COUNT(?s) AS ?n) WHERE { ?s osm:hasName ?name }",
            "PREFIX osm: <http://www.app-lab.eu/osm/>\n\
             PREFIX geo: <http://www.opengis.net/ont/geosparql#>\n\
             SELECT ?s ?wkt WHERE { ?s osm:hasName ?name . \
             OPTIONAL { ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt } } ORDER BY ?s",
        ];
        for text in queries {
            let q = crate::parser::parse_query(text).expect("static query parses");
            let reference = evaluate(&g, &q).unwrap();
            assert!(!reference.is_empty(), "vacuous comparison for {text}");
            let golden = reference.to_json();
            for batch_size in [1, 7, 1024, usize::MAX] {
                let options = EvalOptions {
                    batch_size,
                    ..EvalOptions::default()
                };
                assert_eq!(
                    evaluate_with(&g, &q, &options).unwrap().to_json(),
                    golden,
                    "batch_size={batch_size} drifted on {text}"
                );
            }
        }
    }

    /// The envelope kernel's direct rectangle assembly must stay
    /// byte-identical to serializing the rectangle polygon through the
    /// generic WKT writer.
    #[test]
    fn rect_wkt_matches_generic_wkt_writer() {
        for (min_x, min_y, max_x, max_y) in [
            (2.21, 48.85, 2.27, 48.88),
            (-180.0, -90.0, 180.0, 90.0),
            (0.0, 0.0, 0.0, 0.0),
            (-1.5e-9, 3.25, 7.125e12, 1.0 / 3.0),
        ] {
            let e = Envelope::new(min_x, min_y, max_x, max_y);
            let via_writer = applab_geo::write_wkt(&applab_geo::Geometry::Polygon(
                applab_geo::Polygon::rect(min_x, min_y, max_x, max_y),
            ));
            assert_eq!(rect_wkt(&e), via_writer);
        }
    }
}
