//! The query evaluator.
//!
//! Evaluation is bottom-up over [`GraphPattern`] with one important
//! optimization, mirroring Strabon/Ontop-spatial: **spatial pushdown**.
//! When a `FILTER` contains a `geof:` predicate between a variable and a
//! constant geometry, the evaluator derives an envelope constraint for that
//! variable and, while matching triple patterns that bind it, offers the
//! constraint to the source via
//! [`GraphSource::triples_matching_spatial`]. Index-backed sources answer
//! from their R-tree; others decline and the filter is applied afterwards
//! (the envelope is an over-approximation, so the filter always remains).

use crate::algebra::{
    Aggregate, Expression, GraphPattern, OrderKey, Projection, Query, QueryForm, TermPattern,
    TriplePattern,
};
use crate::expr::{compare_terms, eval_expr, eval_filter, Binding};
use crate::results::{QueryResults, Row};
use crate::source::GraphSource;
use applab_geo::Envelope;
use applab_rdf::{vocab, Graph, Literal, NamedNode, Resource, Term, Triple};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate a query against a source.
pub fn evaluate(source: &dyn GraphSource, query: &Query) -> Result<QueryResults, EvalError> {
    let ev = Evaluator { source };
    let bindings = ev.eval_pattern(
        &query.pattern,
        vec![Binding::new()],
        &Constraints::default(),
    );

    match &query.form {
        QueryForm::Ask => Ok(QueryResults::Boolean(!bindings.is_empty())),
        QueryForm::Construct { template } => {
            let mut g = Graph::new();
            for (i, b) in bindings.iter().enumerate() {
                for (j, t) in template.iter().enumerate() {
                    if let Some(triple) = instantiate(t, b, i, j) {
                        g.insert(triple);
                    }
                }
            }
            Ok(QueryResults::Graph(g))
        }
        QueryForm::Select {
            distinct,
            projection,
            group_by,
        } => {
            let has_aggregates = projection
                .iter()
                .any(|p| matches!(p, Projection::Aggregate(..)));
            let mut variables: Vec<String>;
            let mut rows: Vec<Row>;

            if has_aggregates || !group_by.is_empty() {
                (variables, rows) = aggregate_rows(&bindings, projection, group_by)?;
            } else if projection.is_empty() {
                // SELECT *: every variable in the pattern, in pattern order.
                variables = query.pattern.variables();
                rows = bindings
                    .iter()
                    .map(|b| Row {
                        values: variables.iter().map(|v| b.get(v).cloned()).collect(),
                    })
                    .collect();
            } else {
                variables = projection.iter().map(|p| p.name().to_string()).collect();
                rows = bindings
                    .iter()
                    .map(|b| Row {
                        values: projection
                            .iter()
                            .map(|p| match p {
                                Projection::Var(v) => b.get(v).cloned(),
                                Projection::Expr(e, _) => eval_expr(e, b).ok(),
                                Projection::Aggregate(..) => unreachable!(),
                            })
                            .collect(),
                    })
                    .collect();
            }

            // ORDER BY over the original bindings when possible (pre-slice).
            if !query.order_by.is_empty() {
                sort_rows(&mut rows, &variables, &bindings, &query.order_by, has_aggregates || !group_by.is_empty());
            }

            if *distinct {
                let mut seen = HashSet::new();
                rows.retain(|r| {
                    let key: Vec<Option<String>> = r
                        .values
                        .iter()
                        .map(|v| v.as_ref().map(|t| t.to_string()))
                        .collect();
                    seen.insert(key)
                });
            }

            // OFFSET / LIMIT.
            let start = query.offset.min(rows.len());
            rows.drain(..start);
            if let Some(limit) = query.limit {
                rows.truncate(limit);
            }

            // Deduplicate variable list defensively.
            let mut seen = HashSet::new();
            variables.retain(|v| seen.insert(v.clone()));

            Ok(QueryResults::Solutions { variables, rows })
        }
    }
}

fn sort_rows(
    rows: &mut [Row],
    variables: &[String],
    _bindings: &[Binding],
    keys: &[OrderKey],
    _grouped: bool,
) {
    rows.sort_by(|a, b| {
        for key in keys {
            let ba = row_binding(a, variables);
            let bb = row_binding(b, variables);
            let va = eval_expr(&key.expr, &ba).ok();
            let vb = eval_expr(&key.expr, &bb).ok();
            let ord = match (va, vb) {
                (Some(x), Some(y)) => {
                    compare_terms(&x, &y).unwrap_or_else(|| x.to_string().cmp(&y.to_string()))
                }
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            };
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn row_binding(row: &Row, variables: &[String]) -> Binding {
    variables
        .iter()
        .zip(&row.values)
        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
        .collect()
}

fn aggregate_rows(
    bindings: &[Binding],
    projection: &[Projection],
    group_by: &[String],
) -> Result<(Vec<String>, Vec<Row>), EvalError> {
    // Group bindings by the group-by key.
    let mut groups: Vec<(Vec<Option<Term>>, Vec<&Binding>)> = Vec::new();
    let mut index: HashMap<Vec<Option<String>>, usize> = HashMap::new();
    for b in bindings {
        let key_terms: Vec<Option<Term>> = group_by.iter().map(|v| b.get(v).cloned()).collect();
        let key_strs: Vec<Option<String>> = key_terms
            .iter()
            .map(|t| t.as_ref().map(|t| t.to_string()))
            .collect();
        let idx = *index.entry(key_strs).or_insert_with(|| {
            groups.push((key_terms.clone(), Vec::new()));
            groups.len() - 1
        });
        groups[idx].1.push(b);
    }
    // With no GROUP BY but aggregates present, there is one global group
    // (even if empty).
    if group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let variables: Vec<String> = projection.iter().map(|p| p.name().to_string()).collect();
    let mut rows = Vec::with_capacity(groups.len());
    for (key_terms, members) in &groups {
        let mut values = Vec::with_capacity(projection.len());
        for p in projection {
            let v = match p {
                Projection::Var(v) => {
                    // Must be a grouped variable.
                    match group_by.iter().position(|g| g == v) {
                        Some(i) => key_terms.get(i).cloned().flatten(),
                        None => {
                            return Err(EvalError(format!(
                                "variable ?{v} is projected but neither grouped nor aggregated"
                            )))
                        }
                    }
                }
                Projection::Expr(e, _) => {
                    // Evaluated against the group key binding.
                    let b: Binding = group_by
                        .iter()
                        .zip(key_terms)
                        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
                        .collect();
                    eval_expr(e, &b).ok()
                }
                Projection::Aggregate(agg, expr, _) => compute_aggregate(*agg, expr, members),
            };
            values.push(v);
        }
        rows.push(Row { values });
    }
    Ok((variables, rows))
}

fn compute_aggregate(
    agg: Aggregate,
    expr: &Option<Expression>,
    members: &[&Binding],
) -> Option<Term> {
    let values: Vec<Term> = match expr {
        None => return Some(Literal::integer(members.len() as i64).into()),
        Some(e) => members.iter().filter_map(|b| eval_expr(e, b).ok()).collect(),
    };
    match agg {
        Aggregate::CountAll => Some(Literal::integer(members.len() as i64).into()),
        Aggregate::Count => Some(Literal::integer(values.len() as i64).into()),
        Aggregate::Sample => values.first().cloned(),
        Aggregate::Sum | Aggregate::Avg => {
            let nums: Vec<f64> = values
                .iter()
                .filter_map(|t| t.as_literal().and_then(Literal::as_f64))
                .collect();
            if nums.is_empty() {
                return if agg == Aggregate::Sum {
                    Some(Literal::double(0.0).into())
                } else {
                    None
                };
            }
            let sum: f64 = nums.iter().sum();
            let out = if agg == Aggregate::Sum {
                sum
            } else {
                sum / nums.len() as f64
            };
            Some(Literal::double(out).into())
        }
        Aggregate::Min | Aggregate::Max => {
            let mut best: Option<Term> = None;
            for v in values {
                best = match best {
                    None => Some(v),
                    Some(b) => {
                        let ord = compare_terms(&v, &b)
                            .unwrap_or_else(|| v.to_string().cmp(&b.to_string()));
                        if (agg == Aggregate::Min && ord == std::cmp::Ordering::Less)
                            || (agg == Aggregate::Max && ord == std::cmp::Ordering::Greater)
                        {
                            Some(v)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best
        }
    }
}

fn instantiate(pattern: &TriplePattern, binding: &Binding, row: usize, idx: usize) -> Option<Triple> {
    let resolve = |tp: &TermPattern| -> Option<Term> {
        match tp {
            TermPattern::Var(v) => binding.get(v).cloned(),
            TermPattern::Term(t) => Some(t.clone()),
        }
    };
    let s = match resolve(&pattern.subject)? {
        Term::Named(n) => Resource::Named(n),
        Term::Blank(b) => Resource::Blank(b),
        Term::Literal(_) => return None,
    };
    let p = match resolve(&pattern.predicate)? {
        Term::Named(n) => n,
        _ => return None,
    };
    let o = resolve(&pattern.object).or_else(|| {
        // Unbound object in a CONSTRUCT template becomes a fresh blank node.
        Some(Term::Blank(applab_rdf::BlankNode::new(format!(
            "c{row}_{idx}"
        ))))
    })?;
    Some(Triple::new(s, p, o))
}

/// Per-variable index-pushdown constraints extracted from filters.
#[derive(Debug, Clone, Default)]
struct Constraints {
    spatial: HashMap<String, Envelope>,
    temporal: HashMap<String, (i64, i64)>,
}

struct Evaluator<'a> {
    source: &'a dyn GraphSource,
}

impl<'a> Evaluator<'a> {
    fn eval_pattern(
        &self,
        pattern: &GraphPattern,
        input: Vec<Binding>,
        constraints: &Constraints,
    ) -> Vec<Binding> {
        match pattern {
            GraphPattern::Bgp(patterns) => self.eval_bgp(patterns, input, constraints),
            GraphPattern::Filter(expr, inner) => {
                // Derive envelope and time-range constraints from the filter
                // and push them into the inner pattern.
                let mut merged = constraints.clone();
                for (var, env) in spatial_constraints(expr) {
                    merged
                        .spatial
                        .entry(var)
                        .and_modify(|e| *e = e.intersection(&env))
                        .or_insert(env);
                }
                for (var, (s, e)) in temporal_constraints(expr) {
                    merged
                        .temporal
                        .entry(var)
                        .and_modify(|r| *r = (r.0.max(s), r.1.min(e)))
                        .or_insert((s, e));
                }
                let inner_bindings = self.eval_pattern(inner, input, &merged);
                inner_bindings
                    .into_iter()
                    .filter(|b| eval_filter(expr, b))
                    .collect()
            }
            GraphPattern::Join(left, right) => {
                let lhs = self.eval_pattern(left, input, constraints);
                self.eval_pattern(right, lhs, constraints)
            }
            GraphPattern::LeftJoin(left, right) => {
                let lhs = self.eval_pattern(left, input, constraints);
                let mut out = Vec::with_capacity(lhs.len());
                for b in lhs {
                    let extended = self.eval_pattern(right, vec![b.clone()], constraints);
                    if extended.is_empty() {
                        out.push(b);
                    } else {
                        out.extend(extended);
                    }
                }
                out
            }
            GraphPattern::Union(left, right) => {
                let mut out = self.eval_pattern(left, input.clone(), constraints);
                out.extend(self.eval_pattern(right, input, constraints));
                out
            }
            GraphPattern::Extend(inner, var, expr) => {
                let bindings = self.eval_pattern(inner, input, constraints);
                bindings
                    .into_iter()
                    .map(|mut b| {
                        if let Ok(v) = eval_expr(expr, &b) {
                            b.insert(var.clone(), v);
                        }
                        b
                    })
                    .collect()
            }
            GraphPattern::Values(vars, rows) => {
                let mut out = Vec::new();
                for b in &input {
                    for row in rows {
                        let mut nb = b.clone();
                        let mut compatible = true;
                        for (var, val) in vars.iter().zip(row) {
                            if let Some(val) = val {
                                match nb.get(var) {
                                    Some(existing) if existing != val => {
                                        compatible = false;
                                        break;
                                    }
                                    _ => {
                                        nb.insert(var.clone(), val.clone());
                                    }
                                }
                            }
                        }
                        if compatible {
                            out.push(nb);
                        }
                    }
                }
                out
            }
        }
    }

    fn eval_bgp(
        &self,
        patterns: &[TriplePattern],
        input: Vec<Binding>,
        constraints: &Constraints,
    ) -> Vec<Binding> {
        if patterns.is_empty() {
            return input;
        }
        // OBDA fast path: let the source answer the whole BGP at once.
        if let Some(answers) = self.source.evaluate_bgp(patterns, &constraints.spatial) {
            let mut out = Vec::new();
            for left in &input {
                'answer: for right in &answers {
                    let mut merged = left.clone();
                    for (k, v) in right {
                        match merged.get(k) {
                            Some(existing) if existing != v => continue 'answer,
                            Some(_) => {}
                            None => {
                                merged.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    out.push(merged);
                }
            }
            return out;
        }
        // Greedy join ordering: repeatedly pick the most selective pattern
        // given the variables bound so far.
        let mut bound: HashSet<String> = input
            .first()
            .map(|b| b.keys().cloned().collect())
            .unwrap_or_default();
        let mut remaining: Vec<&TriplePattern> = patterns.iter().collect();
        let mut ordered: Vec<&TriplePattern> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| pattern_selectivity(p, &bound, constraints))
                .unwrap();
            let p = remaining.swap_remove(idx);
            for v in p.variables() {
                bound.insert(v.to_string());
            }
            ordered.push(p);
        }

        let mut bindings = input;
        for pattern in ordered {
            let mut next = Vec::new();
            for b in &bindings {
                self.match_pattern(pattern, b, constraints, &mut next);
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        bindings
    }

    fn match_pattern(
        &self,
        pattern: &TriplePattern,
        binding: &Binding,
        constraints: &Constraints,
        out: &mut Vec<Binding>,
    ) {
        let subst = |tp: &TermPattern| -> Option<Term> {
            match tp {
                TermPattern::Term(t) => Some(t.clone()),
                TermPattern::Var(v) => binding.get(v).cloned(),
            }
        };
        let s_term = subst(&pattern.subject);
        let p_term = subst(&pattern.predicate);
        let o_term = subst(&pattern.object);

        // A literal in subject position can never match.
        let s_res: Option<Resource> = match &s_term {
            Some(Term::Literal(_)) => return,
            Some(t) => t.as_resource(),
            None => None,
        };
        let p_named: Option<NamedNode> = match &p_term {
            Some(Term::Named(n)) => Some(n.clone()),
            Some(_) => return,
            None => None,
        };

        // Index pushdown: the object is an unbound variable carrying an
        // envelope or time-range constraint.
        let triples = match (&o_term, pattern.object.as_var()) {
            (None, Some(var)) => {
                let spatial_hit = constraints.spatial.get(var).and_then(|env| {
                    self.source
                        .triples_matching_spatial(s_res.as_ref(), p_named.as_ref(), env)
                });
                let temporal_hit = if spatial_hit.is_none() {
                    constraints.temporal.get(var).and_then(|(start, end)| {
                        self.source.triples_matching_temporal(
                            s_res.as_ref(),
                            p_named.as_ref(),
                            *start,
                            *end,
                        )
                    })
                } else {
                    None
                };
                spatial_hit.or(temporal_hit).unwrap_or_else(|| {
                    self.source
                        .triples_matching(s_res.as_ref(), p_named.as_ref(), None)
                })
            }
            _ => self
                .source
                .triples_matching(s_res.as_ref(), p_named.as_ref(), o_term.as_ref()),
        };

        'next_triple: for t in triples {
            let mut nb = binding.clone();
            for (tp, actual) in [
                (&pattern.subject, Term::from(t.subject.clone())),
                (&pattern.predicate, Term::Named(t.predicate.clone())),
                (&pattern.object, t.object.clone()),
            ] {
                if let TermPattern::Var(v) = tp {
                    match nb.get(v) {
                        Some(existing) if *existing != actual => continue 'next_triple,
                        Some(_) => {}
                        None => {
                            nb.insert(v.clone(), actual);
                        }
                    }
                }
            }
            out.push(nb);
        }
    }
}

/// Selectivity score for greedy BGP ordering: more ground/bound positions is
/// better; a spatially constrained object is almost as good as bound.
fn pattern_selectivity(
    p: &TriplePattern,
    bound: &HashSet<String>,
    constraints: &Constraints,
) -> i32 {
    let score = |tp: &TermPattern, weight: i32| -> i32 {
        match tp {
            TermPattern::Term(_) => weight,
            TermPattern::Var(v) if bound.contains(v) => weight,
            TermPattern::Var(v)
                if constraints.spatial.contains_key(v)
                    || constraints.temporal.contains_key(v) =>
            {
                weight - 1
            }
            TermPattern::Var(_) => 0,
        }
    };
    // Subject matches are usually most selective, then object, then
    // predicate (predicates repeat across the dataset).
    score(&p.subject, 4) + score(&p.object, 3) + score(&p.predicate, 2)
}

/// Extract envelope constraints from a filter expression.
///
/// Recognized forms (and their mirror images):
/// * `geof:sfIntersects(?v, CONST)`, and the other non-negative `sf*`
///   predicates — envelope of the constant;
/// * `geof:distance(?v, CONST) < d` / `<= d` — envelope buffered by `d`.
pub fn spatial_constraints(expr: &Expression) -> HashMap<String, Envelope> {
    let mut out = HashMap::new();
    for conjunct in expr.conjuncts() {
        match conjunct {
            Expression::Call(f, args) => {
                if let Some(local) = f.as_str().strip_prefix(vocab::geof::NS) {
                    if local == "sfDisjoint" {
                        continue; // negative constraint: no pushdown
                    }
                    if applab_geo::SpatialRelation::from_geof_name(local).is_some()
                        && args.len() == 2
                    {
                        if let Some((var, env)) = var_const_envelope(&args[0], &args[1]) {
                            merge(&mut out, var, env);
                        }
                    }
                }
            }
            Expression::Less(a, b) | Expression::LessOrEqual(a, b) => {
                // geof:distance(?v, CONST) < d
                if let (Expression::Call(f, args), Expression::Constant(Term::Literal(l))) =
                    (a.as_ref(), b.as_ref())
                {
                    if f.as_str() == vocab::geof::DISTANCE && args.len() >= 2 {
                        if let (Some((var, env)), Some(d)) =
                            (var_const_envelope(&args[0], &args[1]), l.as_f64())
                        {
                            merge(&mut out, var, env.buffered(d));
                        }
                    }
                }
            }
            Expression::Greater(a, b) | Expression::GreaterOrEqual(a, b) => {
                // d > geof:distance(?v, CONST)
                if let (Expression::Constant(Term::Literal(l)), Expression::Call(f, args)) =
                    (a.as_ref(), b.as_ref())
                {
                    if f.as_str() == vocab::geof::DISTANCE && args.len() >= 2 {
                        if let (Some((var, env)), Some(d)) =
                            (var_const_envelope(&args[0], &args[1]), l.as_f64())
                        {
                            merge(&mut out, var, env.buffered(d));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn merge(out: &mut HashMap<String, Envelope>, var: String, env: Envelope) {
    out.entry(var)
        .and_modify(|e| *e = e.intersection(&env))
        .or_insert(env);
}

/// Extract time-range constraints (epoch seconds) from a filter expression.
///
/// Recognized conjunct forms: `?v OP const` and `const OP ?v` where `const`
/// is an `xsd:dateTime`/`xsd:date` literal and OP is a comparison.
pub fn temporal_constraints(expr: &Expression) -> HashMap<String, (i64, i64)> {
    let mut out: HashMap<String, (i64, i64)> = HashMap::new();
    let mut narrow = |var: &str, lo: i64, hi: i64| {
        out.entry(var.to_string())
            .and_modify(|r| *r = (r.0.max(lo), r.1.min(hi)))
            .or_insert((lo, hi));
    };
    let dt = |e: &Expression| -> Option<i64> {
        match e {
            Expression::Constant(Term::Literal(l)) => l.as_datetime(),
            _ => None,
        }
    };
    for conjunct in expr.conjuncts() {
        let (a, b, flip) = match conjunct {
            Expression::Less(a, b) | Expression::LessOrEqual(a, b) => (a, b, false),
            Expression::Greater(a, b) | Expression::GreaterOrEqual(a, b) => (a, b, true),
            Expression::Equal(a, b) => {
                if let (Expression::Var(v), Some(t)) = (a.as_ref(), dt(b)) {
                    narrow(v, t, t);
                } else if let (Some(t), Expression::Var(v)) = (dt(a), b.as_ref()) {
                    narrow(v, t, t);
                }
                continue;
            }
            _ => continue,
        };
        // Normalize to `?v <= const` / `?v >= const`.
        match (a.as_ref(), b.as_ref()) {
            (Expression::Var(v), other) => {
                if let Some(t) = dt(other) {
                    if flip {
                        narrow(v, t, i64::MAX); // ?v > const
                    } else {
                        narrow(v, i64::MIN, t); // ?v < const
                    }
                }
            }
            (other, Expression::Var(v)) => {
                if let Some(t) = dt(other) {
                    if flip {
                        narrow(v, i64::MIN, t); // const > ?v
                    } else {
                        narrow(v, t, i64::MAX); // const < ?v
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Match (Var, Const-geometry) in either order.
fn var_const_envelope(a: &Expression, b: &Expression) -> Option<(String, Envelope)> {
    let extract = |e: &Expression| -> Option<Envelope> {
        match e {
            Expression::Constant(Term::Literal(l)) => l.as_geometry().map(|g| g.envelope()),
            _ => None,
        }
    };
    match (a, b) {
        (Expression::Var(v), other) => extract(other).map(|env| (v.clone(), env)),
        (other, Expression::Var(v)) => extract(other).map(|env| (v.clone(), env)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TermPattern as TP;

    fn test_graph() -> Graph {
        let mut g = Graph::new();
        for (id, name, wkt) in [
            ("p1", "Bois de Boulogne", "POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.88, 2.21 48.85))"),
            ("p2", "Parc Monceau", "POLYGON ((2.30 48.87, 2.31 48.87, 2.31 48.88, 2.30 48.88, 2.30 48.87))"),
        ] {
            let park = Resource::named(format!("http://ex.org/{id}"));
            let geom = Resource::named(format!("http://ex.org/{id}/geom"));
            g.add(park.clone(), NamedNode::new(vocab::rdf::TYPE), Term::named(vocab::osm::POI));
            g.add(park.clone(), NamedNode::new(vocab::osm::HAS_NAME), Literal::string(name));
            g.add(park.clone(), NamedNode::new(vocab::geo::HAS_GEOMETRY), Term::Named(geom.as_named().unwrap().clone()));
            g.add(geom, NamedNode::new(vocab::geo::AS_WKT), Literal::wkt(wkt));
        }
        g
    }

    fn var(v: &str) -> TP {
        TP::var(v)
    }

    fn select_all(pattern: GraphPattern) -> Query {
        Query {
            form: QueryForm::Select {
                distinct: false,
                projection: vec![],
                group_by: vec![],
            },
            pattern,
            order_by: vec![],
            limit: None,
            offset: 0,
        }
    }

    #[test]
    fn bgp_join() {
        let g = test_graph();
        let q = select_all(GraphPattern::Bgp(vec![
            TriplePattern::new(var("s"), Term::named(vocab::rdf::TYPE), Term::named(vocab::osm::POI)),
            TriplePattern::new(var("s"), Term::named(vocab::osm::HAS_NAME), var("name")),
        ]));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn filter_with_geof() {
        let g = test_graph();
        // Find parks whose geometry intersects a probe box around Bois de
        // Boulogne only.
        let probe = Literal::wkt("POLYGON ((2.2 48.84, 2.28 48.84, 2.28 48.89, 2.2 48.89, 2.2 48.84))");
        let q = select_all(GraphPattern::Filter(
            Expression::Call(
                NamedNode::new(vocab::geof::SF_INTERSECTS),
                vec![
                    Expression::Var("wkt".into()),
                    Expression::Constant(probe.into()),
                ],
            ),
            Box::new(GraphPattern::Bgp(vec![
                TriplePattern::new(var("s"), Term::named(vocab::geo::HAS_GEOMETRY), var("g")),
                TriplePattern::new(var("g"), Term::named(vocab::geo::AS_WKT), var("wkt")),
            ])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
        let s = r.value(0, "s").unwrap();
        assert_eq!(s.as_named().unwrap().as_str(), "http://ex.org/p1");
    }

    #[test]
    fn optional_keeps_unmatched() {
        let mut g = test_graph();
        // A POI without a name.
        g.add(
            Resource::named("http://ex.org/p3"),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        );
        let q = select_all(GraphPattern::LeftJoin(
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::rdf::TYPE),
                Term::named(vocab::osm::POI),
            )])),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 3);
        let unnamed = r
            .rows()
            .iter()
            .filter(|row| row.get(r.variables(), "name").is_none())
            .count();
        assert_eq!(unnamed, 1);
    }

    #[test]
    fn union_concatenates() {
        let g = test_graph();
        let left = GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::osm::HAS_NAME),
            Term::from(Literal::string("Bois de Boulogne")),
        )]);
        let right = GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::osm::HAS_NAME),
            Term::from(Literal::string("Parc Monceau")),
        )]);
        let q = select_all(GraphPattern::Union(Box::new(left), Box::new(right)));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ask_and_construct() {
        let g = test_graph();
        let bgp = GraphPattern::Bgp(vec![TriplePattern::new(
            var("s"),
            Term::named(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        )]);
        let ask = Query {
            form: QueryForm::Ask,
            pattern: bgp.clone(),
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        assert_eq!(evaluate(&g, &ask).unwrap().as_bool(), Some(true));

        let construct = Query {
            form: QueryForm::Construct {
                template: vec![TriplePattern::new(
                    var("s"),
                    Term::named(vocab::rdfs::LABEL),
                    Term::from(Literal::string("poi")),
                )],
            },
            pattern: bgp,
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        let out = evaluate(&g, &construct).unwrap();
        assert_eq!(out.as_graph().unwrap().len(), 2);
    }

    #[test]
    fn aggregation_avg_per_group() {
        let mut g = Graph::new();
        for (cls, v) in [("a", 1.0), ("a", 3.0), ("b", 10.0)] {
            let obs = Resource::named(format!("http://ex.org/o{cls}{v}"));
            g.add(obs.clone(), NamedNode::new("http://ex.org/class"), Term::named(format!("http://ex.org/{cls}")));
            g.add(obs, NamedNode::new(vocab::lai::HAS_LAI), Literal::float(v));
        }
        let q = Query {
            form: QueryForm::Select {
                distinct: false,
                projection: vec![
                    Projection::Var("cls".into()),
                    Projection::Aggregate(
                        Aggregate::Avg,
                        Some(Expression::Var("lai".into())),
                        "avg".into(),
                    ),
                    Projection::Aggregate(Aggregate::Count, None, "n".into()),
                ],
                group_by: vec!["cls".into()],
            },
            pattern: GraphPattern::Bgp(vec![
                TriplePattern::new(var("o"), Term::named("http://ex.org/class"), var("cls")),
                TriplePattern::new(var("o"), Term::named(vocab::lai::HAS_LAI), var("lai")),
            ]),
            order_by: vec![OrderKey {
                expr: Expression::Var("avg".into()),
                descending: false,
            }],
            limit: None,
            offset: 0,
        };
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.value(0, "avg").unwrap().as_literal().unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            r.value(1, "avg").unwrap().as_literal().unwrap().as_f64(),
            Some(10.0)
        );
        assert_eq!(
            r.value(0, "n").unwrap().as_literal().unwrap().as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn distinct_limit_offset() {
        let g = test_graph();
        let q = Query {
            form: QueryForm::Select {
                distinct: true,
                projection: vec![Projection::Var("t".into())],
                group_by: vec![],
            },
            pattern: GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::rdf::TYPE),
                var("t"),
            )]),
            order_by: vec![],
            limit: Some(10),
            offset: 0,
        };
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1); // both POIs have the same type
    }

    #[test]
    fn extend_binds_expression() {
        let g = test_graph();
        let q = select_all(GraphPattern::Extend(
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
            "upper".into(),
            Expression::Call(
                NamedNode::new("builtin:ucase"),
                vec![Expression::Var("name".into())],
            ),
        ));
        let r = evaluate(&g, &q).unwrap();
        let u = r.value(0, "upper").unwrap().as_literal().unwrap();
        assert_eq!(u.value(), u.value().to_uppercase());
    }

    #[test]
    fn values_restricts() {
        let g = test_graph();
        let q = select_all(GraphPattern::Join(
            Box::new(GraphPattern::Values(
                vec!["name".into()],
                vec![vec![Some(Literal::string("Parc Monceau").into())]],
            )),
            Box::new(GraphPattern::Bgp(vec![TriplePattern::new(
                var("s"),
                Term::named(vocab::osm::HAS_NAME),
                var("name"),
            )])),
        ));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn spatial_constraint_extraction() {
        let expr = Expression::And(
            Box::new(Expression::Call(
                NamedNode::new(vocab::geof::SF_INTERSECTS),
                vec![
                    Expression::Var("g".into()),
                    Expression::Constant(Literal::wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").into()),
                ],
            )),
            Box::new(Expression::Less(
                Box::new(Expression::Call(
                    NamedNode::new(vocab::geof::DISTANCE),
                    vec![
                        Expression::Var("h".into()),
                        Expression::Constant(Literal::wkt("POINT (10 10)").into()),
                    ],
                )),
                Box::new(Expression::Constant(Literal::double(1.5).into())),
            )),
        );
        let cons = spatial_constraints(&expr);
        assert_eq!(cons.len(), 2);
        assert_eq!(cons["g"], Envelope::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(cons["h"], Envelope::new(8.5, 8.5, 11.5, 11.5));
    }

    #[test]
    fn same_var_twice_in_pattern() {
        let mut g = Graph::new();
        g.add(
            Resource::named("http://ex.org/n"),
            NamedNode::new("http://ex.org/linksTo"),
            Term::named("http://ex.org/n"),
        );
        g.add(
            Resource::named("http://ex.org/m"),
            NamedNode::new("http://ex.org/linksTo"),
            Term::named("http://ex.org/n"),
        );
        // ?x linksTo ?x matches only the self-loop.
        let q = select_all(GraphPattern::Bgp(vec![TriplePattern::new(
            var("x"),
            Term::named("http://ex.org/linksTo"),
            var("x"),
        )]));
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
    }
}
