//! The reference evaluator: the original nested-loop implementation.
//!
//! [`evaluate`](crate::eval::evaluate) was rewritten as a dictionary-encoded
//! hash-join pipeline; this module keeps the previous binding-at-a-time
//! evaluator intact. It serves two purposes:
//!
//! * **Oracle** — the property tests in `tests/pipeline_equivalence.rs`
//!   check that the pipeline returns exactly the same solution multiset on
//!   randomized queries;
//! * **Baseline** — `exp_geographica --compare-reference` measures the
//!   speedup the pipeline buys on the Geographica query mix.
//!
//! Semantics are identical; only solution *order* may differ (OPTIONAL
//! groups matched rows differently), which SPARQL leaves unspecified absent
//! `ORDER BY`.

use crate::algebra::{
    Aggregate, Expression, GraphPattern, OrderKey, Projection, Query, QueryForm, TermPattern,
    TriplePattern,
};
use crate::eval::{spatial_constraints, temporal_constraints, EvalError};
use crate::expr::{compare_terms, eval_expr, eval_filter, Binding};
use crate::results::{QueryResults, Row};
use crate::source::GraphSource;
use applab_geo::Envelope;
use applab_rdf::{Graph, Literal, NamedNode, Resource, Term, Triple};
use std::collections::{HashMap, HashSet};

/// Evaluate a query with the original nested-loop strategy.
pub fn evaluate(source: &dyn GraphSource, query: &Query) -> Result<QueryResults, EvalError> {
    let ev = Evaluator { source };
    let bindings = ev.eval_pattern(
        &query.pattern,
        vec![Binding::new()],
        &Constraints::default(),
    );

    match &query.form {
        QueryForm::Ask => Ok(QueryResults::Boolean(!bindings.is_empty())),
        QueryForm::Construct { template } => {
            let mut g = Graph::new();
            for (i, b) in bindings.iter().enumerate() {
                for (j, t) in template.iter().enumerate() {
                    if let Some(triple) = instantiate(t, b, i, j) {
                        g.insert(triple);
                    }
                }
            }
            Ok(QueryResults::Graph(g))
        }
        QueryForm::Select {
            distinct,
            projection,
            group_by,
        } => {
            let has_aggregates = projection
                .iter()
                .any(|p| matches!(p, Projection::Aggregate(..)));
            let mut variables: Vec<String>;
            let mut rows: Vec<Row>;

            if has_aggregates || !group_by.is_empty() {
                (variables, rows) = aggregate_rows(&bindings, projection, group_by)?;
            } else if projection.is_empty() {
                // SELECT *: every variable in the pattern, in pattern order.
                variables = query.pattern.variables();
                rows = bindings
                    .iter()
                    .map(|b| Row {
                        values: variables.iter().map(|v| b.get(v).cloned()).collect(),
                    })
                    .collect();
            } else {
                variables = projection.iter().map(|p| p.name().to_string()).collect();
                rows = bindings
                    .iter()
                    .map(|b| Row {
                        values: projection
                            .iter()
                            .map(|p| match p {
                                Projection::Var(v) => b.get(v).cloned(),
                                Projection::Expr(e, _) => eval_expr(e, b).ok(),
                                Projection::Aggregate(..) => unreachable!(),
                            })
                            .collect(),
                    })
                    .collect();
            }

            if !query.order_by.is_empty() {
                sort_rows(&mut rows, &variables, &query.order_by);
            }

            if *distinct {
                let mut seen = HashSet::new();
                rows.retain(|r| {
                    let key: Vec<Option<String>> = r
                        .values
                        .iter()
                        .map(|v| v.as_ref().map(|t| t.to_string()))
                        .collect();
                    seen.insert(key)
                });
            }

            // OFFSET / LIMIT.
            let start = query.offset.min(rows.len());
            rows.drain(..start);
            if let Some(limit) = query.limit {
                rows.truncate(limit);
            }

            // Deduplicate variable list defensively.
            let mut seen = HashSet::new();
            variables.retain(|v| seen.insert(v.clone()));

            Ok(QueryResults::Solutions { variables, rows })
        }
    }
}

fn sort_rows(rows: &mut [Row], variables: &[String], keys: &[OrderKey]) {
    rows.sort_by(|a, b| {
        for key in keys {
            let ba = row_binding(a, variables);
            let bb = row_binding(b, variables);
            let va = eval_expr(&key.expr, &ba).ok();
            let vb = eval_expr(&key.expr, &bb).ok();
            let ord = match (va, vb) {
                (Some(x), Some(y)) => {
                    compare_terms(&x, &y).unwrap_or_else(|| x.to_string().cmp(&y.to_string()))
                }
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            };
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn row_binding(row: &Row, variables: &[String]) -> Binding {
    variables
        .iter()
        .zip(&row.values)
        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
        .collect()
}

fn aggregate_rows(
    bindings: &[Binding],
    projection: &[Projection],
    group_by: &[String],
) -> Result<(Vec<String>, Vec<Row>), EvalError> {
    // Group bindings by the group-by key.
    let mut groups: Vec<(Vec<Option<Term>>, Vec<&Binding>)> = Vec::new();
    let mut index: HashMap<Vec<Option<String>>, usize> = HashMap::new();
    for b in bindings {
        let key_terms: Vec<Option<Term>> = group_by.iter().map(|v| b.get(v).cloned()).collect();
        let key_strs: Vec<Option<String>> = key_terms
            .iter()
            .map(|t| t.as_ref().map(|t| t.to_string()))
            .collect();
        let idx = *index.entry(key_strs).or_insert_with(|| {
            groups.push((key_terms.clone(), Vec::new()));
            groups.len() - 1
        });
        groups[idx].1.push(b);
    }
    // With no GROUP BY but aggregates present, there is one global group
    // (even if empty).
    if group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let variables: Vec<String> = projection.iter().map(|p| p.name().to_string()).collect();
    let mut rows = Vec::with_capacity(groups.len());
    for (key_terms, members) in &groups {
        let mut values = Vec::with_capacity(projection.len());
        for p in projection {
            let v = match p {
                Projection::Var(v) => match group_by.iter().position(|g| g == v) {
                    Some(i) => key_terms.get(i).cloned().flatten(),
                    None => {
                        return Err(EvalError::Other(format!(
                            "variable ?{v} is projected but neither grouped nor aggregated"
                        )))
                    }
                },
                Projection::Expr(e, _) => {
                    let b: Binding = group_by
                        .iter()
                        .zip(key_terms)
                        .filter_map(|(v, t)| t.clone().map(|t| (v.clone(), t)))
                        .collect();
                    eval_expr(e, &b).ok()
                }
                Projection::Aggregate(agg, expr, _) => compute_aggregate(*agg, expr, members),
            };
            values.push(v);
        }
        rows.push(Row { values });
    }
    Ok((variables, rows))
}

fn compute_aggregate(
    agg: Aggregate,
    expr: &Option<Expression>,
    members: &[&Binding],
) -> Option<Term> {
    let values: Vec<Term> = match expr {
        None => return Some(Literal::integer(members.len() as i64).into()),
        Some(e) => members
            .iter()
            .filter_map(|b| eval_expr(e, b).ok())
            .collect(),
    };
    crate::eval::aggregate_values(agg, values, members.len())
}

fn instantiate(
    pattern: &TriplePattern,
    binding: &Binding,
    row: usize,
    idx: usize,
) -> Option<Triple> {
    let resolve = |tp: &TermPattern| -> Option<Term> {
        match tp {
            TermPattern::Var(v) => binding.get(v).cloned(),
            TermPattern::Term(t) => Some(t.clone()),
        }
    };
    let s = match resolve(&pattern.subject)? {
        Term::Named(n) => Resource::Named(n),
        Term::Blank(b) => Resource::Blank(b),
        Term::Literal(_) => return None,
    };
    let p = match resolve(&pattern.predicate)? {
        Term::Named(n) => n,
        _ => return None,
    };
    let o = resolve(&pattern.object).or_else(|| {
        // Unbound object in a CONSTRUCT template becomes a fresh blank node.
        Some(Term::Blank(applab_rdf::BlankNode::new(format!(
            "c{row}_{idx}"
        ))))
    })?;
    Some(Triple::new(s, p, o))
}

/// Per-variable index-pushdown constraints extracted from filters.
#[derive(Debug, Clone, Default)]
struct Constraints {
    spatial: HashMap<String, Envelope>,
    temporal: HashMap<String, (i64, i64)>,
}

struct Evaluator<'a> {
    source: &'a dyn GraphSource,
}

impl Evaluator<'_> {
    fn eval_pattern(
        &self,
        pattern: &GraphPattern,
        input: Vec<Binding>,
        constraints: &Constraints,
    ) -> Vec<Binding> {
        match pattern {
            GraphPattern::Bgp(patterns) => self.eval_bgp(patterns, input, constraints),
            GraphPattern::Filter(expr, inner) => {
                let mut merged = constraints.clone();
                for (var, env) in spatial_constraints(expr) {
                    merged
                        .spatial
                        .entry(var)
                        .and_modify(|e| *e = e.intersection(&env))
                        .or_insert(env);
                }
                for (var, (s, e)) in temporal_constraints(expr) {
                    merged
                        .temporal
                        .entry(var)
                        .and_modify(|r| *r = (r.0.max(s), r.1.min(e)))
                        .or_insert((s, e));
                }
                let inner_bindings = self.eval_pattern(inner, input, &merged);
                inner_bindings
                    .into_iter()
                    .filter(|b| eval_filter(expr, b))
                    .collect()
            }
            GraphPattern::Join(left, right) => {
                let lhs = self.eval_pattern(left, input, constraints);
                self.eval_pattern(right, lhs, constraints)
            }
            GraphPattern::LeftJoin(left, right) => {
                let lhs = self.eval_pattern(left, input, constraints);
                let mut out = Vec::with_capacity(lhs.len());
                for b in lhs {
                    let extended = self.eval_pattern(right, vec![b.clone()], constraints);
                    if extended.is_empty() {
                        out.push(b);
                    } else {
                        out.extend(extended);
                    }
                }
                out
            }
            GraphPattern::Union(left, right) => {
                let mut out = self.eval_pattern(left, input.clone(), constraints);
                out.extend(self.eval_pattern(right, input, constraints));
                out
            }
            GraphPattern::Extend(inner, var, expr) => {
                let bindings = self.eval_pattern(inner, input, constraints);
                bindings
                    .into_iter()
                    .map(|mut b| {
                        if let Ok(v) = eval_expr(expr, &b) {
                            b.insert(var.clone(), v);
                        }
                        b
                    })
                    .collect()
            }
            GraphPattern::Values(vars, rows) => {
                let mut out = Vec::new();
                for b in &input {
                    for row in rows {
                        let mut nb = b.clone();
                        let mut compatible = true;
                        for (var, val) in vars.iter().zip(row) {
                            if let Some(val) = val {
                                match nb.get(var) {
                                    Some(existing) if existing != val => {
                                        compatible = false;
                                        break;
                                    }
                                    _ => {
                                        nb.insert(var.clone(), val.clone());
                                    }
                                }
                            }
                        }
                        if compatible {
                            out.push(nb);
                        }
                    }
                }
                out
            }
        }
    }

    fn eval_bgp(
        &self,
        patterns: &[TriplePattern],
        input: Vec<Binding>,
        constraints: &Constraints,
    ) -> Vec<Binding> {
        if patterns.is_empty() {
            return input;
        }
        // OBDA fast path: let the source answer the whole BGP at once.
        if let Some(answers) = self.source.evaluate_bgp(patterns, &constraints.spatial) {
            let mut out = Vec::new();
            for left in &input {
                'answer: for right in &answers {
                    let mut merged = left.clone();
                    for (k, v) in right {
                        match merged.get(k) {
                            Some(existing) if existing != v => continue 'answer,
                            Some(_) => {}
                            None => {
                                merged.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    out.push(merged);
                }
            }
            return out;
        }
        // Greedy join ordering: repeatedly pick the most selective pattern
        // given the variables bound so far.
        let mut bound: HashSet<String> = input
            .first()
            .map(|b| b.keys().cloned().collect())
            .unwrap_or_default();
        let mut remaining: Vec<&TriplePattern> = patterns.iter().collect();
        let mut ordered: Vec<&TriplePattern> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| pattern_selectivity(p, &bound, constraints))
                .unwrap();
            let p = remaining.swap_remove(idx);
            for v in p.variables() {
                bound.insert(v.to_string());
            }
            ordered.push(p);
        }

        let mut bindings = input;
        for pattern in ordered {
            let mut next = Vec::new();
            for b in &bindings {
                self.match_pattern(pattern, b, constraints, &mut next);
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        bindings
    }

    fn match_pattern(
        &self,
        pattern: &TriplePattern,
        binding: &Binding,
        constraints: &Constraints,
        out: &mut Vec<Binding>,
    ) {
        let subst = |tp: &TermPattern| -> Option<Term> {
            match tp {
                TermPattern::Term(t) => Some(t.clone()),
                TermPattern::Var(v) => binding.get(v).cloned(),
            }
        };
        let s_term = subst(&pattern.subject);
        let p_term = subst(&pattern.predicate);
        let o_term = subst(&pattern.object);

        // A literal in subject position can never match.
        let s_res: Option<Resource> = match &s_term {
            Some(Term::Literal(_)) => return,
            Some(t) => t.as_resource(),
            None => None,
        };
        let p_named: Option<NamedNode> = match &p_term {
            Some(Term::Named(n)) => Some(n.clone()),
            Some(_) => return,
            None => None,
        };

        // Index pushdown: the object is an unbound variable carrying an
        // envelope or time-range constraint.
        let triples = match (&o_term, pattern.object.as_var()) {
            (None, Some(var)) => {
                let spatial_hit = constraints.spatial.get(var).and_then(|env| {
                    self.source
                        .triples_matching_spatial(s_res.as_ref(), p_named.as_ref(), env)
                });
                let temporal_hit = if spatial_hit.is_none() {
                    constraints.temporal.get(var).and_then(|(start, end)| {
                        self.source.triples_matching_temporal(
                            s_res.as_ref(),
                            p_named.as_ref(),
                            *start,
                            *end,
                        )
                    })
                } else {
                    None
                };
                spatial_hit.or(temporal_hit).unwrap_or_else(|| {
                    self.source
                        .triples_matching(s_res.as_ref(), p_named.as_ref(), None)
                })
            }
            _ => self
                .source
                .triples_matching(s_res.as_ref(), p_named.as_ref(), o_term.as_ref()),
        };

        'next_triple: for t in triples {
            let mut nb = binding.clone();
            for (tp, actual) in [
                (&pattern.subject, Term::from(t.subject.clone())),
                (&pattern.predicate, Term::Named(t.predicate.clone())),
                (&pattern.object, t.object.clone()),
            ] {
                if let TermPattern::Var(v) = tp {
                    match nb.get(v) {
                        Some(existing) if *existing != actual => continue 'next_triple,
                        Some(_) => {}
                        None => {
                            nb.insert(v.clone(), actual);
                        }
                    }
                }
            }
            out.push(nb);
        }
    }
}

/// Selectivity score for greedy BGP ordering: more ground/bound positions is
/// better; a spatially constrained object is almost as good as bound.
fn pattern_selectivity(
    p: &TriplePattern,
    bound: &HashSet<String>,
    constraints: &Constraints,
) -> i32 {
    let score = |tp: &TermPattern, weight: i32| -> i32 {
        match tp {
            TermPattern::Term(_) => weight,
            TermPattern::Var(v) if bound.contains(v) => weight,
            TermPattern::Var(v)
                if constraints.spatial.contains_key(v) || constraints.temporal.contains_key(v) =>
            {
                weight - 1
            }
            TermPattern::Var(_) => 0,
        }
    };
    // Subject matches are usually most selective, then object, then
    // predicate (predicates repeat across the dataset).
    score(&p.subject, 4) + score(&p.object, 3) + score(&p.predicate, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TermPattern as TP;
    use applab_rdf::vocab;

    #[test]
    fn reference_still_answers_a_join() {
        let mut g = Graph::new();
        let park = Resource::named("http://ex.org/p1");
        g.add(
            park.clone(),
            NamedNode::new(vocab::rdf::TYPE),
            Term::named(vocab::osm::POI),
        );
        g.add(
            park,
            NamedNode::new(vocab::osm::HAS_NAME),
            Literal::string("Bois de Boulogne"),
        );
        let q = Query {
            form: QueryForm::Select {
                distinct: false,
                projection: vec![],
                group_by: vec![],
            },
            pattern: GraphPattern::Bgp(vec![
                TriplePattern::new(
                    TP::var("s"),
                    Term::named(vocab::rdf::TYPE),
                    Term::named(vocab::osm::POI),
                ),
                TriplePattern::new(
                    TP::var("s"),
                    Term::named(vocab::osm::HAS_NAME),
                    TP::var("n"),
                ),
            ]),
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        let r = evaluate(&g, &q).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.value(0, "n").unwrap().as_literal().unwrap().value(),
            "Bois de Boulogne"
        );
    }
}
