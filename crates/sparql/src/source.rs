//! The data-source abstraction the evaluator runs against.

use crate::algebra::TriplePattern;
use crate::expr::Binding;
use applab_geo::Envelope;
use applab_rdf::{Graph, NamedNode, Resource, Term, Triple};
use std::collections::HashMap;

/// A source of triples. Implemented by [`applab_rdf::Graph`] (linear scan),
/// by the Strabon-like store (index lookups + R-tree spatial pushdown), and
/// by the OBDA virtual graphs (mapping rewriting).
pub trait GraphSource {
    /// All triples matching the pattern; `None` components are wildcards.
    fn triples_matching(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Vec<Triple>;

    /// Spatially constrained variant: triples whose **object** is a
    /// `geo:wktLiteral` with an envelope intersecting `envelope`. Sources
    /// without a spatial index return `None` and the evaluator falls back to
    /// [`GraphSource::triples_matching`] plus a post-filter.
    ///
    /// This hook is how the R-tree advantage that the paper attributes to
    /// Strabon/Ontop-spatial reaches the shared evaluator.
    fn triples_matching_spatial(
        &self,
        _subject: Option<&Resource>,
        _predicate: Option<&NamedNode>,
        _envelope: &Envelope,
    ) -> Option<Vec<Triple>> {
        None
    }

    /// Temporally constrained variant: triples whose **object** is an
    /// `xsd:dateTime` literal within `[start, end]` (epoch seconds). Sources
    /// without a temporal index return `None`; the evaluator falls back to a
    /// scan plus post-filter. This mirrors Strabon's valid-time indexing.
    fn triples_matching_temporal(
        &self,
        _subject: Option<&Resource>,
        _predicate: Option<&NamedNode>,
        _start: i64,
        _end: i64,
    ) -> Option<Vec<Triple>> {
        None
    }

    /// Whole-BGP evaluation hook — the OBDA "query rewriting" fast path.
    ///
    /// Ontop-style sources can answer an entire basic graph pattern with a
    /// single relational plan (one scan instead of an n-way self-join of
    /// triple lookups). A source that can handle the given patterns returns
    /// the bindings for an *empty* initial binding; the evaluator then
    /// merge-joins them with its current solutions. Returning `None` (the
    /// default) falls back to pattern-at-a-time evaluation.
    ///
    /// `spatial` carries per-variable envelope constraints extracted from
    /// the surrounding filters (same contract as
    /// [`GraphSource::triples_matching_spatial`]).
    fn evaluate_bgp(
        &self,
        _patterns: &[TriplePattern],
        _spatial: &HashMap<String, Envelope>,
    ) -> Option<Vec<Binding>> {
        None
    }

    /// An optional cardinality hint for (s?, p?, o?) used by the BGP
    /// reorderer. The default estimates nothing.
    fn estimate(
        &self,
        _subject: Option<&Resource>,
        _predicate: Option<&NamedNode>,
        _object: Option<&Term>,
    ) -> Option<usize> {
        None
    }

    /// Seal-time statistics for the cost-based planner
    /// ([`crate::plan`]). Sources that collect a sketch when they seal
    /// return it here; the default `None` leaves the planner without
    /// estimates (it then keeps written order). Only consulted when
    /// [`crate::EvalOptions::planner`] is on.
    fn stats(&self) -> Option<&crate::plan::Stats> {
        None
    }

    /// Dictionary-level access for sources that store triples as id tuples.
    ///
    /// Returning `Some` lets the evaluator run its hash-join pipeline
    /// directly on `u64` ids — scans yield id triples, join keys are integer
    /// comparisons, and terms are only decoded at FILTER / projection
    /// boundaries (late materialization). The default `None` keeps the
    /// decoded-triple contract: [`applab_rdf::Graph`], the naive store and
    /// the OBDA virtual graphs work unchanged.
    fn id_access(&self) -> Option<&dyn IdAccess> {
        None
    }
}

/// Id-level view of a dictionary-encoded source (see
/// [`GraphSource::id_access`]).
///
/// Ids must be stable for the lifetime of the borrow and densely cover
/// `0..id_count()`; the evaluator allocates its own query-local overflow ids
/// from `id_count()` upward for terms the source has never seen.
pub trait IdAccess {
    /// Id of a term, if the source has it interned.
    fn term_to_id(&self, term: &Term) -> Option<u64>;

    /// Term for an id this source produced.
    fn id_to_term(&self, id: u64) -> Option<&Term>;

    /// Number of interned terms (ids are `0..id_count()`).
    fn id_count(&self) -> u64;

    /// All id triples matching an (s?, p?, o?) id pattern.
    fn scan_ids(&self, s: Option<u64>, p: Option<u64>, o: Option<u64>) -> Vec<(u64, u64, u64)>;

    /// Spatial variant of [`IdAccess::scan_ids`]: id triples whose object is
    /// a geometry literal with an envelope intersecting `envelope`. `None`
    /// declines (no spatial index).
    fn scan_ids_spatial(
        &self,
        _s: Option<u64>,
        _p: Option<u64>,
        _envelope: &Envelope,
    ) -> Option<Vec<(u64, u64, u64)>> {
        None
    }

    /// Temporal variant of [`IdAccess::scan_ids`]: id triples whose object
    /// is a dateTime literal within `[start, end]` epoch seconds. `None`
    /// declines.
    fn scan_ids_temporal(
        &self,
        _s: Option<u64>,
        _p: Option<u64>,
        _start: i64,
        _end: i64,
    ) -> Option<Vec<(u64, u64, u64)>> {
        None
    }

    /// Columnar variant of [`IdAccess::scan_ids`]: append every matching id
    /// triple to the three match columns in `out`. Index-backed sources
    /// should override this to write their range walks straight into the
    /// columns — the vectorized evaluator turns them into a solution batch
    /// without any per-row tuple allocation. The default adapts
    /// [`IdAccess::scan_ids`].
    fn scan_ids_columns(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
        out: &mut IdColumns,
    ) {
        let triples = self.scan_ids(s, p, o);
        out.reserve(triples.len());
        for (ts, tp, to) in triples {
            out.push(ts, tp, to);
        }
    }

    /// The pre-parsed geometry (with envelope) of the term behind `id`, if
    /// the source maintains a geometry table. Lets the evaluator's spatial
    /// filters and `geof:` projections skip WKT parsing entirely for native
    /// ids. The default declines.
    fn geometry(&self, _id: u64) -> Option<&(applab_geo::Geometry, Envelope)> {
        None
    }
}

/// Three structure-of-arrays match columns produced by
/// [`IdAccess::scan_ids_columns`]: `s[i], p[i], o[i]` is the i-th matching
/// id triple.
#[derive(Debug, Clone, Default)]
pub struct IdColumns {
    pub s: Vec<u64>,
    pub p: Vec<u64>,
    pub o: Vec<u64>,
}

impl IdColumns {
    /// Number of matched triples.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.s.reserve(additional);
        self.p.reserve(additional);
        self.o.reserve(additional);
    }

    #[inline]
    pub fn push(&mut self, s: u64, p: u64, o: u64) {
        self.s.push(s);
        self.p.push(p);
        self.o.push(o);
    }
}

impl GraphSource for Graph {
    fn triples_matching(
        &self,
        subject: Option<&Resource>,
        predicate: Option<&NamedNode>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        self.matching(subject, predicate, object).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::{vocab, Literal};

    #[test]
    fn graph_implements_source() {
        let mut g = Graph::new();
        g.add(
            Resource::named("http://ex.org/a"),
            NamedNode::new(vocab::rdfs::LABEL),
            Literal::string("A"),
        );
        g.add(
            Resource::named("http://ex.org/b"),
            NamedNode::new(vocab::rdfs::LABEL),
            Literal::string("B"),
        );
        let source: &dyn GraphSource = &g;
        assert_eq!(source.triples_matching(None, None, None).len(), 2);
        let a = Resource::named("http://ex.org/a");
        assert_eq!(source.triples_matching(Some(&a), None, None).len(), 1);
        // Spatial pushdown is absent by default.
        assert!(source
            .triples_matching_spatial(None, None, &Envelope::new(0.0, 0.0, 1.0, 1.0))
            .is_none());
    }
}
