//! The query algebra produced by the parser and consumed by the evaluator.

use applab_rdf::{NamedNode, Term};

/// A position in a triple pattern: a variable or a constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// `?name` (without the question mark).
    Var(String),
    /// A ground RDF term.
    Term(Term),
}

impl TermPattern {
    pub fn var(name: impl Into<String>) -> Self {
        TermPattern::Var(name.into())
    }

    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

impl From<Term> for TermPattern {
    fn from(t: Term) -> Self {
        TermPattern::Term(t)
    }
}

/// A triple pattern in a basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub predicate: TermPattern,
    pub object: TermPattern,
}

impl TriplePattern {
    pub fn new(
        subject: impl Into<TermPattern>,
        predicate: impl Into<TermPattern>,
        object: impl Into<TermPattern>,
    ) -> Self {
        TriplePattern {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// Variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(TermPattern::as_var)
            .collect()
    }
}

/// A SPARQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// `?name`
    Var(String),
    /// A constant term (IRI or literal).
    Constant(Term),
    And(Box<Expression>, Box<Expression>),
    Or(Box<Expression>, Box<Expression>),
    Not(Box<Expression>),
    Equal(Box<Expression>, Box<Expression>),
    NotEqual(Box<Expression>, Box<Expression>),
    Less(Box<Expression>, Box<Expression>),
    LessOrEqual(Box<Expression>, Box<Expression>),
    Greater(Box<Expression>, Box<Expression>),
    GreaterOrEqual(Box<Expression>, Box<Expression>),
    Add(Box<Expression>, Box<Expression>),
    Subtract(Box<Expression>, Box<Expression>),
    Multiply(Box<Expression>, Box<Expression>),
    Divide(Box<Expression>, Box<Expression>),
    UnaryMinus(Box<Expression>),
    /// `BOUND(?v)`
    Bound(String),
    /// A builtin or extension function call by IRI or builtin name.
    /// GeoSPARQL `geof:` functions arrive here with their full IRI.
    Call(NamedNode, Vec<Expression>),
    /// `IF(cond, then, else)`
    If(Box<Expression>, Box<Expression>, Box<Expression>),
}

impl Expression {
    /// All variables mentioned anywhere in the expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expression::Var(v) | Expression::Bound(v) => out.push(v),
            Expression::Constant(_) => {}
            Expression::Not(e) | Expression::UnaryMinus(e) => e.collect_vars(out),
            Expression::And(a, b)
            | Expression::Or(a, b)
            | Expression::Equal(a, b)
            | Expression::NotEqual(a, b)
            | Expression::Less(a, b)
            | Expression::LessOrEqual(a, b)
            | Expression::Greater(a, b)
            | Expression::GreaterOrEqual(a, b)
            | Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expression::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expression::If(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expression> {
        match self {
            Expression::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

/// A graph pattern (the content of a `WHERE` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// `pattern FILTER(expr)`
    Filter(Expression, Box<GraphPattern>),
    /// Sequential join of two patterns.
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// `left OPTIONAL { right }`
    LeftJoin(Box<GraphPattern>, Box<GraphPattern>),
    /// `{ left } UNION { right }`
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `BIND(expr AS ?var)` applied to the preceding pattern.
    Extend(Box<GraphPattern>, String, Expression),
    /// Inline data: `VALUES ?v { ... }` (single- or multi-variable).
    Values(Vec<String>, Vec<Vec<Option<Term>>>),
}

impl GraphPattern {
    /// All variables bound anywhere in the pattern.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.dedup();
        let mut seen = std::collections::HashSet::new();
        out.retain(|v| seen.insert(v.clone()));
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            GraphPattern::Bgp(patterns) => {
                for p in patterns {
                    out.extend(p.variables().into_iter().map(String::from));
                }
            }
            GraphPattern::Filter(_, inner) => inner.collect_vars(out),
            GraphPattern::Join(a, b) | GraphPattern::LeftJoin(a, b) | GraphPattern::Union(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            GraphPattern::Extend(inner, var, _) => {
                inner.collect_vars(out);
                out.push(var.clone());
            }
            GraphPattern::Values(vars, _) => out.extend(vars.iter().cloned()),
        }
    }
}

/// An aggregate function in a projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    Count,
    CountAll,
    Sum,
    Avg,
    Min,
    Max,
    Sample,
}

/// One projected column of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `?v`
    Var(String),
    /// `(expr AS ?alias)`
    Expr(Expression, String),
    /// `(AGG(?v) AS ?alias)`; the inner expression is `None` for `COUNT(*)`.
    Aggregate(Aggregate, Option<Expression>, String),
}

impl Projection {
    /// The output column name.
    pub fn name(&self) -> &str {
        match self {
            Projection::Var(v) => v,
            Projection::Expr(_, alias) | Projection::Aggregate(_, _, alias) => alias,
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expression,
    pub descending: bool,
}

/// The query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    Select {
        distinct: bool,
        /// Empty means `SELECT *`.
        projection: Vec<Projection>,
        group_by: Vec<String>,
    },
    Ask,
    Construct {
        template: Vec<TriplePattern>,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub form: QueryForm,
    pub pattern: GraphPattern,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Literal;

    #[test]
    fn pattern_variables() {
        let p = TriplePattern::new(
            TermPattern::var("s"),
            TermPattern::Term(Term::named("http://p")),
            TermPattern::var("o"),
        );
        assert_eq!(p.variables(), vec!["s", "o"]);
    }

    #[test]
    fn expression_conjuncts() {
        let e = Expression::And(
            Box::new(Expression::And(
                Box::new(Expression::Var("a".into())),
                Box::new(Expression::Var("b".into())),
            )),
            Box::new(Expression::Var("c".into())),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn graph_pattern_variables_dedup() {
        let bgp = GraphPattern::Bgp(vec![
            TriplePattern::new(
                TermPattern::var("s"),
                TermPattern::var("p"),
                TermPattern::var("o"),
            ),
            TriplePattern::new(
                TermPattern::var("s"),
                TermPattern::Term(Term::named("http://p")),
                TermPattern::Term(Literal::integer(1).into()),
            ),
        ]);
        assert_eq!(bgp.variables(), vec!["s", "p", "o"]);
    }

    #[test]
    fn extend_adds_variable() {
        let p = GraphPattern::Extend(
            Box::new(GraphPattern::Bgp(vec![])),
            "x".into(),
            Expression::Constant(Literal::integer(1).into()),
        );
        assert_eq!(p.variables(), vec!["x"]);
    }
}
