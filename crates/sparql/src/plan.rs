//! Cost-based planning: seal-time statistics, cardinality estimation,
//! join ordering, access-path choice, and build-side filters.
//!
//! Sources collect a [`Stats`] sketch once, when they seal
//! (`SpatioTemporalStore::finish_load`, `VirtualGraph::new`), and expose
//! it through [`crate::GraphSource::stats`]. The evaluator consults the
//! sketch when [`crate::EvalOptions::planner`] is on: BGP joins are
//! reordered by estimated output cardinality ([`order_patterns`]),
//! spatial/temporal index access paths are taken only when the sketch
//! says they prune ([`access_path`]), and build-side [`IdFilter`]s
//! (Bloom + min/max) drop probe rows before the hash join.
//!
//! Everything here is an *over-approximation*: estimates steer order and
//! access paths but never drop answers — filters are always re-applied
//! downstream, so a wrong estimate costs time, not correctness. The
//! written-order pipeline (planner off, the default) stays available as
//! the oracle; `tests/planner_equivalence.rs` diffs the two across the
//! QA corpus.
//!
//! Plans are summarized by a [`fingerprint`] over the chosen (pattern,
//! access-path) sequence. Because [`order_patterns`] keys only on
//! estimates and canonical pattern text — never on written position —
//! the fingerprint is invariant under reordering of the written BGP,
//! which the QA metamorphic suite asserts adversarially.

use crate::algebra::{GraphPattern, TermPattern, TriplePattern};
use applab_geo::Envelope;
use std::collections::{HashMap, HashSet};

/// Per-predicate cardinalities collected at seal time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredicateStats {
    /// Triples with this predicate.
    pub triples: u64,
    /// Distinct subjects among those triples.
    pub distinct_subjects: u64,
    /// Distinct objects among those triples.
    pub distinct_objects: u64,
}

/// Selectivity sketch of the spatial (R-tree) index: how much of the
/// indexed extent a query envelope covers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpatialSketch {
    /// Geometries in the index.
    pub entries: u64,
    /// Union envelope of all indexed geometries (`None` when empty).
    pub bounds: Option<Envelope>,
}

impl SpatialSketch {
    /// Fraction of indexed entries a query envelope is expected to
    /// touch, assuming uniform spread over the bounds. 1.0 when unknown.
    pub fn selectivity(&self, query: &Envelope) -> f64 {
        let Some(b) = &self.bounds else {
            return 1.0;
        };
        if !b.intersects(query) {
            return 0.0;
        }
        let total = b.width() * b.height();
        if total <= 0.0 {
            // Degenerate extent (single point/line): in or out, not scaled.
            return 1.0;
        }
        let w = (query.max_x.min(b.max_x) - query.min_x.max(b.min_x)).max(0.0);
        let h = (query.max_y.min(b.max_y) - query.min_y.max(b.min_y)).max(0.0);
        ((w * h) / total).clamp(0.0, 1.0)
    }
}

/// Selectivity sketch of the sorted temporal index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TemporalSketch {
    /// Entries in the index.
    pub entries: u64,
    /// Smallest indexed timestamp (seconds).
    pub min: i64,
    /// Largest indexed timestamp (seconds).
    pub max: i64,
}

impl TemporalSketch {
    /// Fraction of indexed entries a `[lo, hi]` range is expected to
    /// cover, assuming uniform spread. 1.0 when unknown.
    pub fn selectivity(&self, lo: i64, hi: i64) -> f64 {
        if self.entries == 0 {
            return 1.0;
        }
        if hi < self.min || lo > self.max {
            return 0.0;
        }
        let total = (self.max - self.min) as f64;
        if total <= 0.0 {
            return 1.0;
        }
        let covered = (hi.min(self.max) - lo.max(self.min)).max(0) as f64;
        (covered / total).clamp(0.0, 1.0)
    }
}

/// Seal-time statistics owned by a sealed source. Keyed by predicate IRI
/// text so one shape serves both the id-encoded store and the
/// template-based OBDA virtual graphs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Total triples (or the structural estimate for virtual sources).
    pub total_triples: u64,
    /// Per-predicate cardinalities, keyed by predicate IRI.
    pub predicates: HashMap<String, PredicateStats>,
    /// Spatial index sketch.
    pub spatial: SpatialSketch,
    /// Temporal index sketch.
    pub temporal: TemporalSketch,
}

impl Stats {
    pub fn predicate(&self, iri: &str) -> Option<&PredicateStats> {
        self.predicates.get(iri)
    }

    /// Estimated matches for one triple pattern given which variables are
    /// already bound and any spatial/temporal constraints on its object.
    pub fn estimate_pattern(
        &self,
        pattern: &TriplePattern,
        is_bound: &dyn Fn(&str) -> bool,
        spatial: &HashMap<String, Envelope>,
        temporal: &HashMap<String, (i64, i64)>,
    ) -> f64 {
        let bound = |tp: &TermPattern| match tp {
            TermPattern::Term(_) => true,
            TermPattern::Var(v) => is_bound(v),
        };
        let pred = match &pattern.predicate {
            TermPattern::Term(applab_rdf::Term::Named(n)) => self.predicate(n.as_str()),
            _ => None,
        };
        let mut est = match pred {
            Some(p) => p.triples as f64,
            // Unknown or variable predicate: whole source; each bound
            // position is worth a flat guess (no per-position stats).
            None => self.total_triples as f64,
        };
        match pred {
            Some(p) => {
                if bound(&pattern.subject) {
                    est /= (p.distinct_subjects as f64).max(1.0);
                }
                if bound(&pattern.object) {
                    est /= (p.distinct_objects as f64).max(1.0);
                }
            }
            None => {
                const FLAT: f64 = 0.1;
                if bound(&pattern.subject) {
                    est *= FLAT;
                }
                if bound(&pattern.object) {
                    est *= FLAT;
                }
            }
        }
        // Constraints on the object variable scale by index selectivity.
        if let TermPattern::Var(v) = &pattern.object {
            if let Some(env) = spatial.get(v) {
                est *= self.spatial.selectivity(env);
            } else if let Some((lo, hi)) = temporal.get(v) {
                est *= self.temporal.selectivity(*lo, *hi);
            }
        }
        est.max(0.0)
    }

    /// Distinct values this pattern's statistics promise at a join
    /// position occupied by `var` (used as the denominator of the join
    /// estimate). `None` when the pattern gives no information.
    pub fn distinct_at(&self, pattern: &TriplePattern, var: &str) -> Option<f64> {
        let p = match &pattern.predicate {
            TermPattern::Term(applab_rdf::Term::Named(n)) => self.predicate(n.as_str())?,
            _ => return None,
        };
        if pattern.subject.as_var() == Some(var) {
            Some((p.distinct_subjects as f64).max(1.0))
        } else if pattern.object.as_var() == Some(var) {
            Some((p.distinct_objects as f64).max(1.0))
        } else {
            None
        }
    }
}

/// Textbook equi-join estimate: `|A| * |B| / max(d_key, 1)`.
pub fn estimate_join(est_a: f64, est_b: f64, d_key: f64) -> f64 {
    (est_a * est_b / d_key.max(1.0)).max(0.0)
}

/// The access path the planner picks for one scanned pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Plain index scan (SPO/POS/OSP or mapping expansion).
    Scan,
    /// R-tree constrained scan.
    Spatial,
    /// Sorted temporal index scan.
    Temporal,
}

impl AccessPath {
    pub fn tag(self) -> &'static str {
        match self {
            AccessPath::Scan => "scan",
            AccessPath::Spatial => "spatial",
            AccessPath::Temporal => "temporal",
        }
    }
}

/// Choose the access path for a pattern: the constrained index unless
/// the sketch *proves* it would not prune (the query range covers the
/// whole indexed extent). An unknown sketch (e.g. the OBDA structural
/// stats carry no bounds) keeps the pushdown — the planner-off behavior.
pub fn access_path(
    stats: &Stats,
    pattern: &TriplePattern,
    spatial: &HashMap<String, Envelope>,
    temporal: &HashMap<String, (i64, i64)>,
) -> AccessPath {
    if let TermPattern::Var(v) = &pattern.object {
        if let Some(env) = spatial.get(v) {
            // Any real pruning pays: every row the index skips is a row
            // the exact (far more expensive) geometry predicate never
            // sees downstream.
            let prunes = match &stats.spatial.bounds {
                None => true, // unknown extent: trying the index is free-ish
                Some(_) => stats.spatial.selectivity(env) < 1.0,
            };
            if prunes {
                return AccessPath::Spatial;
            }
        } else if let Some((lo, hi)) = temporal.get(v) {
            let prunes = stats.temporal.entries == 0 || stats.temporal.selectivity(*lo, *hi) < 1.0;
            if prunes {
                return AccessPath::Temporal;
            }
        }
    }
    AccessPath::Scan
}

/// The give-up threshold for *derived* (sideways) envelopes: unlike a
/// constant filter envelope — whose pruning always saves exact geometry
/// tests downstream — a sideways union envelope only narrows a scan whose
/// rows the hash join would discard anyway, and an R-tree walk costs
/// several times a plain predicate-column scan per produced row. Once a
/// partial union is this wide the finished envelope cannot win, so
/// computing the rest of it is wasted work.
pub const INDEX_SELECTIVITY_CUTOFF: f64 = 1.0 / 3.0;

/// Canonical, written-position-free text of a triple pattern; the
/// ordering tie-break and the fingerprint hash over these keys.
pub fn pattern_key(p: &TriplePattern) -> String {
    let one = |tp: &TermPattern| match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Term(t) => t.to_string(),
    };
    format!(
        "{} {} {}",
        one(&p.subject),
        one(&p.predicate),
        one(&p.object)
    )
}

/// One step of a planned BGP.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Index of the pattern in the *written* BGP.
    pub pattern: usize,
    /// Canonical pattern text ([`pattern_key`]).
    pub key: String,
    /// Chosen access path.
    pub access: AccessPath,
    /// Static cardinality estimate for the scan of this pattern.
    pub est_rows: f64,
}

/// Greedily order a BGP by estimated cardinality.
///
/// At every step the candidates are the remaining patterns that share a
/// variable with what is already bound (falling back to all of them when
/// none connects — a cross product is unavoidable then); among the
/// candidates the smallest static estimate wins, with ties broken by
/// canonical pattern text. Written position is never consulted, so two
/// permutations of the same BGP produce the same step sequence.
pub fn order_patterns(
    stats: &Stats,
    patterns: &[TriplePattern],
    input_bound: &HashSet<String>,
    spatial: &HashMap<String, Envelope>,
    temporal: &HashMap<String, (i64, i64)>,
) -> Vec<PlanStep> {
    // Keys and variable lists are loop-invariant; computing them once
    // keeps the greedy rounds allocation-free (this runs on every
    // planner-on evaluation, not just at EXPLAIN time).
    let keys: Vec<String> = patterns.iter().map(pattern_key).collect();
    let vars: Vec<Vec<&str>> = patterns.iter().map(|p| p.variables()).collect();
    let mut bound: HashSet<String> = input_bound.clone();
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut steps = Vec::with_capacity(patterns.len());
    while !remaining.is_empty() {
        let connected = |i: usize| vars[i].iter().any(|v| bound.contains(*v));
        let candidates: Vec<usize> = {
            let c: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| connected(i))
                .collect();
            if c.is_empty() {
                remaining.clone()
            } else {
                c
            }
        };
        let is_bound = |v: &str| bound.contains(v);
        let best = candidates
            .into_iter()
            .map(|i| {
                let est = stats.estimate_pattern(&patterns[i], &is_bound, spatial, temporal);
                (i, est)
            })
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| keys[a.0].cmp(&keys[b.0]))
            })
            .expect("candidates non-empty");
        let (idx, est) = best;
        let access = access_path(stats, &patterns[idx], spatial, temporal);
        steps.push(PlanStep {
            pattern: idx,
            key: keys[idx].clone(),
            access,
            est_rows: est,
        });
        bound.extend(vars[idx].iter().map(|v| v.to_string()));
        remaining.retain(|&i| i != idx);
    }
    steps
}

/// FNV-1a over the plan's (key, access) sequence.
pub fn fingerprint(steps: &[PlanStep]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for s in steps {
        eat(s.key.as_bytes());
        eat(b"\x1f");
        eat(s.access.tag().as_bytes());
        eat(b"\x1e");
    }
    h
}

/// Statically plan every BGP of a query pattern tree and fingerprint the
/// combined plan. Mirrors the evaluator's walk: `FILTER` constraints
/// narrow the spatial/temporal maps for the patterns beneath them, and
/// variables bound by earlier siblings count as bound input for later
/// ones. Used by EXPLAIN (the `plan` span) and by the QA metamorphic
/// "adversarial ordering" check.
pub fn query_plan(stats: &Stats, pattern: &GraphPattern) -> Vec<PlanStep> {
    let mut steps = Vec::new();
    let mut bound = HashSet::new();
    walk(
        stats,
        pattern,
        &HashMap::new(),
        &HashMap::new(),
        &mut bound,
        &mut steps,
    );
    steps
}

/// [`query_plan`] + [`fingerprint`] in one call.
pub fn query_fingerprint(stats: &Stats, pattern: &GraphPattern) -> u64 {
    fingerprint(&query_plan(stats, pattern))
}

fn walk(
    stats: &Stats,
    pattern: &GraphPattern,
    spatial: &HashMap<String, Envelope>,
    temporal: &HashMap<String, (i64, i64)>,
    bound: &mut HashSet<String>,
    steps: &mut Vec<PlanStep>,
) {
    match pattern {
        GraphPattern::Bgp(patterns) => {
            steps.extend(order_patterns(stats, patterns, bound, spatial, temporal));
            for p in patterns {
                bound.extend(p.variables().iter().map(|v| v.to_string()));
            }
        }
        GraphPattern::Filter(expr, inner) => {
            let mut sp = spatial.clone();
            for (v, env) in crate::eval::spatial_constraints(expr) {
                let merged = match sp.get(&v) {
                    Some(prev) => Envelope::new(
                        prev.min_x.max(env.min_x),
                        prev.min_y.max(env.min_y),
                        prev.max_x.min(env.max_x),
                        prev.max_y.min(env.max_y),
                    ),
                    None => env,
                };
                sp.insert(v, merged);
            }
            let mut tp = temporal.clone();
            for (v, (lo, hi)) in crate::eval::temporal_constraints(expr) {
                let merged = match tp.get(&v) {
                    Some((plo, phi)) => (lo.max(*plo), hi.min(*phi)),
                    None => (lo, hi),
                };
                tp.insert(v, merged);
            }
            walk(stats, inner, &sp, &tp, bound, steps);
        }
        GraphPattern::Join(a, b) => {
            walk(stats, a, spatial, temporal, bound, steps);
            walk(stats, b, spatial, temporal, bound, steps);
        }
        GraphPattern::LeftJoin(a, b) => {
            walk(stats, a, spatial, temporal, bound, steps);
            // The optional side sees the left's bindings but must not
            // leak its own into what follows.
            let mut inner_bound = bound.clone();
            walk(stats, b, spatial, temporal, &mut inner_bound, steps);
        }
        GraphPattern::Union(a, b) => {
            let mut left = bound.clone();
            walk(stats, a, spatial, temporal, &mut left, steps);
            let mut right = bound.clone();
            walk(stats, b, spatial, temporal, &mut right, steps);
            bound.extend(left);
            bound.extend(right);
        }
        GraphPattern::Extend(inner, var, _) => {
            walk(stats, inner, spatial, temporal, bound, steps);
            bound.insert(var.clone());
        }
        GraphPattern::Values(vars, _) => {
            bound.extend(vars.iter().cloned());
        }
    }
}

const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A zero-dependency blocked Bloom filter over term ids (~10 bits/key,
/// two probes → false-positive rate around 3%, bounded <5% by test).
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    const BITS_PER_KEY: usize = 10;

    pub fn new(expected: usize) -> Self {
        let bits = (expected.max(1) * Self::BITS_PER_KEY).next_power_of_two();
        let words = (bits / 64).max(1);
        Bloom {
            bits: vec![0; words],
            mask: (bits as u64) - 1,
        }
    }

    fn probes(&self, id: u64) -> (u64, u64) {
        let h1 = splitmix64(id);
        let h2 = splitmix64(id ^ 0xa5a5_a5a5_a5a5_a5a5);
        (h1 & self.mask, h2 & self.mask)
    }

    pub fn insert(&mut self, id: u64) {
        let (a, b) = self.probes(id);
        self.bits[(a / 64) as usize] |= 1 << (a % 64);
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
    }

    pub fn contains(&self, id: u64) -> bool {
        let (a, b) = self.probes(id);
        self.bits[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

/// The sideways filter one join's build side hands its probe side:
/// min/max id range plus a Bloom filter. Over-approximate by
/// construction — a passing id may still fail the join, a failing id
/// never joins.
#[derive(Debug, Clone)]
pub struct IdFilter {
    bloom: Bloom,
    min: u64,
    max: u64,
    len: usize,
}

impl IdFilter {
    /// Build from the build side's key column. `None` when empty (an
    /// empty build side short-circuits the join elsewhere).
    pub fn build(ids: &[u64]) -> Option<IdFilter> {
        let (mut min, mut max) = (u64::MAX, u64::MIN);
        let mut bloom = Bloom::new(ids.len());
        for &id in ids {
            min = min.min(id);
            max = max.max(id);
            bloom.insert(id);
        }
        if ids.is_empty() {
            return None;
        }
        Some(IdFilter {
            bloom,
            min,
            max,
            len: ids.len(),
        })
    }

    pub fn contains(&self, id: u64) -> bool {
        id >= self.min && id <= self.max && self.bloom.contains(id)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_rdf::Term;

    fn pat(s: &str, p: &str, o: &str) -> TriplePattern {
        let one = |t: &str| -> TermPattern {
            match t.strip_prefix('?') {
                Some(v) => TermPattern::var(v),
                None => Term::named(format!("http://ex/{t}")).into(),
            }
        };
        TriplePattern::new(one(s), one(p), one(o))
    }

    fn stats() -> Stats {
        let mut s = Stats {
            total_triples: 1000,
            ..Stats::default()
        };
        s.predicates.insert(
            "http://ex/rare".into(),
            PredicateStats {
                triples: 10,
                distinct_subjects: 10,
                distinct_objects: 5,
            },
        );
        s.predicates.insert(
            "http://ex/common".into(),
            PredicateStats {
                triples: 900,
                distinct_subjects: 300,
                distinct_objects: 90,
            },
        );
        s
    }

    #[test]
    fn pattern_estimates_follow_predicate_counts() {
        let s = stats();
        let none = |_: &str| false;
        let sp = HashMap::new();
        let tp = HashMap::new();
        assert_eq!(
            s.estimate_pattern(&pat("?a", "rare", "?b"), &none, &sp, &tp),
            10.0
        );
        assert_eq!(
            s.estimate_pattern(&pat("?a", "common", "?b"), &none, &sp, &tp),
            900.0
        );
        // Bound subject divides by distinct subjects: 900/300 = 3.
        assert_eq!(
            s.estimate_pattern(&pat("subj", "common", "?b"), &none, &sp, &tp),
            3.0
        );
        // Unknown predicate falls back to the total.
        assert_eq!(
            s.estimate_pattern(&pat("?a", "never-seen", "?b"), &none, &sp, &tp),
            1000.0
        );
        // Variable predicate: total, scaled per bound position.
        assert_eq!(
            s.estimate_pattern(&pat("subj", "?p", "?b"), &none, &sp, &tp),
            100.0
        );
    }

    #[test]
    fn spatial_selectivity_scales_by_overlap() {
        let sk = SpatialSketch {
            entries: 100,
            bounds: Some(Envelope::new(0.0, 0.0, 10.0, 10.0)),
        };
        assert_eq!(sk.selectivity(&Envelope::new(0.0, 0.0, 5.0, 10.0)), 0.5);
        assert_eq!(sk.selectivity(&Envelope::new(20.0, 20.0, 30.0, 30.0)), 0.0);
        assert_eq!(sk.selectivity(&Envelope::new(-5.0, -5.0, 15.0, 15.0)), 1.0);
    }

    #[test]
    fn temporal_selectivity_scales_by_overlap() {
        let sk = TemporalSketch {
            entries: 100,
            min: 0,
            max: 1000,
        };
        assert_eq!(sk.selectivity(0, 500), 0.5);
        assert_eq!(sk.selectivity(2000, 3000), 0.0);
        assert_eq!(sk.selectivity(-100, 1100), 1.0);
    }

    #[test]
    fn join_estimate_matches_formula() {
        assert_eq!(estimate_join(100.0, 50.0, 25.0), 200.0);
        // d_key below 1 clamps.
        assert_eq!(estimate_join(10.0, 10.0, 0.0), 100.0);
    }

    #[test]
    fn ordering_is_written_order_independent() {
        let s = stats();
        let a = pat("?x", "common", "?y");
        let b = pat("?y", "rare", "?z");
        let c = pat("?z", "common", "obj");
        let orders = [
            vec![a.clone(), b.clone(), c.clone()],
            vec![c.clone(), a.clone(), b.clone()],
            vec![b.clone(), c.clone(), a.clone()],
        ];
        let sp = HashMap::new();
        let tp = HashMap::new();
        let mut prints = Vec::new();
        for patterns in &orders {
            let steps = order_patterns(&s, patterns, &HashSet::new(), &sp, &tp);
            // Every permutation starts from the rare pattern.
            assert_eq!(steps[0].key, pattern_key(&b));
            prints.push(fingerprint(&steps));
        }
        assert!(prints.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn ordering_prefers_connected_patterns() {
        let s = stats();
        // `rare` is smallest, then the connected `common ?y` beats the
        // cheaper-looking but disconnected constant-object pattern only
        // through the connectivity rule.
        let patterns = vec![
            pat("?a", "common", "?unrelated"),
            pat("?x", "rare", "?y"),
            pat("?y", "common", "?z"),
        ];
        let steps = order_patterns(
            &s,
            &patterns,
            &HashSet::new(),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(steps[0].pattern, 1);
        assert_eq!(steps[1].pattern, 2, "connected pattern joins next");
        assert_eq!(steps[2].pattern, 0);
    }

    #[test]
    fn access_path_uses_index_only_when_it_prunes() {
        let mut s = stats();
        s.spatial = SpatialSketch {
            entries: 100,
            bounds: Some(Envelope::new(0.0, 0.0, 10.0, 10.0)),
        };
        let p = pat("?g", "common", "?wkt");
        let mut sp = HashMap::new();
        sp.insert("wkt".to_string(), Envelope::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(
            access_path(&s, &p, &sp, &HashMap::new()),
            AccessPath::Spatial
        );
        // An envelope covering the whole extent does not prune.
        sp.insert("wkt".to_string(), Envelope::new(-1.0, -1.0, 11.0, 11.0));
        assert_eq!(access_path(&s, &p, &sp, &HashMap::new()), AccessPath::Scan);
    }

    #[test]
    fn bloom_has_no_false_negatives_and_few_false_positives() {
        let members: Vec<u64> = (0..4096u64).map(|i| splitmix64(i * 3 + 1)).collect();
        let filter = IdFilter::build(&members).unwrap();
        for &m in &members {
            assert!(filter.contains(m), "false negative on {m}");
        }
        let mut false_positives = 0usize;
        let trials = 40_000usize;
        for i in 0..trials {
            let probe = splitmix64(0xdead_beef ^ (i as u64) << 17);
            if !members.contains(&probe) && filter.contains(probe) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / trials as f64;
        assert!(rate < 0.05, "false-positive rate {rate} ≥ 5%");
    }

    #[test]
    fn id_filter_min_max_prunes_out_of_range() {
        let filter = IdFilter::build(&[100, 200, 300]).unwrap();
        assert!(!filter.contains(5));
        assert!(!filter.contains(5000));
        assert!(filter.contains(200));
        assert!(IdFilter::build(&[]).is_none());
    }

    #[test]
    fn query_fingerprint_invariant_under_bgp_permutation() {
        let s = stats();
        let a = pat("?x", "common", "?y");
        let b = pat("?y", "rare", "?z");
        let fwd = GraphPattern::Bgp(vec![a.clone(), b.clone()]);
        let rev = GraphPattern::Bgp(vec![b, a]);
        assert_eq!(query_fingerprint(&s, &fwd), query_fingerprint(&s, &rev));
    }
}
