//! A SPARQL subset with the GeoSPARQL extension functions, as used by the
//! Copernicus App Lab stack (Listings 1 and 3 of the paper).
//!
//! Supported: `SELECT` (with `DISTINCT`, projection aliases, aggregates +
//! `GROUP BY`, `ORDER BY`, `LIMIT`/`OFFSET`), `ASK`, `CONSTRUCT`; graph
//! patterns with basic graph patterns, `FILTER`, `OPTIONAL`, `UNION`,
//! `BIND`, and `VALUES`; expressions with the SPARQL operators, string and
//! numeric builtins, and the OGC `geof:` functions over `geo:wktLiteral`
//! values.
//!
//! Evaluation is defined against the [`source::GraphSource`] trait so the
//! same engine runs over the materialized store (`applab-store`) and over
//! the OBDA virtual graphs (`applab-obda`). Sources may accelerate spatial
//! selections by implementing
//! [`source::GraphSource::triples_matching_spatial`], which the evaluator
//! calls with envelopes extracted from `geof:` filters — the pushdown that
//! Strabon and Ontop-spatial implement in the paper.
//!
//! The pipeline is instrumented with `applab-obs` spans
//! (`parse`/`sparql.evaluate`/`bgp`/`scan`/`join`/`filter`/`project`/
//! `aggregate`, plus `probe.chunk` on parallel-probe workers) and the
//! `applab_sparql_*` metrics; wrap a call in [`applab_obs::profile`] to get
//! the per-stage timing tree.
#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod algebra;
mod batch;
pub mod eval;
pub mod expr;
pub mod parser;
pub mod plan;
pub mod reference;
pub mod results;
pub mod source;

pub use algebra::{Expression, GraphPattern, Query, QueryForm, TermPattern, TriplePattern};
pub use eval::{evaluate, evaluate_with, Budget, EvalError, EvalOptions};
pub use parser::{parse_query, ParseError};
pub use plan::Stats;
pub use results::{JsonParseError, QueryResults, Row, JSON_FLUSH_BYTES};
pub use source::{GraphSource, IdAccess, IdColumns};

/// Parse and evaluate a query against a source in one call.
pub fn query(
    source: &dyn GraphSource,
    text: &str,
) -> Result<QueryResults, Box<dyn std::error::Error + Send + Sync>> {
    let q = parse_query(text)?;
    Ok(evaluate(source, &q)?)
}
