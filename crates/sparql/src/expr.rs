//! Expression evaluation, including the GeoSPARQL `geof:` functions.

use crate::algebra::Expression;
use applab_geo::algorithms as geoalg;
use applab_geo::{Geometry, Polygon, SpatialRelation};
use applab_rdf::{vocab, Literal, NamedNode, Term};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// A solution mapping: variable name → bound term.
pub type Binding = HashMap<String, Term>;

/// Expression evaluation error. In filter context errors are treated as
/// `false` (the SPARQL "error = unsatisfied" rule); in `BIND`/projection
/// context they leave the variable unbound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    Unbound(String),
    Type(String),
    UnknownFunction(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Unbound(v) => write!(f, "unbound variable ?{v}"),
            ExprError::Type(m) => write!(f, "type error: {m}"),
            ExprError::UnknownFunction(n) => write!(f, "unknown function <{n}>"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Evaluate an expression under a binding.
pub fn eval_expr(expr: &Expression, binding: &Binding) -> Result<Term, ExprError> {
    match expr {
        Expression::Var(v) => binding
            .get(v)
            .cloned()
            .ok_or_else(|| ExprError::Unbound(v.clone())),
        Expression::Constant(t) => Ok(t.clone()),
        Expression::And(a, b) => {
            // SPARQL logical-and with error handling: false && error = false.
            let lhs = eval_expr(a, binding).and_then(|t| ebv(&t));
            let rhs = eval_expr(b, binding).and_then(|t| ebv(&t));
            match (lhs, rhs) {
                (Ok(false), _) | (_, Ok(false)) => Ok(Literal::boolean(false).into()),
                (Ok(true), Ok(true)) => Ok(Literal::boolean(true).into()),
                (Err(e), _) | (_, Err(e)) => Err(e),
            }
        }
        Expression::Or(a, b) => {
            let lhs = eval_expr(a, binding).and_then(|t| ebv(&t));
            let rhs = eval_expr(b, binding).and_then(|t| ebv(&t));
            match (lhs, rhs) {
                (Ok(true), _) | (_, Ok(true)) => Ok(Literal::boolean(true).into()),
                (Ok(false), Ok(false)) => Ok(Literal::boolean(false).into()),
                (Err(e), _) | (_, Err(e)) => Err(e),
            }
        }
        Expression::Not(e) => {
            let v = ebv(&eval_expr(e, binding)?)?;
            Ok(Literal::boolean(!v).into())
        }
        Expression::Equal(a, b) => {
            let (a, b) = (eval_expr(a, binding)?, eval_expr(b, binding)?);
            Ok(Literal::boolean(terms_equal(&a, &b)).into())
        }
        Expression::NotEqual(a, b) => {
            let (a, b) = (eval_expr(a, binding)?, eval_expr(b, binding)?);
            Ok(Literal::boolean(!terms_equal(&a, &b)).into())
        }
        Expression::Less(a, b) => compare(a, b, binding, |o| o == Ordering::Less),
        Expression::LessOrEqual(a, b) => compare(a, b, binding, |o| o != Ordering::Greater),
        Expression::Greater(a, b) => compare(a, b, binding, |o| o == Ordering::Greater),
        Expression::GreaterOrEqual(a, b) => compare(a, b, binding, |o| o != Ordering::Less),
        Expression::Add(a, b) => arith(a, b, binding, |x, y| x + y),
        Expression::Subtract(a, b) => arith(a, b, binding, |x, y| x - y),
        Expression::Multiply(a, b) => arith(a, b, binding, |x, y| x * y),
        Expression::Divide(a, b) => {
            let x = numeric(&eval_expr(a, binding)?)?;
            let y = numeric(&eval_expr(b, binding)?)?;
            if y == 0.0 {
                return Err(ExprError::Type("division by zero".into()));
            }
            Ok(Literal::double(x / y).into())
        }
        Expression::UnaryMinus(e) => {
            let x = numeric(&eval_expr(e, binding)?)?;
            Ok(Literal::double(-x).into())
        }
        Expression::Bound(v) => Ok(Literal::boolean(binding.contains_key(v)).into()),
        Expression::If(c, t, e) => {
            if ebv(&eval_expr(c, binding)?)? {
                eval_expr(t, binding)
            } else {
                eval_expr(e, binding)
            }
        }
        Expression::Call(func, args) => call(func, args, binding),
    }
}

/// Evaluate an expression as a filter condition: errors become `false`.
pub fn eval_filter(expr: &Expression, binding: &Binding) -> bool {
    eval_expr(expr, binding)
        .and_then(|t| ebv(&t))
        .unwrap_or(false)
}

/// Effective boolean value.
pub fn ebv(term: &Term) -> Result<bool, ExprError> {
    match term {
        Term::Literal(l) => {
            if let Some(b) = l.as_bool() {
                Ok(b)
            } else if let Some(n) = l.as_f64() {
                Ok(n != 0.0 && !n.is_nan())
            } else if l.datatype().as_str() == vocab::xsd::STRING {
                Ok(!l.value().is_empty())
            } else {
                Err(ExprError::Type(format!("no boolean value for {l}")))
            }
        }
        other => Err(ExprError::Type(format!("no boolean value for {other}"))),
    }
}

fn terms_equal(a: &Term, b: &Term) -> bool {
    if a == b {
        return true;
    }
    // Numeric value equality across datatypes (`"3"^^int = "3.0"^^double`).
    if let (Term::Literal(la), Term::Literal(lb)) = (a, b) {
        if let (Some(x), Some(y)) = (la.as_f64(), lb.as_f64()) {
            return x == y;
        }
        if let (Some(x), Some(y)) = (la.as_datetime(), lb.as_datetime()) {
            return x == y;
        }
        // Same lexical form, string-ish types.
        return la.value() == lb.value()
            && la.datatype() == lb.datatype()
            && la.language() == lb.language();
    }
    false
}

/// SPARQL operator `<`/`>` ordering over literals.
pub fn compare_terms(a: &Term, b: &Term) -> Option<Ordering> {
    match (a, b) {
        (Term::Literal(la), Term::Literal(lb)) => {
            if let (Some(x), Some(y)) = (la.as_f64(), lb.as_f64()) {
                return x.partial_cmp(&y);
            }
            if let (Some(x), Some(y)) = (la.as_datetime(), lb.as_datetime()) {
                return Some(x.cmp(&y));
            }
            if la.datatype() == lb.datatype() {
                return Some(la.value().cmp(lb.value()));
            }
            None
        }
        (Term::Named(x), Term::Named(y)) => Some(x.as_str().cmp(y.as_str())),
        _ => None,
    }
}

fn compare(
    a: &Expression,
    b: &Expression,
    binding: &Binding,
    pred: impl Fn(Ordering) -> bool,
) -> Result<Term, ExprError> {
    let (a, b) = (eval_expr(a, binding)?, eval_expr(b, binding)?);
    let ord = compare_terms(&a, &b)
        .ok_or_else(|| ExprError::Type(format!("cannot compare {a} and {b}")))?;
    Ok(Literal::boolean(pred(ord)).into())
}

fn numeric(t: &Term) -> Result<f64, ExprError> {
    t.as_literal()
        .and_then(Literal::as_f64)
        .ok_or_else(|| ExprError::Type(format!("not a number: {t}")))
}

fn arith(
    a: &Expression,
    b: &Expression,
    binding: &Binding,
    op: impl Fn(f64, f64) -> f64,
) -> Result<Term, ExprError> {
    let x = numeric(&eval_expr(a, binding)?)?;
    let y = numeric(&eval_expr(b, binding)?)?;
    Ok(Literal::double(op(x, y)).into())
}

fn geometry_arg(t: &Term) -> Result<Geometry, ExprError> {
    t.as_literal()
        .and_then(Literal::as_geometry)
        .ok_or_else(|| ExprError::Type(format!("not a geometry literal: {t}")))
}

// The unary geof: projections, shared with the evaluator's vectorized
// expression path so both produce bit-identical terms.

pub(crate) fn geof_area_of(g: &Geometry) -> Term {
    Literal::double(geoalg::area(g)).into()
}

pub(crate) fn geof_envelope_of(g: &Geometry) -> Term {
    let e = g.envelope();
    let poly = Polygon::rect(e.min_x, e.min_y, e.max_x, e.max_y);
    Literal::wkt(applab_geo::write_wkt(&Geometry::Polygon(poly))).into()
}

pub(crate) fn geof_convex_hull_of(g: &Geometry) -> Term {
    let hull = geoalg::convex_hull(g)
        .map(Geometry::Polygon)
        .unwrap_or_else(|| g.clone());
    Literal::wkt(applab_geo::write_wkt(&hull)).into()
}

fn string_arg(t: &Term) -> Result<String, ExprError> {
    match t {
        Term::Literal(l) => Ok(l.value().to_string()),
        Term::Named(n) => Ok(n.as_str().to_string()),
        Term::Blank(_) => Err(ExprError::Type("blank node has no string value".into())),
    }
}

/// Dispatch a function call: `geof:` spatial functions (by full IRI) and the
/// SPARQL builtins (by `builtin:` pseudo-IRI assigned by the parser).
fn call(func: &NamedNode, args: &[Expression], binding: &Binding) -> Result<Term, ExprError> {
    let evaluated: Result<Vec<Term>, ExprError> =
        args.iter().map(|a| eval_expr(a, binding)).collect();
    let argv = evaluated?;
    let iri = func.as_str();

    // GeoSPARQL simple-features predicates.
    if let Some(local) = iri.strip_prefix(vocab::geof::NS) {
        if let Some(rel) = SpatialRelation::from_geof_name(local) {
            if argv.len() != 2 {
                return Err(ExprError::Type(format!("{local} expects 2 arguments")));
            }
            let a = geometry_arg(&argv[0])?;
            let b = geometry_arg(&argv[1])?;
            return Ok(Literal::boolean(rel.evaluate(&a, &b)).into());
        }
        return match local {
            "distance" => {
                // Accept the optional units argument and ignore it: all our
                // data is in one planar CRS.
                if argv.len() < 2 {
                    return Err(ExprError::Type("distance expects 2 arguments".into()));
                }
                let a = geometry_arg(&argv[0])?;
                let b = geometry_arg(&argv[1])?;
                Ok(Literal::double(geoalg::distance(&a, &b)).into())
            }
            "buffer" => {
                if argv.len() < 2 {
                    return Err(ExprError::Type("buffer expects 2 arguments".into()));
                }
                let g = geometry_arg(&argv[0])?;
                let d = numeric(&argv[1])?;
                // Envelope-based buffer: exact for envelope queries, an
                // over-approximation otherwise (documented in DESIGN.md).
                let e = g.envelope().buffered(d);
                let poly = Polygon::rect(e.min_x, e.min_y, e.max_x, e.max_y);
                Ok(Literal::wkt(applab_geo::write_wkt(&Geometry::Polygon(poly))).into())
            }
            "envelope" => Ok(geof_envelope_of(&geometry_arg(&argv[0])?)),
            "area" => Ok(geof_area_of(&geometry_arg(&argv[0])?)),
            "convexHull" => Ok(geof_convex_hull_of(&geometry_arg(&argv[0])?)),
            other => Err(ExprError::UnknownFunction(format!("geof:{other}"))),
        };
    }

    // SPARQL builtins (parser encodes them as `builtin:<lowercase-name>`).
    if let Some(name) = iri.strip_prefix("builtin:") {
        return builtin(name, &argv);
    }

    Err(ExprError::UnknownFunction(iri.to_string()))
}

fn builtin(name: &str, argv: &[Term]) -> Result<Term, ExprError> {
    let one = || -> Result<&Term, ExprError> {
        argv.first()
            .ok_or_else(|| ExprError::Type(format!("{name} expects an argument")))
    };
    match name {
        "str" => Ok(Literal::string(string_arg(one()?)?).into()),
        "strlen" => Ok(Literal::integer(string_arg(one()?)?.chars().count() as i64).into()),
        "ucase" => Ok(Literal::string(string_arg(one()?)?.to_uppercase()).into()),
        "lcase" => Ok(Literal::string(string_arg(one()?)?.to_lowercase()).into()),
        "contains" => {
            let h = string_arg(one()?)?;
            let n = string_arg(
                argv.get(1)
                    .ok_or_else(|| ExprError::Type("contains expects 2 arguments".into()))?,
            )?;
            Ok(Literal::boolean(h.contains(&n)).into())
        }
        "strstarts" => {
            let h = string_arg(one()?)?;
            let n = string_arg(
                argv.get(1)
                    .ok_or_else(|| ExprError::Type("strstarts expects 2 arguments".into()))?,
            )?;
            Ok(Literal::boolean(h.starts_with(&n)).into())
        }
        "strends" => {
            let h = string_arg(one()?)?;
            let n = string_arg(
                argv.get(1)
                    .ok_or_else(|| ExprError::Type("strends expects 2 arguments".into()))?,
            )?;
            Ok(Literal::boolean(h.ends_with(&n)).into())
        }
        "concat" => {
            let mut out = String::new();
            for a in argv {
                out.push_str(&string_arg(a)?);
            }
            Ok(Literal::string(out).into())
        }
        "abs" => Ok(Literal::double(numeric(one()?)?.abs()).into()),
        "ceil" => Ok(Literal::double(numeric(one()?)?.ceil()).into()),
        "floor" => Ok(Literal::double(numeric(one()?)?.floor()).into()),
        "round" => Ok(Literal::double(numeric(one()?)?.round()).into()),
        "lang" => match one()? {
            Term::Literal(l) => Ok(Literal::string(l.language().unwrap_or("")).into()),
            other => Err(ExprError::Type(format!("LANG of non-literal {other}"))),
        },
        "datatype" => match one()? {
            Term::Literal(l) => Ok(Term::Named(l.datatype().clone())),
            other => Err(ExprError::Type(format!("DATATYPE of non-literal {other}"))),
        },
        "isiri" | "isuri" => Ok(Literal::boolean(matches!(one()?, Term::Named(_))).into()),
        "isliteral" => Ok(Literal::boolean(matches!(one()?, Term::Literal(_))).into()),
        "isblank" => Ok(Literal::boolean(matches!(one()?, Term::Blank(_))).into()),
        "isnumeric" => {
            Ok(Literal::boolean(one()?.as_literal().and_then(Literal::as_f64).is_some()).into())
        }
        "year" => temporal_part(one()?, |_, y, _, _| y),
        "month" => temporal_part(one()?, |_, _, m, _| m as i64),
        "day" => temporal_part(one()?, |_, _, _, d| d as i64),
        other => Err(ExprError::UnknownFunction(format!("builtin:{other}"))),
    }
}

fn temporal_part(t: &Term, pick: impl Fn(i64, i64, u32, u32) -> i64) -> Result<Term, ExprError> {
    let secs = t
        .as_literal()
        .and_then(Literal::as_datetime)
        .ok_or_else(|| ExprError::Type(format!("not a dateTime: {t}")))?;
    let (y, m, d) = applab_rdf::datetime::civil_from_days(secs.div_euclid(86_400));
    Ok(Literal::integer(pick(secs, y, m, d)).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, Term)]) -> Binding {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn num(e: f64) -> Expression {
        Expression::Constant(Literal::double(e).into())
    }

    #[test]
    fn arithmetic_and_comparison() {
        let binding = Binding::new();
        let e = Expression::Less(
            Box::new(Expression::Add(Box::new(num(1.0)), Box::new(num(2.0)))),
            Box::new(num(4.0)),
        );
        assert!(eval_filter(&e, &binding));
        let e = Expression::Divide(Box::new(num(1.0)), Box::new(num(0.0)));
        assert!(eval_expr(&e, &binding).is_err());
    }

    #[test]
    fn cross_datatype_numeric_equality() {
        let binding = Binding::new();
        let e = Expression::Equal(
            Box::new(Expression::Constant(Literal::integer(3).into())),
            Box::new(Expression::Constant(Literal::double(3.0).into())),
        );
        assert!(eval_filter(&e, &binding));
    }

    #[test]
    fn unbound_var_fails_filter() {
        let e = Expression::Greater(Box::new(Expression::Var("lai".into())), Box::new(num(0.0)));
        assert!(!eval_filter(&e, &Binding::new()));
        assert!(eval_filter(&e, &b(&[("lai", Literal::float(3.0).into())])));
    }

    #[test]
    fn bound_builtin() {
        let e = Expression::Bound("x".into());
        assert!(!eval_filter(&e, &Binding::new()));
        assert!(eval_filter(&e, &b(&[("x", Literal::string("v").into())])));
    }

    #[test]
    fn sf_intersects_call() {
        let call = Expression::Call(
            NamedNode::new(vocab::geof::SF_INTERSECTS),
            vec![
                Expression::Constant(Literal::wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").into()),
                Expression::Constant(Literal::wkt("POINT (2 2)").into()),
            ],
        );
        assert!(eval_filter(&call, &Binding::new()));
        let call = Expression::Call(
            NamedNode::new(vocab::geof::SF_DISJOINT),
            vec![
                Expression::Constant(Literal::wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").into()),
                Expression::Constant(Literal::wkt("POINT (9 9)").into()),
            ],
        );
        assert!(eval_filter(&call, &Binding::new()));
    }

    #[test]
    fn geof_distance_and_area() {
        let d = Expression::Call(
            NamedNode::new(vocab::geof::DISTANCE),
            vec![
                Expression::Constant(Literal::wkt("POINT (0 0)").into()),
                Expression::Constant(Literal::wkt("POINT (3 4)").into()),
            ],
        );
        let t = eval_expr(&d, &Binding::new()).unwrap();
        assert_eq!(t.as_literal().unwrap().as_f64(), Some(5.0));

        let a = Expression::Call(
            NamedNode::new(vocab::geof::AREA),
            vec![Expression::Constant(
                Literal::wkt("POLYGON ((0 0, 2 0, 2 3, 0 3, 0 0))").into(),
            )],
        );
        let t = eval_expr(&a, &Binding::new()).unwrap();
        assert_eq!(t.as_literal().unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn geof_buffer_grows_envelope() {
        let e = Expression::Call(
            NamedNode::new(vocab::geof::BUFFER),
            vec![
                Expression::Constant(Literal::wkt("POINT (5 5)").into()),
                num(1.0),
            ],
        );
        let t = eval_expr(&e, &Binding::new()).unwrap();
        let g = t.as_literal().unwrap().as_geometry().unwrap();
        assert_eq!(g.envelope(), applab_geo::Envelope::new(4.0, 4.0, 6.0, 6.0));
    }

    #[test]
    fn string_builtins() {
        let binding = Binding::new();
        let c = Expression::Call(
            NamedNode::new("builtin:contains"),
            vec![
                Expression::Constant(Literal::string("Bois de Boulogne").into()),
                Expression::Constant(Literal::string("Boulogne").into()),
            ],
        );
        assert!(eval_filter(&c, &binding));
        let u = Expression::Call(
            NamedNode::new("builtin:ucase"),
            vec![Expression::Constant(Literal::string("lai").into())],
        );
        assert_eq!(
            eval_expr(&u, &binding)
                .unwrap()
                .as_literal()
                .unwrap()
                .value(),
            "LAI"
        );
    }

    #[test]
    fn datetime_comparison_and_parts() {
        let dt1 = Literal::datetime(applab_rdf::datetime::timestamp(2017, 6, 15, 0, 0, 0));
        let dt2 = Literal::datetime(applab_rdf::datetime::timestamp(2018, 1, 1, 0, 0, 0));
        let e = Expression::Less(
            Box::new(Expression::Constant(dt1.clone().into())),
            Box::new(Expression::Constant(dt2.into())),
        );
        assert!(eval_filter(&e, &Binding::new()));
        let y = Expression::Call(
            NamedNode::new("builtin:year"),
            vec![Expression::Constant(dt1.into())],
        );
        assert_eq!(
            eval_expr(&y, &Binding::new())
                .unwrap()
                .as_literal()
                .unwrap()
                .as_f64(),
            Some(2017.0)
        );
    }

    #[test]
    fn if_and_logic() {
        let binding = Binding::new();
        let e = Expression::If(
            Box::new(Expression::Constant(Literal::boolean(true).into())),
            Box::new(num(1.0)),
            Box::new(num(2.0)),
        );
        assert_eq!(
            eval_expr(&e, &binding)
                .unwrap()
                .as_literal()
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        // false && error = false (error does not propagate).
        let e = Expression::And(
            Box::new(Expression::Constant(Literal::boolean(false).into())),
            Box::new(Expression::Var("missing".into())),
        );
        assert!(!eval_filter(&e, &binding));
        // true || error = true.
        let e = Expression::Or(
            Box::new(Expression::Constant(Literal::boolean(true).into())),
            Box::new(Expression::Var("missing".into())),
        );
        assert!(eval_filter(&e, &binding));
    }

    #[test]
    fn type_check_builtins() {
        let binding = Binding::new();
        let e = Expression::Call(
            NamedNode::new("builtin:isiri"),
            vec![Expression::Constant(Term::named("http://x"))],
        );
        assert!(eval_filter(&e, &binding));
        let e = Expression::Call(
            NamedNode::new("builtin:isnumeric"),
            vec![Expression::Constant(Literal::string("x").into())],
        );
        assert!(!eval_filter(&e, &binding));
    }

    #[test]
    fn unknown_function_errors() {
        let e = Expression::Call(NamedNode::new("http://nope/f"), vec![]);
        assert!(matches!(
            eval_expr(&e, &Binding::new()),
            Err(ExprError::UnknownFunction(_))
        ));
    }
}
