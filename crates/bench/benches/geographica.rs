//! Criterion bench for B2/B3: mini-Geographica across the three engines.

use applab_bench::{geographica_queries, geographica_setup, run_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_geographica(c: &mut Criterion) {
    let setup = geographica_setup(2019, 16);
    let mut group = c.benchmark_group("geographica");
    group.sample_size(10);
    for (name, query) in geographica_queries() {
        group.bench_with_input(BenchmarkId::new("strabon", name), &query, |b, q| {
            b.iter(|| run_query(&setup.strabon, q))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &query, |b, q| {
            b.iter(|| run_query(&setup.naive, q))
        });
        group.bench_with_input(BenchmarkId::new("ontop", name), &query, |b, q| {
            b.iter(|| run_query(&setup.ontop, q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_geographica);
criterion_main!(benches);
