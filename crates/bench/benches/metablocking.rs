//! Criterion bench for B6: multi-core link discovery.

use applab_data::er::workload;
use applab_link::{discover_links_parallel, Comparison, Entity, LinkRule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_metablocking(c: &mut Criterion) {
    let w = workload(2019, 400);
    let left: Vec<Entity> = Entity::all_from_graph(&w.left)
        .into_iter()
        .filter(|e| e.name.is_some())
        .collect();
    let right: Vec<Entity> = Entity::all_from_graph(&w.right)
        .into_iter()
        .filter(|e| e.name.is_some())
        .collect();
    let rule = LinkRule::same_as(
        vec![
            (Comparison::NameLevenshtein, 0.6),
            (Comparison::SpatialProximity { max_distance: 0.05 }, 0.4),
        ],
        0.8,
    );

    let mut group = c.benchmark_group("metablocking");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    discover_links_parallel(&left, &right, &rule, workers)
                        .links
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_metablocking);
criterion_main!(benches);
