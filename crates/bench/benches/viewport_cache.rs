//! Criterion bench for B7: DAP tile caching vs WCS bbox caching under a
//! panning viewport trace.

use applab_bench::viewport_trace;
use applab_dap::clock::ManualClock;
use applab_dap::server::grid_dataset;
use applab_dap::transport::Local;
use applab_dap::{DapClient, DapServer};
use applab_sdl::{BboxFetcher, TiledFetcher};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_viewport(c: &mut Criterion) {
    let server = Arc::new(DapServer::new());
    let lats: Vec<f64> = (0..120).map(|i| 48.6 + i as f64 * 0.003).collect();
    let lons: Vec<f64> = (0..120).map(|i| 2.0 + i as f64 * 0.005).collect();
    server.publish(grid_dataset("lai", &[0.0], &lats, &lons, |t, la, lo| {
        (t + la + lo) as f64
    }));
    let trace = viewport_trace(2019, 40);

    let mut group = c.benchmark_group("viewport_cache");
    group.sample_size(10);
    group.bench_function("dap_tiles", |b| {
        b.iter(|| {
            let client = Arc::new(DapClient::new(server.clone(), Arc::new(Local::new())));
            let f = TiledFetcher::open(client, "lai", "LAI", 5, ManualClock::new()).unwrap();
            let mut hits = 0;
            for v in &trace {
                hits += f.fetch_viewport(v, 0).unwrap().cache_hits;
            }
            hits
        })
    });
    group.bench_function("wcs_bbox", |b| {
        b.iter(|| {
            let client = Arc::new(DapClient::new(server.clone(), Arc::new(Local::new())));
            let f = BboxFetcher::open(client, "lai", "LAI", ManualClock::new()).unwrap();
            let mut hits = 0;
            for v in &trace {
                hits += f.fetch_viewport(v, 0).unwrap().cache_hits;
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_viewport);
criterion_main!(benches);
