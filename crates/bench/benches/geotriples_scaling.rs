//! Criterion bench for B5: GeoTriples mapping-processor scaling.

use applab_data::World;
use applab_geo::Envelope;
use applab_geotriples::{parse_mappings, process_parallel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_geotriples(c: &mut Criterion) {
    let world = World::generate(2019, Envelope::new(2.0, 48.0, 3.0, 49.0), 60);
    let table = world.corine_table();
    let mapping = &parse_mappings(applab_data::mappings::CORINE_MAPPING).unwrap()[0];

    let mut group = c.benchmark_group("geotriples_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| process_parallel(mapping, &table, workers).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_geotriples);
criterion_main!(benches);
