//! Criterion bench for B1: on-the-fly OPeNDAP vs materialized store.
//!
//! The WAN here actually sleeps (scaled down to keep the bench short:
//! 2 ms RTT instead of 40 ms — the *ratio* is what matters).

use applab_dap::clock::ManualClock;
use applab_dap::transport::SimulatedWan;
use applab_dap::{DapClient, DapServer};
use applab_data::{grids, mappings, ParisFixture};
use applab_obda::{DataSource, OpendapTable, VirtualGraph};
use applab_store::SpatioTemporalStore;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

const QUERY: &str = r#"SELECT ?s ?lai WHERE {
  ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?w .
  FILTER(geof:sfWithin(?w, "POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.88, 2.21 48.85))"^^geo:wktLiteral))
}"#;

fn bench_ondemand(c: &mut Criterion) {
    let fixture = ParisFixture::generate(7, 10, 8);
    let mut lai = grids::lai_dataset(
        &fixture.world,
        &grids::GridSpec {
            resolution: 12,
            times: vec![0, 86_400],
            noise: 0.0,
            seed: 7,
        },
    );
    lai.name = "lai_300m".into();
    let server = Arc::new(DapServer::new());
    server.publish(lai);
    let wan = Arc::new(SimulatedWan::new(Duration::from_millis(2), 50e6, true));
    let client = Arc::new(DapClient::new(server, wan));

    let mut ds = DataSource::new();
    ds.add_opendap(
        "lai_300m",
        "LAI",
        Arc::new(OpendapTable::new(
            client,
            "lai_300m",
            "LAI",
            Duration::ZERO,
            ManualClock::new(),
        )),
    );
    let vg = VirtualGraph::new(
        ds,
        applab_geotriples::parse_mappings(&mappings::opendap_lai_mapping("lai_300m", 0)).unwrap(),
    )
    .unwrap();
    let store = SpatioTemporalStore::from_graph(&vg.materialize().unwrap());

    let mut group = c.benchmark_group("ondemand_vs_materialized");
    group.sample_size(10);
    group.bench_function("on_the_fly_opendap", |b| {
        b.iter(|| applab_sparql::query(&vg, QUERY).unwrap().len())
    });
    group.bench_function("materialized_store", |b| {
        b.iter(|| applab_sparql::query(&store, QUERY).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_ondemand);
criterion_main!(benches);
