//! Criterion bench for B4: the `opendap` virtual table with and without
//! the time-window cache.

use applab_dap::clock::ManualClock;
use applab_dap::server::grid_dataset;
use applab_dap::transport::Local;
use applab_dap::{DapClient, DapServer};
use applab_obda::vtable::{OpendapTable, VirtualTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_cache(c: &mut Criterion) {
    let server = Arc::new(DapServer::new());
    server.publish(grid_dataset(
        "lai",
        &[0.0, 864_000.0],
        &(0..24).map(|i| 48.0 + i as f64 * 0.01).collect::<Vec<_>>(),
        &(0..24).map(|i| 2.0 + i as f64 * 0.01).collect::<Vec<_>>(),
        |t, la, lo| (t + la + lo) as f64,
    ));
    let client = Arc::new(DapClient::new(server, Arc::new(Local::new())));

    let uncached = OpendapTable::new(
        client.clone(),
        "lai",
        "LAI",
        Duration::ZERO,
        ManualClock::new(),
    );
    let cached = OpendapTable::new(
        client,
        "lai",
        "LAI",
        Duration::from_secs(600),
        ManualClock::new(),
    );

    let mut group = c.benchmark_group("cache_window");
    group.bench_function("w=0 (refetch every call)", |b| {
        b.iter(|| uncached.open().unwrap().rows.len())
    });
    group.bench_function("w=600s (window cache)", |b| {
        b.iter(|| cached.open().unwrap().rows.len())
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
