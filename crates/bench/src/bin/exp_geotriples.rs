//! Experiment B5: GeoTriples mapping-processor scaling.
//!
//! Paper claim C5: "GeoTriples is very efficient especially when its
//! mapping processor is implemented using Apache Hadoop" \[22\] — i.e. the
//! transformation parallelizes. Expected shape: near-linear speedup up to
//! the physical core count.

use applab_bench::print_table;
use applab_data::{ParisFixture, World};
use applab_geo::Envelope;
use applab_geotriples::{parse_mappings, process_parallel};
use std::time::Instant;

fn main() {
    let cells = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120usize);
    // A large CORINE-like source.
    let world = World::generate(2019, Envelope::new(2.0, 48.0, 4.0, 50.0), cells);
    let table = world.corine_table();
    let mapping = &parse_mappings(applab_data::mappings::CORINE_MAPPING).unwrap()[0];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "CORINE-like source: {} rows → {} triple templates each ({} cores available)",
        table.rows.len(),
        mapping.target.len(),
        cores
    );

    // Warm up (allocator, page cache), then measure.
    let g1 = process_parallel(mapping, &table, 1);

    let mut rows = Vec::new();
    let mut t1 = 0.0;
    for workers in [1usize, 2, 4, 8, 16] {
        // Best of 3 per configuration.
        let mut t = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let g = process_parallel(mapping, &table, workers);
            t = t.min(start.elapsed().as_secs_f64());
            assert_eq!(g.len(), g1.len());
        }
        let g = process_parallel(mapping, &table, workers);
        if workers == 1 {
            t1 = t;
        }
        rows.push(vec![
            format!("{workers}"),
            format!("{:.1}", t * 1000.0),
            format!("{:.0}k", g.len() as f64 / t / 1000.0),
            format!("{:.2}x", t1 / t),
        ]);
    }
    print_table(
        &format!(
            "B5: GeoTriples parallel mapping processor ({} triples)",
            g1.len()
        ),
        &["workers", "time (ms)", "triples/s", "speedup"],
        &rows,
    );
    // The Paris fixture as a smoke check that realistic inputs behave.
    let f = ParisFixture::generate(1, 24, 8);
    let small = process_parallel(mapping, &f.world.corine_table(), 4);
    println!("\n(Paris fixture sanity: {} triples)", small.len());

    applab_bench::dump_metrics("geotriples");
}
