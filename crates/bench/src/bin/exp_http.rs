//! Experiment B11: end-to-end SPARQL Protocol throughput and latency.
//!
//! Where B9 measured the service in-process, this harness pays the whole
//! wire bill: the mini-Geographica mix arrives as real HTTP requests over
//! TCP (`applab-http` server, persistent keep-alive connections), and
//! every response is parsed back off the socket — W3C Results JSON,
//! chunked or fixed-length as the server chose. The load is *open-loop*
//! (arrivals on a fixed schedule, latency measured from the schedule),
//! offered at ~60% of a quick closed-loop capacity estimate so the sweep
//! characterizes the server below saturation rather than its overload
//! queue.
//!
//! Appends an `"http_sweeps"` array (1 and 8 connections: achieved req/s
//! plus p50/p95/p99) to the `BENCH_service.json` that `exp_service`
//! wrote, so the in-process and end-to-end numbers for the same workload
//! sit side by side; writes a standalone document if B9 has not run.
//!
//! `--serve [addr]` instead binds the same fixture service and blocks —
//! the CI smoke test curls /healthz, /sparql, and /metrics against it.

use applab_bench::httpload::{open_loop_sweep, percent_encode, HttpClient, LoadReport};
use applab_bench::{geographica_queries, print_table};
use applab_core::MaterializedWorkflow;
use applab_data::{mappings, ParisFixture};
use applab_http::{HttpConfig, HttpServer};
use applab_service::{ApplabService, ServiceConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const SWEEP_REQUESTS: usize = 192;
const CONNECTION_COUNTS: [usize; 2] = [1, 8];
/// Fraction of estimated capacity the open-loop schedule offers.
const TARGET_UTILIZATION: f64 = 0.6;
/// Closed-loop requests used to estimate capacity before the sweeps.
const CALIBRATION_REQUESTS: usize = 32;

fn build_service(cells: usize) -> ApplabService {
    let fixture = ParisFixture::generate(2019, cells, 8);
    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        mat.load_table(&table, doc).expect("fixture tables load");
    }
    ApplabService::new(ServiceConfig {
        max_in_flight: 8,
        max_queue: 64,
        queue_timeout: std::time::Duration::from_secs(30),
        ..ServiceConfig::default()
    })
    .with_endpoint("store", Arc::new(mat))
}

fn sparql_targets() -> Vec<String> {
    geographica_queries()
        .into_iter()
        .map(|(_, sparql)| format!("/sparql?query={}", percent_encode(&sparql)))
        .collect()
}

/// Closed-loop single-connection pass: estimates per-request service
/// time on this host so the open-loop schedule can stay below the knee.
fn estimate_capacity_rps(addr: SocketAddr, targets: &[String]) -> f64 {
    let mut client = HttpClient::connect(addr).expect("calibration connect");
    // One warmup lap (first-touch caches, JIT-ish lazy init).
    for target in targets {
        let resp = client.get(target).expect("calibration request");
        assert_eq!(resp.status, 200, "calibration must succeed");
    }
    let started = Instant::now();
    for i in 0..CALIBRATION_REQUESTS {
        let resp = client
            .get(&targets[i % targets.len()])
            .expect("calibration request");
        assert_eq!(resp.status, 200, "calibration must succeed");
    }
    CALIBRATION_REQUESTS as f64 / started.elapsed().as_secs_f64()
}

fn serve_forever(addr: &str) {
    let service = Arc::new(build_service(12));
    let server =
        HttpServer::bind(addr, service, HttpConfig::default()).expect("bind serve address");
    println!("serving on http://{}", server.local_addr());
    // Block until killed; the smoke test curls us meanwhile.
    loop {
        std::thread::park();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        let addr = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("127.0.0.1:0");
        serve_forever(addr);
        return;
    }
    let cells = args.first().and_then(|a| a.parse().ok()).unwrap_or(12usize);

    let service = Arc::new(build_service(cells));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        service,
        HttpConfig {
            workers: 8,
            ..HttpConfig::default()
        },
    )
    .expect("bind http server");
    let addr = server.local_addr();
    let targets = sparql_targets();

    let capacity = estimate_capacity_rps(addr, &targets);
    println!(
        "http sweep: {SWEEP_REQUESTS} mixed Geographica requests over real TCP \
         (server {addr}, single-connection capacity ~{capacity:.0} req/s)"
    );

    // More connections only add capacity up to the core count (one
    // busy worker per core); offering capacity x conns on a 1-vCPU CI
    // host would measure the overload queue, not the server.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reports: Vec<LoadReport> = CONNECTION_COUNTS
        .iter()
        .map(|&conns| {
            let offered = capacity * TARGET_UTILIZATION * conns.min(cores) as f64;
            open_loop_sweep(addr, &targets, conns, offered, SWEEP_REQUESTS)
        })
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.connections.to_string(),
                format!("{:.1}", r.offered_rps),
                format!("{:.1}", r.achieved_rps),
                format!("{:.2}", r.p50.as_secs_f64() * 1e3),
                format!("{:.2}", r.p95.as_secs_f64() * 1e3),
                format!("{:.2}", r.p99.as_secs_f64() * 1e3),
                format!("{}/{}", r.ok, r.requests),
                (r.body_bytes / 1024).to_string(),
            ]
        })
        .collect();
    print_table(
        "B11: end-to-end SPARQL Protocol (open-loop, keep-alive)",
        &[
            "conns", "offered", "req/s", "p50 ms", "p95 ms", "p99 ms", "ok", "KiB rx",
        ],
        &rows,
    );

    for r in &reports {
        assert_eq!(
            r.ok, r.requests,
            "{} connections: every request must return 200",
            r.connections
        );
    }

    let mut rows_json = String::new();
    for (i, r) in reports.iter().enumerate() {
        rows_json.push_str("    {\n");
        rows_json.push_str(&format!("      \"connections\": {},\n", r.connections));
        rows_json.push_str(&format!("      \"offered_rps\": {:.3},\n", r.offered_rps));
        rows_json.push_str(&format!(
            "      \"throughput_rps\": {:.3},\n",
            r.achieved_rps
        ));
        rows_json.push_str(&format!("      \"requests\": {},\n", r.requests));
        rows_json.push_str(&format!("      \"ok\": {},\n", r.ok));
        rows_json.push_str(&format!("      \"errors\": {},\n", r.errors));
        rows_json.push_str(&format!("      \"body_bytes\": {},\n", r.body_bytes));
        rows_json.push_str(&format!("      \"p50_ns\": {},\n", r.p50.as_nanos()));
        rows_json.push_str(&format!("      \"p95_ns\": {},\n", r.p95.as_nanos()));
        rows_json.push_str(&format!("      \"p99_ns\": {}\n", r.p99.as_nanos()));
        rows_json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }

    // Merge into exp_service's BENCH_service.json when present (the two
    // harnesses share the workload, so their rows belong in one file);
    // otherwise write a standalone document.
    let merged = match std::fs::read_to_string("BENCH_service.json") {
        Ok(existing) if existing.trim_end().ends_with('}') => {
            // A previous run's http_sweeps is always the last key; drop
            // it rather than duplicating.
            let base = match existing.find(",\n  \"http_sweeps\"") {
                Some(idx) => existing[..idx].to_string(),
                None => existing
                    .trim_end()
                    .strip_suffix('}')
                    .expect("checked above")
                    .trim_end()
                    .to_string(),
            };
            format!("{base},\n  \"http_sweeps\": [\n{rows_json}  ]\n}}\n")
        }
        _ => format!(
            "{{\n  \"experiment\": \"sparql-http\",\n  \"backend\": \"store\",\n  \
             \"world_cells\": {cells},\n  \"requests_per_sweep\": {SWEEP_REQUESTS},\n  \
             \"http_sweeps\": [\n{rows_json}  ]\n}}\n"
        ),
    };
    std::fs::write("BENCH_service.json", &merged).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json (http_sweeps)");

    server.shutdown();
    applab_bench::dump_metrics("http");
}
