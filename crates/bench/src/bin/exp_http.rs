//! Experiment B11: end-to-end SPARQL Protocol throughput and latency.
//!
//! Where B9 measured the service in-process, this harness pays the whole
//! wire bill: the mini-Geographica mix arrives as real HTTP requests over
//! TCP (`applab-http` server, persistent keep-alive connections), and
//! every response is parsed back off the socket — W3C Results JSON,
//! chunked or fixed-length as the server chose. The load is *open-loop*
//! (arrivals on a fixed schedule, latency measured from the schedule),
//! offered at ~60% of a quick closed-loop capacity estimate so the sweep
//! characterizes the server below saturation rather than its overload
//! queue.
//!
//! Appends an `"http_sweeps"` array (1 and 8 connections: achieved req/s
//! plus p50/p95/p99) to the `BENCH_service.json` that `exp_service`
//! wrote, so the in-process and end-to-end numbers for the same workload
//! sit side by side; writes a standalone document if B9 has not run.
//!
//! `--serve [addr]` instead binds the same fixture service and blocks —
//! the CI smoke test curls /healthz, /sparql, and /metrics against it.

use applab_bench::httpload::{open_loop_sweep, percent_encode, HttpClient, LoadReport};
use applab_bench::{geographica_queries, print_table};
use applab_core::MaterializedWorkflow;
use applab_data::{mappings, ParisFixture};
use applab_http::{HttpConfig, HttpServer, SocketChaos};
use applab_service::{ApplabService, ServiceConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SWEEP_REQUESTS: usize = 192;
const CONNECTION_COUNTS: [usize; 2] = [1, 8];
/// Fraction of estimated capacity the open-loop schedule offers.
const TARGET_UTILIZATION: f64 = 0.6;
/// Closed-loop requests used to estimate capacity before the sweeps.
const CALIBRATION_REQUESTS: usize = 32;

fn build_service_with(cells: usize, config: ServiceConfig) -> ApplabService {
    let fixture = ParisFixture::generate(2019, cells, 8);
    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        mat.load_table(&table, doc).expect("fixture tables load");
    }
    ApplabService::new(config).with_endpoint("store", Arc::new(mat))
}

fn build_service(cells: usize) -> ApplabService {
    build_service_with(
        cells,
        ServiceConfig {
            max_in_flight: 8,
            max_queue: 64,
            queue_timeout: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    )
}

fn sparql_targets() -> Vec<String> {
    geographica_queries()
        .into_iter()
        .map(|(_, sparql)| format!("/sparql?query={}", percent_encode(&sparql)))
        .collect()
}

/// Closed-loop single-connection pass: estimates per-request service
/// time on this host so the open-loop schedule can stay below the knee.
fn estimate_capacity_rps(addr: SocketAddr, targets: &[String]) -> f64 {
    let mut client = HttpClient::connect(addr).expect("calibration connect");
    // One warmup lap (first-touch caches, JIT-ish lazy init).
    for target in targets {
        let resp = client.get(target).expect("calibration request");
        assert_eq!(resp.status, 200, "calibration must succeed");
    }
    let started = Instant::now();
    for i in 0..CALIBRATION_REQUESTS {
        let resp = client
            .get(&targets[i % targets.len()])
            .expect("calibration request");
        assert_eq!(resp.status, 200, "calibration must succeed");
    }
    CALIBRATION_REQUESTS as f64 / started.elapsed().as_secs_f64()
}

// --------------------------------------------------------------------
// Overload row: offered 2x capacity, queue-delay shedding on vs off.
// --------------------------------------------------------------------

/// Requests per overload arm; long enough for the queue-delay EWMA to
/// cross its target and settle into steady shedding.
const OVERLOAD_REQUESTS: usize = 256;
/// More client connections than admission permits, so pressure lands on
/// the service queue (where the shedder watches) rather than the accept
/// queue.
const OVERLOAD_CONNECTIONS: usize = 16;
const OVERLOAD_PERMITS: usize = 4;
/// Goodput floor with shedding on: 200-responses per second must stay
/// above this fraction of the calibrated closed-loop capacity even while
/// the server sheds the excess. Deliberately loose — CI hosts are noisy;
/// the row's value is the recorded numbers, the floor just catches
/// collapse.
const OVERLOAD_GOODPUT_FLOOR: f64 = 0.3;

/// One overload arm: open-loop at 2x capacity against a fresh service
/// whose queue-delay shedding is `target` (None = off).
fn overload_arm(
    cells: usize,
    capacity: f64,
    targets: &[String],
    target: Option<Duration>,
) -> LoadReport {
    let service = Arc::new(build_service_with(
        cells,
        ServiceConfig {
            max_in_flight: OVERLOAD_PERMITS,
            max_queue: 256,
            queue_timeout: Duration::from_secs(30),
            queue_delay_target: target,
            ..ServiceConfig::default()
        },
    ));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        service,
        HttpConfig {
            workers: OVERLOAD_CONNECTIONS,
            ..HttpConfig::default()
        },
    )
    .expect("bind overload server");
    let report = open_loop_sweep(
        server.local_addr(),
        targets,
        OVERLOAD_CONNECTIONS,
        capacity * 2.0,
        OVERLOAD_REQUESTS,
    );
    server.shutdown();
    report
}

/// Goodput (200-responses per second of wall time) for a report.
fn goodput_rps(r: &LoadReport) -> f64 {
    r.ok as f64 * r.achieved_rps / r.requests as f64
}

fn run_overload(cells: usize, capacity: f64, targets: &[String]) -> (LoadReport, LoadReport) {
    // Shed when queued admission waits exceed ~2 mean service times —
    // scaled from the calibration so the row measures the mechanism, not
    // a magic constant tuned to one host.
    let delay_target = Duration::from_secs_f64((2.0 / capacity).max(0.002));
    let off = overload_arm(cells, capacity, targets, None);
    let on = overload_arm(cells, capacity, targets, Some(delay_target));

    let rows: Vec<Vec<String>> = [("off", &off), ("on", &on)]
        .iter()
        .map(|(label, r)| {
            vec![
                (*label).to_string(),
                format!("{:.1}", r.offered_rps),
                format!("{:.1}", goodput_rps(r)),
                r.ok.to_string(),
                r.errors.to_string(),
                format!("{:.1}", r.p50.as_secs_f64() * 1e3),
                format!("{:.1}", r.p99.as_secs_f64() * 1e3),
            ]
        })
        .collect();
    print_table(
        &format!(
            "B11 overload: 2x capacity, {OVERLOAD_CONNECTIONS} conns, \
             queue-delay target {:.1}ms",
            delay_target.as_secs_f64() * 1e3
        ),
        &[
            "shed", "offered", "goodput", "ok", "shed/err", "p50 ms", "p99 ms",
        ],
        &rows,
    );

    assert!(
        on.errors > 0,
        "shedding on at 2x capacity must actually shed (got {} ok / {} errors)",
        on.ok,
        on.errors
    );
    let floor = capacity * OVERLOAD_GOODPUT_FLOOR;
    assert!(
        goodput_rps(&on) >= floor,
        "goodput under shedding ({:.1} req/s) fell below the floor \
         ({OVERLOAD_GOODPUT_FLOOR} x capacity {capacity:.1} = {floor:.1})",
        goodput_rps(&on)
    );
    (off, on)
}

fn overload_arm_json(r: &LoadReport) -> String {
    format!(
        "{{\"ok\": {}, \"shed_or_error\": {}, \"goodput_rps\": {:.3}, \
         \"p50_ns\": {}, \"p99_ns\": {}}}",
        r.ok,
        r.errors,
        goodput_rps(r),
        r.p50.as_nanos(),
        r.p99.as_nanos()
    )
}

// --------------------------------------------------------------------
// Resilience-overhead gate: chaos plumbing at 0% fault rates vs a bare
// server, same paired-ratio methodology as exp_service's gate.
// --------------------------------------------------------------------

/// Back-to-back A/B pairs with alternating inner order; the estimator is
/// the median per-pair wall ratio (within-pair drift cancels on the
/// shared single-vCPU host).
const OVERHEAD_PAIRS: usize = 15;
/// Whole-mix repetitions per round, so a round is tens of ms of real
/// HTTP traffic and timer jitter stays below the signal.
const OVERHEAD_REPS: usize = 2;
const OVERHEAD_BUDGET_PCT: f64 = 5.0;
/// Ambient load occasionally inflates a whole measurement run; retry up
/// to this many attempts and report the minimum.
const OVERHEAD_ATTEMPTS: usize = 3;

fn overhead_round(client: &mut HttpClient, targets: &[String]) -> Duration {
    let started = Instant::now();
    for _ in 0..OVERHEAD_REPS {
        for target in targets {
            let resp = client.get(target).expect("overhead request");
            assert_eq!(resp.status, 200, "overhead batch requests must succeed");
        }
    }
    started.elapsed()
}

/// One measurement run: fresh server pair (wrapped in zero-rate chaos vs
/// bare sockets), warmup, then interleaved pairs. Returns the median
/// per-pair overhead in percent.
fn overhead_attempt(cells: usize, targets: &[String]) -> f64 {
    let bare = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(build_service(cells)),
        HttpConfig::default(),
    )
    .expect("bind bare server");
    let hardened = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(build_service(cells)),
        HttpConfig {
            // Full resilience plumbing on the wire path, zero faults:
            // every connection pays the ChaosStream indirection, the
            // registry, and the cancel-token bookkeeping.
            chaos: Some(SocketChaos::uniform(0.0, 1)),
            ..HttpConfig::default()
        },
    )
    .expect("bind hardened server");
    let mut bare_client = HttpClient::connect(bare.local_addr()).expect("connect bare");
    let mut hard_client = HttpClient::connect(hardened.local_addr()).expect("connect hardened");

    overhead_round(&mut bare_client, targets);
    overhead_round(&mut hard_client, targets);

    let mut ratios = Vec::with_capacity(OVERHEAD_PAIRS);
    for pair in 0..OVERHEAD_PAIRS {
        let (bare_t, hard_t) = if pair % 2 == 0 {
            let h = overhead_round(&mut hard_client, targets);
            let b = overhead_round(&mut bare_client, targets);
            (b, h)
        } else {
            let b = overhead_round(&mut bare_client, targets);
            let h = overhead_round(&mut hard_client, targets);
            (b, h)
        };
        ratios.push(hard_t.as_secs_f64() / bare_t.as_secs_f64());
    }
    ratios.sort_by(f64::total_cmp);
    let pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    bare.shutdown();
    hardened.shutdown();
    pct
}

fn run_overhead_check(cells: usize) {
    let targets = sparql_targets();
    let mut best = f64::INFINITY;
    let mut attempts = 0usize;
    for attempt in 1..=OVERHEAD_ATTEMPTS {
        attempts = attempt;
        let pct = overhead_attempt(cells, &targets);
        println!(
            "http overhead attempt {attempt}/{OVERHEAD_ATTEMPTS}: {OVERHEAD_PAIRS} interleaved \
             pairs x {} queries x {OVERHEAD_REPS} reps, zero-rate chaos wrapper vs bare sockets \
             => median pair ratio {pct:+.2}%",
            targets.len()
        );
        best = best.min(pct);
        if best <= OVERHEAD_BUDGET_PCT {
            break;
        }
    }
    println!(
        "http overhead check: best of {attempts} attempt(s) = {best:+.2}% \
         (budget {OVERHEAD_BUDGET_PCT:.1}%)"
    );
    let json = format!(
        "{{\n  \"experiment\": \"http-resilience-overhead\",\n  \"pairs\": {OVERHEAD_PAIRS},\n  \
         \"reps_per_round\": {OVERHEAD_REPS},\n  \"attempts\": {attempts},\n  \
         \"estimator\": \"best attempt of median per-pair hardened/bare wall ratios\",\n  \
         \"overhead_pct\": {best:.3},\n  \"budget_pct\": {OVERHEAD_BUDGET_PCT}\n}}\n",
    );
    std::fs::write("BENCH_http_overhead.json", &json).expect("write BENCH_http_overhead.json");
    println!("wrote BENCH_http_overhead.json");
    if best > OVERHEAD_BUDGET_PCT {
        eprintln!(
            "FAIL: wire-plane resilience overhead {best:.2}% exceeds the \
             {OVERHEAD_BUDGET_PCT:.1}% budget in all {OVERHEAD_ATTEMPTS} attempts"
        );
        std::process::exit(1);
    }
}

fn serve_forever(addr: &str) {
    let service = Arc::new(build_service(12));
    let server =
        HttpServer::bind(addr, service, HttpConfig::default()).expect("bind serve address");
    println!("serving on http://{}", server.local_addr());
    // Block until killed; the smoke test curls us meanwhile.
    loop {
        std::thread::park();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        let addr = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("127.0.0.1:0");
        serve_forever(addr);
        return;
    }
    if args.iter().any(|a| a == "--overhead-check") {
        let cells = args.iter().find_map(|a| a.parse().ok()).unwrap_or(12usize);
        run_overhead_check(cells);
        return;
    }
    let cells = args.first().and_then(|a| a.parse().ok()).unwrap_or(12usize);

    let service = Arc::new(build_service(cells));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        service,
        HttpConfig {
            workers: 8,
            ..HttpConfig::default()
        },
    )
    .expect("bind http server");
    let addr = server.local_addr();
    let targets = sparql_targets();

    let capacity = estimate_capacity_rps(addr, &targets);
    println!(
        "http sweep: {SWEEP_REQUESTS} mixed Geographica requests over real TCP \
         (server {addr}, single-connection capacity ~{capacity:.0} req/s)"
    );

    // More connections only add capacity up to the core count (one
    // busy worker per core); offering capacity x conns on a 1-vCPU CI
    // host would measure the overload queue, not the server.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let reports: Vec<LoadReport> = CONNECTION_COUNTS
        .iter()
        .map(|&conns| {
            let offered = capacity * TARGET_UTILIZATION * conns.min(cores) as f64;
            open_loop_sweep(addr, &targets, conns, offered, SWEEP_REQUESTS)
        })
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.connections.to_string(),
                format!("{:.1}", r.offered_rps),
                format!("{:.1}", r.achieved_rps),
                format!("{:.2}", r.p50.as_secs_f64() * 1e3),
                format!("{:.2}", r.p95.as_secs_f64() * 1e3),
                format!("{:.2}", r.p99.as_secs_f64() * 1e3),
                format!("{}/{}", r.ok, r.requests),
                (r.body_bytes / 1024).to_string(),
            ]
        })
        .collect();
    print_table(
        "B11: end-to-end SPARQL Protocol (open-loop, keep-alive)",
        &[
            "conns", "offered", "req/s", "p50 ms", "p95 ms", "p99 ms", "ok", "KiB rx",
        ],
        &rows,
    );

    for r in &reports {
        assert_eq!(
            r.ok, r.requests,
            "{} connections: every request must return 200",
            r.connections
        );
    }

    server.shutdown();
    let (overload_off, overload_on) = run_overload(cells, capacity, &targets);

    let mut rows_json = String::new();
    for (i, r) in reports.iter().enumerate() {
        rows_json.push_str("    {\n");
        rows_json.push_str(&format!("      \"connections\": {},\n", r.connections));
        rows_json.push_str(&format!("      \"offered_rps\": {:.3},\n", r.offered_rps));
        rows_json.push_str(&format!(
            "      \"throughput_rps\": {:.3},\n",
            r.achieved_rps
        ));
        rows_json.push_str(&format!("      \"requests\": {},\n", r.requests));
        rows_json.push_str(&format!("      \"ok\": {},\n", r.ok));
        rows_json.push_str(&format!("      \"errors\": {},\n", r.errors));
        rows_json.push_str(&format!("      \"body_bytes\": {},\n", r.body_bytes));
        rows_json.push_str(&format!("      \"p50_ns\": {},\n", r.p50.as_nanos()));
        rows_json.push_str(&format!("      \"p95_ns\": {},\n", r.p95.as_nanos()));
        rows_json.push_str(&format!("      \"p99_ns\": {}\n", r.p99.as_nanos()));
        rows_json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }

    let overload_json = format!(
        "  \"http_overload\": {{\n    \"offered_rps\": {:.3},\n    \
         \"requests\": {OVERLOAD_REQUESTS},\n    \"connections\": {OVERLOAD_CONNECTIONS},\n    \
         \"shedding_off\": {},\n    \"shedding_on\": {},\n    \
         \"goodput_floor_rps\": {:.3}\n  }}\n",
        capacity * 2.0,
        overload_arm_json(&overload_off),
        overload_arm_json(&overload_on),
        capacity * OVERLOAD_GOODPUT_FLOOR,
    );

    // Merge into exp_service's BENCH_service.json when present (the two
    // harnesses share the workload, so their rows belong in one file);
    // otherwise write a standalone document.
    let merged = match std::fs::read_to_string("BENCH_service.json") {
        Ok(existing) if existing.trim_end().ends_with('}') => {
            // A previous run's http_sweeps is always the last key; drop
            // it rather than duplicating.
            let base = match existing.find(",\n  \"http_sweeps\"") {
                Some(idx) => existing[..idx].to_string(),
                None => existing
                    .trim_end()
                    .strip_suffix('}')
                    .expect("checked above")
                    .trim_end()
                    .to_string(),
            };
            format!("{base},\n  \"http_sweeps\": [\n{rows_json}  ],\n{overload_json}}}\n")
        }
        _ => format!(
            "{{\n  \"experiment\": \"sparql-http\",\n  \"backend\": \"store\",\n  \
             \"world_cells\": {cells},\n  \"requests_per_sweep\": {SWEEP_REQUESTS},\n  \
             \"http_sweeps\": [\n{rows_json}  ],\n{overload_json}}}\n"
        ),
    };
    std::fs::write("BENCH_service.json", &merged).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json (http_sweeps + http_overload)");

    applab_bench::dump_metrics("http");
}
