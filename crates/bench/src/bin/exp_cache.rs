//! Experiment B4: the OPeNDAP adapter's cache window `w`.
//!
//! Paper claim C4 (Section 3.2): "results of an OPeNDAP call get cached
//! every \[w\] minutes. If a query arrives ... within this time window, the
//! cached results can be used directly, eliminating the cost of performing
//! another call to the OPeNDAP server."
//!
//! Sweep w against Poisson query arrivals and report the fraction of
//! OPeNDAP calls eliminated. For arrivals with rate λ and window w the
//! expected saving is ≈ 1 − 1/(λw + 1).

use applab_bench::{poisson_arrivals, print_table};
use applab_dap::clock::ManualClock;
use applab_dap::server::grid_dataset;
use applab_dap::transport::Local;
use applab_dap::{DapClient, DapServer};
use applab_obda::vtable::{OpendapTable, VirtualTable};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let n_queries = 400;
    let server = Arc::new(DapServer::new());
    server.publish(grid_dataset(
        "lai_300m",
        &[0.0, 864_000.0],
        &(0..12).map(|i| 48.0 + i as f64 * 0.02).collect::<Vec<_>>(),
        &(0..12).map(|i| 2.0 + i as f64 * 0.02).collect::<Vec<_>>(),
        |t, la, lo| (t + la + lo) as f64,
    ));

    let mut rows = Vec::new();
    for mean_interval in [5.0f64, 60.0] {
        let arrivals = poisson_arrivals(7, n_queries, mean_interval);
        for w_secs in [0u64, 10, 60, 600, 3600] {
            let clock = ManualClock::new();
            let client = Arc::new(DapClient::new(server.clone(), Arc::new(Local::new())));
            let vt = OpendapTable::new(
                client.clone(),
                "lai_300m",
                "LAI",
                Duration::from_secs(w_secs),
                clock.clone(),
            );
            for &at in &arrivals {
                clock.set(Duration::from_secs_f64(at));
                let _ = vt.open().expect("fetch");
            }
            // Each uncached open costs 2 round trips (data + DAS).
            let calls = client.round_trips() / 2;
            let saved = 1.0 - calls as f64 / n_queries as f64;
            let lambda = 1.0 / mean_interval;
            let predicted = 1.0 - 1.0 / (lambda * w_secs as f64 + 1.0);
            rows.push(vec![
                format!("{mean_interval:.0}"),
                format!("{w_secs}"),
                format!("{calls}"),
                format!("{:.1}%", saved * 100.0),
                format!("{:.1}%", predicted * 100.0),
            ]);
        }
    }
    print_table(
        &format!("B4: cache window sweep ({n_queries} identical OPeNDAP calls, Poisson arrivals)"),
        &[
            "mean arrival interval (s)",
            "window w (s)",
            "server calls",
            "calls eliminated",
            "predicted 1-1/(λw+1)",
        ],
        &rows,
    );

    applab_bench::dump_metrics("cache");
}
