//! Experiment B1: on-the-fly OPeNDAP access vs local materialization.
//!
//! Paper claim C1 (Section 5): "When the data gets downloaded at
//! query-time, query execution typically takes two orders of magnitude
//! more time than in the case where the data is materialized in a database
//! or an RDF store."
//!
//! The WAN is simulated in accounting mode: each mode's reported time is
//! its local compute time plus the transport charge its round trips would
//! have cost over a typical intra-Europe link (40 ms RTT, 4 MB/s).

use applab_bench::print_table;
use applab_dap::clock::ManualClock;
use applab_dap::transport::{SimulatedWan, Transport};
use applab_dap::{DapClient, DapServer};
use applab_data::{grids, mappings, ParisFixture};
use applab_obda::{DataSource, OpendapTable, VirtualGraph};
use applab_store::SpatioTemporalStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

// A selective query (the Bois de Boulogne neighbourhood): the materialized
// store answers it from its R-tree; the on-the-fly path must still fetch
// the whole remote product before filtering — exactly the paper's setup.
const QUERY: &str = r#"SELECT DISTINCT ?s ?wkt ?lai WHERE {
  ?s lai:hasLai ?lai .
  ?s geo:hasGeometry ?g .
  ?g geo:asWKT ?wkt .
  FILTER(geof:sfWithin(?wkt, "POLYGON ((2.21 48.85, 2.27 48.85, 2.27 48.88, 2.21 48.88, 2.21 48.85))"^^geo:wktLiteral))
}"#;

fn main() {
    let resolution = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24usize);
    let fixture = ParisFixture::generate(2019, 16, 8);
    let mut lai = grids::lai_dataset(
        &fixture.world,
        &grids::GridSpec {
            resolution,
            times: (0..6).map(|m| m * 30 * 86_400).collect(),
            noise: 0.1,
            seed: 2019,
        },
    );
    lai.name = "lai_300m".into();

    let server = Arc::new(DapServer::new());
    server.publish(lai);
    let wan = Arc::new(SimulatedWan::new(Duration::from_millis(40), 4e6, false));
    let client = Arc::new(DapClient::new(server.clone(), wan.clone()));

    // --- On-the-fly: Ontop-spatial over the opendap virtual table, no
    // cache window (every query re-fetches, the paper's worst case).
    let clock = ManualClock::new();
    let mut ds = DataSource::new();
    ds.add_opendap(
        "lai_300m",
        "LAI",
        Arc::new(OpendapTable::new(
            client.clone(),
            "lai_300m",
            "LAI",
            Duration::ZERO,
            clock.clone(),
        )),
    );
    let virtual_graph = VirtualGraph::new(
        ds,
        applab_geotriples::parse_mappings(&mappings::opendap_lai_mapping("lai_300m", 0)).unwrap(),
    )
    .unwrap();

    let runs = 5;
    let mut fly_compute = 0.0;
    let mut rows_fly = 0;
    for _ in 0..runs {
        let start = Instant::now();
        rows_fly = applab_sparql::query(&virtual_graph, QUERY).unwrap().len();
        fly_compute += start.elapsed().as_secs_f64();
    }
    let fly_compute = fly_compute / runs as f64;
    let fly_wan = wan.total_charged().as_secs_f64() / runs as f64;
    let fly_total = fly_compute + fly_wan;

    // --- Materialized: the same virtual triples bulk-loaded into the
    // store once; queries then run locally.
    let materialized_graph = virtual_graph.materialize().unwrap();
    let store = SpatioTemporalStore::from_graph(&materialized_graph);
    let mut mat_compute = 0.0;
    let mut rows_mat = 0;
    for _ in 0..runs {
        let start = Instant::now();
        rows_mat = applab_sparql::query(&store, QUERY).unwrap().len();
        mat_compute += start.elapsed().as_secs_f64();
    }
    let mat_total = mat_compute / runs as f64;
    assert_eq!(rows_fly, rows_mat, "engines disagree");

    let to_ms = |s: f64| format!("{:.2}", s * 1000.0);
    print_table(
        &format!(
            "B1: on-the-fly vs materialized ({rows_mat} observations, {} round trips/query)",
            wan.round_trips() as f64 / runs as f64
        ),
        &["mode", "compute (ms)", "simulated WAN (ms)", "total (ms)"],
        &[
            vec![
                "on-the-fly (OPeNDAP)".into(),
                to_ms(fly_compute),
                to_ms(fly_wan),
                to_ms(fly_total),
            ],
            vec![
                "materialized (store)".into(),
                to_ms(mat_total),
                "0.00".into(),
                to_ms(mat_total),
            ],
        ],
    );
    println!(
        "\non-the-fly / materialized ratio: {:.0}x (paper: 'two orders of magnitude')",
        fly_total / mat_total
    );

    applab_bench::dump_metrics("ondemand");
}
