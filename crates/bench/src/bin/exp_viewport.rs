//! Experiment B7: DAP index-aligned tile caching vs WCS bounding boxes.
//!
//! Paper claim C7 (Section 5): "OPeNDAP allows for the caching of datasets
//! by serialization based on internal array indices. This increases
//! cache-hits for recurrent requests of a specific subpart of the dataset
//! ... e.g., in a mobile application scenario, where the viewport ...
//! \[has\] modest panning and zooming interaction. ... when using the Web
//! Coverage Service, there is limited possibility to obtain
//! client-specific parts of the datasets (one is limited to, for example,
//! a bounding-box)."
//!
//! Expected shape: the tiled (DAP) fetcher converges to a high hit rate
//! under panning; the bbox (WCS) fetcher almost never hits.

use applab_bench::{print_table, viewport_trace};
use applab_dap::clock::ManualClock;
use applab_dap::server::grid_dataset;
use applab_dap::transport::Local;
use applab_dap::{DapClient, DapServer};
use applab_sdl::{BboxFetcher, TiledFetcher};
use std::sync::Arc;

fn main() {
    let steps = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300usize);
    let server = Arc::new(DapServer::new());
    let lats: Vec<f64> = (0..200).map(|i| 48.6 + i as f64 * 0.002).collect();
    let lons: Vec<f64> = (0..200).map(|i| 2.0 + i as f64 * 0.003).collect();
    server.publish(grid_dataset(
        "lai_300m",
        &[0.0],
        &lats,
        &lons,
        |t, la, lo| (t + la + lo) as f64,
    ));

    let trace = viewport_trace(2019, steps);
    let mut rows = Vec::new();
    for zoom in [4u8, 5, 6] {
        let client = Arc::new(DapClient::new(server.clone(), Arc::new(Local::new())));
        let tiled = TiledFetcher::open(client, "lai_300m", "LAI", zoom, ManualClock::new())
            .expect("open tiled");
        let (mut req, mut hit) = (0usize, 0usize);
        for v in &trace {
            let s = tiled.fetch_viewport(v, 0).expect("viewport");
            req += s.requests;
            hit += s.cache_hits;
        }
        rows.push(vec![
            format!("DAP tiles (zoom {zoom})"),
            format!("{req}"),
            format!("{hit}"),
            format!("{:.1}%", hit as f64 / req as f64 * 100.0),
        ]);
    }
    {
        let client = Arc::new(DapClient::new(server.clone(), Arc::new(Local::new())));
        let bbox =
            BboxFetcher::open(client, "lai_300m", "LAI", ManualClock::new()).expect("open bbox");
        let (mut req, mut hit) = (0usize, 0usize);
        for v in &trace {
            let s = bbox.fetch_viewport(v, 0).expect("viewport");
            req += s.requests;
            hit += s.cache_hits;
        }
        rows.push(vec![
            "WCS bounding boxes".into(),
            format!("{req}"),
            format!("{hit}"),
            format!("{:.1}%", hit as f64 / req as f64 * 100.0),
        ]);
    }
    print_table(
        &format!("B7: viewport cache hit rates over a {steps}-step pan/zoom trace"),
        &["strategy", "cache units requested", "hits", "hit rate"],
        &rows,
    );

    applab_bench::dump_metrics("viewport");
}
