//! Experiment B2/B3: the mini-Geographica comparison.
//!
//! Paper claims reproduced (DESIGN.md §4): "Ontop-spatial also achieves
//! significantly better performance than state-of-the-art RDF stores"
//! (C2, vs our Strabon) and "Strabon ... the most efficient spatiotemporal
//! RDF store" (C3, vs the naive baseline). Expected shape: Ontop wins most
//! queries; Strabon beats the naive store everywhere, especially on
//! spatial selections; materialization may win on the expensive spatial
//! join ("For more costly operations (e.g., spatial joins of complex
//! geometries), it is better to materialize the data", Section 5).
//!
//! Also reports the dictionary-encoded hash-join pipeline against the
//! retired nested-loop reference evaluator on the store backend (the
//! before/after of the pipeline rewrite), and writes every median to
//! `BENCH_geographica.json`.

use applab_bench::{geographica_queries, geographica_setup, print_table};
use applab_sparql::{
    evaluate_with, parse_query, reference, EvalOptions, GraphSource, Query, QueryResults,
};
use std::time::Instant;

fn count(r: &QueryResults) -> usize {
    match r {
        QueryResults::Solutions { rows, .. } => rows.len(),
        _ => 0,
    }
}

/// Median wall time in nanoseconds over `reps` measured runs (after one
/// warm-up run whose row count every rep must reproduce).
fn median_ns(f: impl Fn() -> usize, reps: usize) -> (u128, usize) {
    let rows = f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            assert_eq!(r, rows);
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    let mid = samples.len() / 2;
    let median = if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2
    } else {
        samples[mid]
    };
    (median, rows)
}

fn ms(ns: u128) -> f64 {
    ns as f64 / 1e6
}

struct QueryReport {
    name: &'static str,
    rows: usize,
    strabon_ns: u128,
    naive_ns: u128,
    ontop_ns: u128,
    reference_store_ns: u128,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--check-floors` turns the run into a CI gate: exit nonzero when any
    // NonTopological class fails to beat the reference evaluator.
    let check_floors = args.iter().any(|a| a == "--check-floors");
    let cells = args.iter().find_map(|a| a.parse().ok()).unwrap_or(28usize);
    let reps = 5;
    // The batch window is env-overridable so perf investigations can sweep
    // it without a rebuild: APPLAB_BATCH_SIZE=7 exp_geographica.
    let mut options = EvalOptions::default();
    if let Ok(v) = std::env::var("APPLAB_BATCH_SIZE") {
        options.batch_size = v
            .parse()
            .expect("APPLAB_BATCH_SIZE must be a positive integer");
        println!("batch_size overridden to {}", options.batch_size);
    }
    let setup = geographica_setup(2019, cells);
    println!(
        "mini-Geographica over {} triples (world {cells}×{cells})",
        setup.triples
    );

    let mut reports = Vec::new();
    let mut ontop_wins = 0;
    let mut strabon_beats_naive = 0;
    let queries = geographica_queries();
    for (name, text) in &queries {
        let q: Query = parse_query(text).expect("static query");
        let pipeline = |source: &dyn GraphSource| {
            count(&evaluate_with(source, &q, &options).expect("query evaluates"))
        };
        let (strabon_ns, rows) = median_ns(|| pipeline(&setup.strabon), reps);
        let (naive_ns, _) = median_ns(|| pipeline(&setup.naive), reps);
        let (ontop_ns, _) = median_ns(|| pipeline(&setup.ontop), reps);
        let (reference_store_ns, ref_rows) = median_ns(
            || count(&reference::evaluate(&setup.strabon, &q).expect("query evaluates")),
            reps,
        );
        assert_eq!(rows, ref_rows, "{name}: pipeline vs reference row count");
        if ontop_ns < strabon_ns {
            ontop_wins += 1;
        }
        if strabon_ns < naive_ns {
            strabon_beats_naive += 1;
        }
        reports.push(QueryReport {
            name,
            rows,
            strabon_ns,
            naive_ns,
            ontop_ns,
            reference_store_ns,
        });
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}", r.rows),
                format!("{:.2}", ms(r.strabon_ns)),
                format!("{:.2}", ms(r.naive_ns)),
                format!("{:.2}", ms(r.ontop_ns)),
                format!("{:.1}x", r.naive_ns as f64 / r.strabon_ns as f64),
                if r.ontop_ns < r.strabon_ns {
                    "ontop"
                } else {
                    "strabon"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("B2/B3: mini-Geographica (warm, median-of-{reps}, ms)"),
        &[
            "query",
            "rows",
            "strabon",
            "naive",
            "ontop-spatial",
            "strabon speedup vs naive",
            "winner",
        ],
        &rows,
    );
    println!(
        "\nontop-spatial wins {ontop_wins}/{} queries (paper: most); strabon beats naive on {strabon_beats_naive}/{}",
        queries.len(),
        queries.len()
    );

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", ms(r.reference_store_ns)),
                format!("{:.2}", ms(r.strabon_ns)),
                format!("{:.1}x", r.reference_store_ns as f64 / r.strabon_ns as f64),
            ]
        })
        .collect();
    print_table(
        "Hash-join pipeline vs nested-loop reference (store backend, median ms)",
        &["query", "reference", "pipeline", "speedup"],
        &rows,
    );

    // Machine-readable medians (hand-rolled JSON; no serde in the bench
    // path).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"mini-geographica\",\n");
    json.push_str(&format!("  \"triples\": {},\n", setup.triples));
    json.push_str(&format!("  \"world_cells\": {cells},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"unit\": \"ns (median wall time per evaluation, warm)\",\n");
    json.push_str("  \"queries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        json.push_str(&format!("      \"rows\": {},\n", r.rows));
        json.push_str(&format!("      \"strabon_median_ns\": {},\n", r.strabon_ns));
        json.push_str(&format!("      \"naive_median_ns\": {},\n", r.naive_ns));
        json.push_str(&format!("      \"ontop_median_ns\": {},\n", r.ontop_ns));
        json.push_str(&format!(
            "      \"reference_store_median_ns\": {},\n",
            r.reference_store_ns
        ));
        json.push_str(&format!(
            "      \"pipeline_speedup_vs_reference\": {:.2}\n",
            r.reference_store_ns as f64 / r.strabon_ns as f64
        ));
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_geographica.json", &json).expect("write BENCH_geographica.json");
    println!("\nwrote BENCH_geographica.json");

    applab_bench::dump_metrics("geographica");

    if check_floors {
        let mut failed = false;
        for r in &reports {
            if !r.name.starts_with("NonTopological") {
                continue;
            }
            let speedup = r.reference_store_ns as f64 / r.strabon_ns as f64;
            if speedup < 1.0 {
                eprintln!(
                    "FLOOR VIOLATION: {} pipeline_speedup_vs_reference {speedup:.2} < 1.0",
                    r.name
                );
                failed = true;
            } else {
                println!("floor ok: {} at {speedup:.2}x vs reference", r.name);
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
