//! Experiment B2/B3: the mini-Geographica comparison.
//!
//! Paper claims reproduced (DESIGN.md §4): "Ontop-spatial also achieves
//! significantly better performance than state-of-the-art RDF stores"
//! (C2, vs our Strabon) and "Strabon ... the most efficient spatiotemporal
//! RDF store" (C3, vs the naive baseline). Expected shape: Ontop wins most
//! queries; Strabon beats the naive store everywhere, especially on
//! spatial selections; materialization may win on the expensive spatial
//! join ("For more costly operations (e.g., spatial joins of complex
//! geometries), it is better to materialize the data", Section 5).

use applab_bench::{geographica_queries, geographica_setup, print_table, run_query};
use std::time::Instant;

fn time_it(f: impl Fn() -> usize, reps: u32) -> (f64, usize) {
    // Warm up once, then take the best of `reps` (Geographica reports
    // cold/warm caches separately; warm is the comparable regime).
    let rows = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        assert_eq!(r, rows);
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    (best, rows)
}

fn main() {
    let cells = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(28usize);
    let setup = geographica_setup(2019, cells);
    println!("mini-Geographica over {} triples (world {cells}×{cells})", setup.triples);

    let mut rows = Vec::new();
    let mut ontop_wins = 0;
    let mut strabon_beats_naive = 0;
    let queries = geographica_queries();
    for (name, q) in &queries {
        let (t_strabon, n) = time_it(|| run_query(&setup.strabon, q), 5);
        let (t_naive, _) = time_it(|| run_query(&setup.naive, q), 5);
        let (t_ontop, _) = time_it(|| run_query(&setup.ontop, q), 5);
        let winner = if t_ontop < t_strabon { "ontop" } else { "strabon" };
        if t_ontop < t_strabon {
            ontop_wins += 1;
        }
        if t_strabon < t_naive {
            strabon_beats_naive += 1;
        }
        rows.push(vec![
            name.to_string(),
            format!("{n}"),
            format!("{t_strabon:.2}"),
            format!("{t_naive:.2}"),
            format!("{t_ontop:.2}"),
            format!("{:.1}x", t_naive / t_strabon),
            winner.to_string(),
        ]);
    }
    print_table(
        "B2/B3: mini-Geographica (warm, best-of-5, ms)",
        &[
            "query",
            "rows",
            "strabon",
            "naive",
            "ontop-spatial",
            "strabon speedup vs naive",
            "winner",
        ],
        &rows,
    );
    println!(
        "\nontop-spatial wins {ontop_wins}/{} queries (paper: most); strabon beats naive on {strabon_beats_naive}/{}",
        queries.len(),
        queries.len()
    );
}
