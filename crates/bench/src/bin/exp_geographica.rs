//! Experiment B2/B3: the mini-Geographica comparison.
//!
//! Paper claims reproduced (DESIGN.md §4): "Ontop-spatial also achieves
//! significantly better performance than state-of-the-art RDF stores"
//! (C2, vs our Strabon) and "Strabon ... the most efficient spatiotemporal
//! RDF store" (C3, vs the naive baseline). Expected shape: Ontop wins most
//! queries; Strabon beats the naive store everywhere, especially on
//! spatial selections; materialization may win on the expensive spatial
//! join ("For more costly operations (e.g., spatial joins of complex
//! geometries), it is better to materialize the data", Section 5).
//!
//! Also reports the dictionary-encoded hash-join pipeline against the
//! retired nested-loop reference evaluator on the store backend (the
//! before/after of the pipeline rewrite), runs the planner-vs-written-order
//! sweep (default / reversed / adversarial triple orders, planner on and
//! off), and writes every median to `BENCH_geographica.json`.
//!
//! The sweep's floor (`--check-floors`) asserts that planned execution is
//! no slower than the *best* written order on the wide-BGP and
//! spatial-join classes, using the O-series estimator: median of per-pair
//! wall ratios over back-to-back alternating runs, best of 3 attempts —
//! pooled medians jitter several percent on a shared single-vCPU host,
//! paired ratios do not.

use applab_bench::{geographica_queries, geographica_setup, print_table};
use applab_sparql::{
    evaluate_with, parse_query, reference, EvalOptions, GraphSource, Query, QueryResults,
};
use std::time::Instant;

fn count(r: &QueryResults) -> usize {
    match r {
        QueryResults::Solutions { rows, .. } => rows.len(),
        _ => 0,
    }
}

/// Median wall time in nanoseconds over `reps` measured runs (after one
/// warm-up run whose row count every rep must reproduce).
fn median_ns(f: impl Fn() -> usize, reps: usize) -> (u128, usize) {
    let rows = f();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            let r = f();
            assert_eq!(r, rows);
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    let mid = samples.len() / 2;
    let median = if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2
    } else {
        samples[mid]
    };
    (median, rows)
}

fn ms(ns: u128) -> f64 {
    ns as f64 / 1e6
}

/// Paired-ratio speedup of `cand` over `base`: each pair runs both arms
/// back to back (inner order alternating so slow drift cancels instead of
/// biasing one arm), the attempt's estimate is the median of per-pair
/// `base/cand` wall ratios, and the reported value is the best of
/// `attempts` full attempts. Each arm call is a batch of `inner`
/// evaluations so one sample is tens of ms and timer jitter is swamped.
fn paired_speedup(
    base: &dyn Fn() -> usize,
    cand: &dyn Fn() -> usize,
    inner: usize,
    pairs: usize,
    attempts: usize,
) -> f64 {
    let batch_ns = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        for _ in 0..inner {
            std::hint::black_box(f());
        }
        start.elapsed().as_nanos()
    };
    let mut best = f64::MIN;
    for _ in 0..attempts {
        let mut ratios: Vec<f64> = (0..pairs)
            .map(|i| {
                let (base_ns, cand_ns) = if i % 2 == 0 {
                    (batch_ns(base), batch_ns(cand))
                } else {
                    let c = batch_ns(cand);
                    (batch_ns(base), c)
                };
                base_ns as f64 / cand_ns as f64
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let mid = ratios.len() / 2;
        let median = if ratios.len().is_multiple_of(2) {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        } else {
            ratios[mid]
        };
        best = best.max(median);
    }
    best
}

/// The planner-vs-written-order sweep classes: one wide BGP and one
/// spatial join, each in three written triple orders that all denote the
/// same query. `default` is the order a careful author writes (selective
/// patterns first), `reversed` is its mechanical reversal, and
/// `adversarial` leads with the widest scans and buries the selective
/// constants — for the wide BGP it also opens with a cartesian pair, the
/// worst case the metamorphic `adversarial_order` check replays.
fn sweep_classes() -> Vec<(&'static str, Vec<(&'static str, String)>)> {
    let probe_large = "POLYGON ((2.05 48.72, 2.55 48.72, 2.55 48.98, 2.05 48.98, 2.05 48.72))";
    let wide = |body: &str| {
        format!(
            "SELECT ?a ?p WHERE {{ {body} FILTER(?p > 5000) FILTER(geof:sfWithin(?wkt, \"{probe_large}\"^^geo:wktLiteral)) }}"
        )
    };
    let join = |body: &str| {
        format!("SELECT ?park ?area WHERE {{ {body} FILTER(geof:sfIntersects(?pwkt, ?awkt)) }}")
    };
    vec![
        (
            "WideBGP_Selection",
            vec![
                (
                    "default",
                    wide("?a a ua:UrbanAtlasArea . ?a ua:hasPopulation ?p . ?a geo:hasGeometry ?g . ?g geo:asWKT ?wkt ."),
                ),
                (
                    "reversed",
                    wide("?g geo:asWKT ?wkt . ?a geo:hasGeometry ?g . ?a ua:hasPopulation ?p . ?a a ua:UrbanAtlasArea ."),
                ),
                (
                    "adversarial",
                    wide("?g geo:asWKT ?wkt . ?a ua:hasPopulation ?p . ?a a ua:UrbanAtlasArea . ?a geo:hasGeometry ?g ."),
                ),
            ],
        ),
        (
            "SpatialJoin_Parks_LandCover",
            vec![
                (
                    "default",
                    join("?park osm:poiType osm:park . ?park geo:hasGeometry ?pg . ?pg geo:asWKT ?pwkt . ?area a clc:CorineArea . ?area clc:hasCorineValue clc:GreenUrbanAreas . ?area geo:hasGeometry ?ag . ?ag geo:asWKT ?awkt ."),
                ),
                (
                    "reversed",
                    join("?ag geo:asWKT ?awkt . ?area geo:hasGeometry ?ag . ?area clc:hasCorineValue clc:GreenUrbanAreas . ?area a clc:CorineArea . ?pg geo:asWKT ?pwkt . ?park geo:hasGeometry ?pg . ?park osm:poiType osm:park ."),
                ),
                (
                    "adversarial",
                    join("?ag geo:asWKT ?awkt . ?area geo:hasGeometry ?ag . ?pg geo:asWKT ?pwkt . ?park geo:hasGeometry ?pg . ?park osm:poiType osm:park . ?area clc:hasCorineValue clc:GreenUrbanAreas . ?area a clc:CorineArea ."),
                ),
            ],
        ),
    ]
}

struct SweepReport {
    class: &'static str,
    rows: usize,
    /// (order, planner-off median, planner-on median) per written order.
    orders: Vec<(&'static str, u128, u128)>,
    best_written: &'static str,
    /// Paired-ratio best-of-3: best written order vs planned execution.
    planned_speedup_vs_best_written: f64,
}

struct QueryReport {
    name: &'static str,
    rows: usize,
    strabon_ns: u128,
    naive_ns: u128,
    ontop_ns: u128,
    reference_store_ns: u128,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--check-floors` turns the run into a CI gate: exit nonzero when any
    // NonTopological class fails to beat the reference evaluator.
    let check_floors = args.iter().any(|a| a == "--check-floors");
    let cells = args.iter().find_map(|a| a.parse().ok()).unwrap_or(28usize);
    let reps = 5;
    // The batch window is env-overridable so perf investigations can sweep
    // it without a rebuild: APPLAB_BATCH_SIZE=7 exp_geographica.
    let mut options = EvalOptions::default();
    if let Ok(v) = std::env::var("APPLAB_BATCH_SIZE") {
        options.batch_size = v
            .parse()
            .expect("APPLAB_BATCH_SIZE must be a positive integer");
        println!("batch_size overridden to {}", options.batch_size);
    }
    let setup = geographica_setup(2019, cells);
    println!(
        "mini-Geographica over {} triples (world {cells}×{cells})",
        setup.triples
    );

    let mut reports = Vec::new();
    let mut ontop_wins = 0;
    let mut strabon_beats_naive = 0;
    let queries = geographica_queries();
    for (name, text) in &queries {
        let q: Query = parse_query(text).expect("static query");
        let pipeline = |source: &dyn GraphSource| {
            count(&evaluate_with(source, &q, &options).expect("query evaluates"))
        };
        let (strabon_ns, rows) = median_ns(|| pipeline(&setup.strabon), reps);
        let (naive_ns, _) = median_ns(|| pipeline(&setup.naive), reps);
        let (ontop_ns, _) = median_ns(|| pipeline(&setup.ontop), reps);
        let (reference_store_ns, ref_rows) = median_ns(
            || count(&reference::evaluate(&setup.strabon, &q).expect("query evaluates")),
            reps,
        );
        assert_eq!(rows, ref_rows, "{name}: pipeline vs reference row count");
        if ontop_ns < strabon_ns {
            ontop_wins += 1;
        }
        if strabon_ns < naive_ns {
            strabon_beats_naive += 1;
        }
        reports.push(QueryReport {
            name,
            rows,
            strabon_ns,
            naive_ns,
            ontop_ns,
            reference_store_ns,
        });
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}", r.rows),
                format!("{:.2}", ms(r.strabon_ns)),
                format!("{:.2}", ms(r.naive_ns)),
                format!("{:.2}", ms(r.ontop_ns)),
                format!("{:.1}x", r.naive_ns as f64 / r.strabon_ns as f64),
                if r.ontop_ns < r.strabon_ns {
                    "ontop"
                } else {
                    "strabon"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("B2/B3: mini-Geographica (warm, median-of-{reps}, ms)"),
        &[
            "query",
            "rows",
            "strabon",
            "naive",
            "ontop-spatial",
            "strabon speedup vs naive",
            "winner",
        ],
        &rows,
    );
    println!(
        "\nontop-spatial wins {ontop_wins}/{} queries (paper: most); strabon beats naive on {strabon_beats_naive}/{}",
        queries.len(),
        queries.len()
    );

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.2}", ms(r.reference_store_ns)),
                format!("{:.2}", ms(r.strabon_ns)),
                format!("{:.1}x", r.reference_store_ns as f64 / r.strabon_ns as f64),
            ]
        })
        .collect();
    print_table(
        "Hash-join pipeline vs nested-loop reference (store backend, median ms)",
        &["query", "reference", "pipeline", "speedup"],
        &rows,
    );

    // --- Planner vs written order (store backend) ---------------------
    // Fewer reps than the headline table: the adversarial planner-off
    // arms are deliberately slow, and the floor itself uses the paired
    // estimator below, not these medians.
    let sweep_reps = 3;
    let planned_options = options.clone().planner(true);
    let stats = GraphSource::stats(&setup.strabon).expect("sealed store has planner statistics");
    let mut sweeps = Vec::new();
    for (class, order_texts) in sweep_classes() {
        let mut orders = Vec::new();
        let mut class_rows = None;
        let mut fingerprints = Vec::new();
        let mut parsed = Vec::new();
        for (order, text) in &order_texts {
            let q: Query = parse_query(text).expect("static sweep query");
            fingerprints.push(applab_sparql::plan::query_fingerprint(stats, &q.pattern));
            parsed.push((*order, q));
        }
        // The plan is written-order independent: all three orderings of
        // one class must produce the identical plan fingerprint.
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "{class}: plan fingerprint depends on written order: {fingerprints:x?}"
        );
        for (order, q) in &parsed {
            let (off_ns, rows_off) = median_ns(
                || count(&evaluate_with(&setup.strabon, q, &options).expect("query evaluates")),
                sweep_reps,
            );
            let (on_ns, rows_on) = median_ns(
                || {
                    count(
                        &evaluate_with(&setup.strabon, q, &planned_options)
                            .expect("query evaluates"),
                    )
                },
                sweep_reps,
            );
            assert_eq!(
                rows_off, rows_on,
                "{class}/{order}: planner changed row count"
            );
            if let Some(prev) = class_rows {
                assert_eq!(
                    rows_off, prev,
                    "{class}/{order}: written order changed row count"
                );
            }
            class_rows = Some(rows_off);
            orders.push((*order, off_ns, on_ns));
        }
        let &(best_written, best_off_ns, _) = orders
            .iter()
            .min_by_key(|(_, off, _)| *off)
            .expect("sweep classes have orders");
        // The floor estimator: best written order vs planned execution
        // of the same text, paired ratios, best of 3 attempts. Batch
        // each sample to >= ~15 ms so one ratio is wall-clock, not timer
        // jitter.
        let best_q = &parsed
            .iter()
            .find(|(o, _)| *o == best_written)
            .expect("best order came from parsed")
            .1;
        let inner = (15_000_000 / best_off_ns.max(1)).clamp(1, 64) as usize;
        let speedup = paired_speedup(
            &|| count(&evaluate_with(&setup.strabon, best_q, &options).expect("query evaluates")),
            &|| {
                count(
                    &evaluate_with(&setup.strabon, best_q, &planned_options)
                        .expect("query evaluates"),
                )
            },
            inner,
            9,
            3,
        );
        sweeps.push(SweepReport {
            class,
            rows: class_rows.unwrap_or(0),
            orders,
            best_written,
            planned_speedup_vs_best_written: speedup,
        });
    }

    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .flat_map(|s| {
            s.orders.iter().map(|(order, off, on)| {
                vec![
                    s.class.to_string(),
                    order.to_string(),
                    format!("{}", s.rows),
                    format!("{:.2}", ms(*off)),
                    format!("{:.2}", ms(*on)),
                    format!("{:.1}x", *off as f64 / *on as f64),
                ]
            })
        })
        .collect();
    print_table(
        &format!("Planner vs written order (store backend, median-of-{sweep_reps}, ms)"),
        &[
            "class",
            "written order",
            "rows",
            "planner off",
            "planner on",
            "planner speedup",
        ],
        &rows,
    );
    for s in &sweeps {
        println!(
            "{}: planned vs best written order ({}) paired speedup {:.3}x (best of 3 attempts)",
            s.class, s.best_written, s.planned_speedup_vs_best_written
        );
    }

    // Machine-readable medians (hand-rolled JSON; no serde in the bench
    // path).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"mini-geographica\",\n");
    json.push_str(&format!("  \"triples\": {},\n", setup.triples));
    json.push_str(&format!("  \"world_cells\": {cells},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"unit\": \"ns (median wall time per evaluation, warm)\",\n");
    json.push_str("  \"queries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        json.push_str(&format!("      \"rows\": {},\n", r.rows));
        json.push_str(&format!("      \"strabon_median_ns\": {},\n", r.strabon_ns));
        json.push_str(&format!("      \"naive_median_ns\": {},\n", r.naive_ns));
        json.push_str(&format!("      \"ontop_median_ns\": {},\n", r.ontop_ns));
        json.push_str(&format!(
            "      \"reference_store_median_ns\": {},\n",
            r.reference_store_ns
        ));
        json.push_str(&format!(
            "      \"pipeline_speedup_vs_reference\": {:.2}\n",
            r.reference_store_ns as f64 / r.strabon_ns as f64
        ));
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"order_sweep\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"class\": \"{}\",\n", s.class));
        json.push_str(&format!("      \"rows\": {},\n", s.rows));
        for (order, off, on) in &s.orders {
            json.push_str(&format!(
                "      \"{order}_planner_off_median_ns\": {off},\n"
            ));
            json.push_str(&format!("      \"{order}_planner_on_median_ns\": {on},\n"));
        }
        json.push_str(&format!(
            "      \"best_written_order\": \"{}\",\n",
            s.best_written
        ));
        json.push_str(&format!(
            "      \"planned_speedup_vs_best_written\": {:.3}\n",
            s.planned_speedup_vs_best_written
        ));
        json.push_str(if i + 1 == sweeps.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_geographica.json", &json).expect("write BENCH_geographica.json");
    println!("\nwrote BENCH_geographica.json");

    applab_bench::dump_metrics("geographica");

    if check_floors {
        let mut failed = false;
        for r in &reports {
            if !r.name.starts_with("NonTopological") {
                continue;
            }
            let speedup = r.reference_store_ns as f64 / r.strabon_ns as f64;
            if speedup < 1.0 {
                eprintln!(
                    "FLOOR VIOLATION: {} pipeline_speedup_vs_reference {speedup:.2} < 1.0",
                    r.name
                );
                failed = true;
            } else {
                println!("floor ok: {} at {speedup:.2}x vs reference", r.name);
            }
        }
        // Planner floor: planned execution may not lose to the best
        // written order on the wide-BGP and spatial-join classes. The
        // target is 1.0x; the gate allows the same 5% noise budget as
        // the O-series overhead gates, because on a shared single-vCPU
        // host ambient load shifts whole paired-ratio attempts by a few
        // percent in either direction.
        for s in &sweeps {
            let speedup = s.planned_speedup_vs_best_written;
            if speedup < 0.95 {
                eprintln!(
                    "FLOOR VIOLATION: {} planned vs best written order ({}) {speedup:.3} < 0.95",
                    s.class, s.best_written
                );
                failed = true;
            } else {
                println!(
                    "floor ok: {} planned at {speedup:.3}x vs best written order ({}), target 1.0, budget 0.95",
                    s.class, s.best_written
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
