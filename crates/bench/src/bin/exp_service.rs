//! Experiment B9: service throughput and latency under concurrency.
//!
//! The App Lab's point is *serving* Copernicus data to app developers:
//! many short GeoSPARQL requests against one shared deployment. This
//! harness stands up an `ApplabService` over the materialized (store)
//! backend, then replays a fixed batch of mixed mini-Geographica requests
//! with 1, 2, 4, and 8 client threads. Each client pays a simulated WAN
//! delivery charge for its response bytes (`SimulatedWan::typical()`, a
//! real sleep), so the sweep measures what a deployment measures: with one
//! client the WAN wait serializes, with eight it overlaps, and aggregate
//! throughput rises even on a single-core runner while the service's
//! admission control keeps evaluation bounded.
//!
//! Writes `BENCH_service.json` (throughput + latency percentiles per
//! thread count) and `METRICS_service.json` (the service's own gauges,
//! counters, and histograms after the run).
//!
//! Experiment B10 (faulty WAN) rides along: the same request mix plus the
//! Listing-3 LAI query against the *on-the-fly* (obda) backend, reached
//! through a `ChaosTransport` at 0%, 10%, and 30% injected fault rates —
//! plus a resilience-disabled 0% row so the cost of the retry/breaker
//! machinery itself is measurable. Writes `BENCH_faults.json`.

use applab_bench::{geographica_queries, print_table};
use applab_core::{CoreError, MaterializedWorkflow, VirtualWorkflowBuilder};
use applab_dap::chaos::{ChaosConfig, ChaosTransport};
use applab_dap::clock::ManualClock;
use applab_dap::transport::{Local, SimulatedWan, Transport};
use applab_dap::ResilienceConfig;
use applab_data::{grids, mappings, ParisFixture};
use applab_service::{ApplabService, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REQUESTS_PER_SWEEP: usize = 64;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct SweepReport {
    threads: usize,
    wall: Duration,
    throughput: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    ok: usize,
    rejected: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn build_service(cells: usize) -> ApplabService {
    let fixture = ParisFixture::generate(2019, cells, 8);
    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        mat.load_table(&table, doc).expect("fixture tables load");
    }
    ApplabService::new(ServiceConfig {
        max_in_flight: 8,
        max_queue: 64,
        queue_timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    })
    .with_endpoint("store", Arc::new(mat))
}

/// Replay the request batch with `threads` clients; per-request latency is
/// queue wait + evaluation + WAN delivery of the JSON response.
fn sweep(service: &ApplabService, wan: &SimulatedWan, threads: usize) -> SweepReport {
    let queries = geographica_queries();
    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(REQUESTS_PER_SWEEP);
    let mut rejected = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut shed = 0usize;
                    for i in (t..REQUESTS_PER_SWEEP).step_by(threads) {
                        let (_, sparql) = &queries[i % queries.len()];
                        let req_start = Instant::now();
                        let out = service.query("store", sparql);
                        match &out.result {
                            Ok(results) => wan.charge(results.to_json().len()),
                            Err(_) => shed += 1,
                        }
                        mine.push(req_start.elapsed());
                    }
                    (mine, shed)
                })
            })
            .collect();
        for h in handles {
            let (mine, shed) = h.join().expect("client thread");
            latencies.extend(mine);
            rejected += shed;
        }
    });
    let wall = started.elapsed();
    latencies.sort_unstable();
    SweepReport {
        threads,
        wall,
        throughput: REQUESTS_PER_SWEEP as f64 / wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        ok: REQUESTS_PER_SWEEP - rejected,
        rejected,
    }
}

const FAULT_REQUESTS: usize = 48;
const FAULT_CLIENTS: usize = 4;
const FAULT_SEED: u64 = 0xB10;

struct FaultSweep {
    label: &'static str,
    rate: f64,
    resilience: bool,
    wall: Duration,
    throughput: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    ok: usize,
    degraded: usize,
    unavailable: usize,
    failed: usize,
}

/// An obda (on-the-fly) service whose OPeNDAP path crosses a
/// `ChaosTransport`. The manual clock lets clients expire the vtable
/// window between requests, so the remote path is exercised per request
/// instead of riding a warm cache.
fn build_faulty_service(rate: f64, resilience: bool) -> (ApplabService, Arc<ManualClock>) {
    let fixture = ParisFixture::generate(2019, 12, 8);
    let mut lai = grids::lai_dataset(
        &fixture.world,
        &grids::GridSpec {
            resolution: 8,
            times: vec![0, 86_400 * 30],
            noise: 0.0,
            seed: 3,
        },
    );
    lai.name = "lai_300m".into();
    let clock = ManualClock::new();
    let chaos = Arc::new(ChaosTransport::new(
        Arc::new(Local::new()),
        ChaosConfig::uniform(rate),
        FAULT_SEED,
    ));
    let mut b = VirtualWorkflowBuilder::with_transport_and_clock(chaos, clock.clone());
    b.publish(lai);
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        b.add_table(table);
        b.add_mappings(doc).expect("fixture mappings parse");
    }
    b.add_opendap("lai_300m", "LAI", Duration::from_secs(600));
    b.add_mappings(&mappings::opendap_lai_mapping("lai_300m", 10))
        .expect("lai mapping parses");
    b.set_stale_grace(Duration::from_secs(100_000_000));
    if resilience {
        b.enable_resilience(ResilienceConfig::no_sleep(), FAULT_SEED);
    }
    let svc = ApplabService::new(ServiceConfig {
        max_in_flight: FAULT_CLIENTS,
        max_queue: 64,
        queue_timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    })
    .with_endpoint("obda", Arc::new(b.seal().expect("workflow seals")));
    (svc, clock)
}

fn fault_sweep(label: &'static str, rate: f64, resilience: bool) -> FaultSweep {
    let (service, clock) = build_faulty_service(rate, resilience);
    let mut jobs: Vec<String> = geographica_queries().into_iter().map(|(_, q)| q).collect();
    jobs.push(
        "SELECT DISTINCT ?s ?wkt ?lai WHERE { ?s lai:hasLai ?lai . ?s geo:hasGeometry ?g . ?g geo:asWKT ?wkt }"
            .to_string(),
    );
    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(FAULT_REQUESTS);
    let (mut ok, mut degraded, mut unavailable, mut failed) = (0usize, 0usize, 0usize, 0usize);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..FAULT_CLIENTS)
            .map(|t| {
                let jobs = &jobs;
                let service = &service;
                let clock = &clock;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let (mut ok, mut deg, mut unav, mut fail) = (0usize, 0usize, 0usize, 0usize);
                    for i in (t..FAULT_REQUESTS).step_by(FAULT_CLIENTS) {
                        // Expire the vtable window so this request reaches
                        // the (faulty) remote instead of the warm cache.
                        clock.advance(Duration::from_secs(601));
                        let req_start = Instant::now();
                        let out = service.query("obda", &jobs[i % jobs.len()]);
                        match &out.result {
                            Ok(_) if out.degraded => deg += 1,
                            Ok(_) => ok += 1,
                            Err(CoreError::Unavailable { .. }) => unav += 1,
                            Err(_) => fail += 1,
                        }
                        mine.push(req_start.elapsed());
                    }
                    (mine, ok, deg, unav, fail)
                })
            })
            .collect();
        for h in handles {
            let (mine, o, d, u, f) = h.join().expect("client thread");
            latencies.extend(mine);
            ok += o;
            degraded += d;
            unavailable += u;
            failed += f;
        }
    });
    let wall = started.elapsed();
    latencies.sort_unstable();
    FaultSweep {
        label,
        rate,
        resilience,
        wall,
        throughput: FAULT_REQUESTS as f64 / wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        ok,
        degraded,
        unavailable,
        failed,
    }
}

fn run_fault_experiment() {
    let sweeps = vec![
        fault_sweep("0% (resilience off)", 0.0, false),
        fault_sweep("0%", 0.0, true),
        fault_sweep("10%", 0.10, true),
        fault_sweep("30%", 0.30, true),
    ];
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                s.label.to_string(),
                format!("{:.2}", s.wall.as_secs_f64()),
                format!("{:.1}", s.throughput),
                format!("{:.1}", s.p50.as_secs_f64() * 1e3),
                format!("{:.1}", s.p95.as_secs_f64() * 1e3),
                format!("{:.1}", s.p99.as_secs_f64() * 1e3),
                s.ok.to_string(),
                s.degraded.to_string(),
                s.unavailable.to_string(),
                s.failed.to_string(),
            ]
        })
        .collect();
    print_table(
        "B10: faulty WAN (obda backend, ChaosTransport, 4 clients)",
        &[
            "faults", "wall s", "req/s", "p50 ms", "p95 ms", "p99 ms", "ok", "degraded", "unavail",
            "other",
        ],
        &rows,
    );
    // The cost of the retry/breaker machinery when nothing ever fails.
    let overhead_pct = (sweeps[0].throughput / sweeps[1].throughput - 1.0) * 100.0;
    println!(
        "\nresilience overhead at 0% faults: {overhead_pct:.1}% \
         ({:.1} req/s without vs {:.1} req/s with)",
        sweeps[0].throughput, sweeps[1].throughput
    );
    for s in &sweeps {
        assert_eq!(
            s.ok + s.degraded + s.unavailable + s.failed,
            FAULT_REQUESTS,
            "{}: every request must be accounted for",
            s.label
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"service-faults\",\n");
    json.push_str("  \"backend\": \"obda\",\n");
    json.push_str(&format!("  \"requests_per_sweep\": {FAULT_REQUESTS},\n"));
    json.push_str(&format!("  \"clients\": {FAULT_CLIENTS},\n"));
    json.push_str(&format!("  \"seed\": {FAULT_SEED},\n"));
    json.push_str(&format!(
        "  \"resilience_overhead_pct_at_0\": {overhead_pct:.2},\n"
    ));
    json.push_str("  \"sweeps\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"label\": \"{}\",\n", s.label));
        json.push_str(&format!("      \"fault_rate\": {:.2},\n", s.rate));
        json.push_str(&format!("      \"resilience\": {},\n", s.resilience));
        json.push_str(&format!("      \"wall_ns\": {},\n", s.wall.as_nanos()));
        json.push_str(&format!("      \"throughput_rps\": {:.3},\n", s.throughput));
        json.push_str(&format!("      \"p50_ns\": {},\n", s.p50.as_nanos()));
        json.push_str(&format!("      \"p95_ns\": {},\n", s.p95.as_nanos()));
        json.push_str(&format!("      \"p99_ns\": {},\n", s.p99.as_nanos()));
        json.push_str(&format!("      \"ok\": {},\n", s.ok));
        json.push_str(&format!("      \"degraded\": {},\n", s.degraded));
        json.push_str(&format!("      \"unavailable\": {},\n", s.unavailable));
        json.push_str(&format!("      \"failed\": {}\n", s.failed));
        json.push_str(if i + 1 == sweeps.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("wrote BENCH_faults.json");
}

/// The CI gate for the accounting + query-log plane (the O1 study of
/// EXPERIMENTS.md, re-run with this PR's instrumentation): replay the
/// same request batch against two identical store services — one with a
/// rate-1.0 query log (buffered file sink) and flight recorder
/// attached, one bare — in back-to-back *pairs* with alternating order
/// (A/B, B/A, ...). Each pair yields an instrumented/plain ratio;
/// within-pair drift cancels, and the median ratio suppresses the
/// scheduler noise of the shared single-vCPU host (±10% on raw round
/// medians, per O1). Breaching the budget exits nonzero so CI fails.
const OVERHEAD_PAIRS: usize = 31;
/// Batch repetitions per round: a single mini-Geographica batch runs in
/// under a millisecond, where timer jitter swamps the signal; repeating
/// it makes a round ~10ms so the gate measures steady-state per-query
/// cost.
const OVERHEAD_REPS: usize = 16;
const OVERHEAD_BUDGET_PCT: f64 = 5.0;
/// Ambient load on the shared host occasionally inflates a whole
/// measurement run (every pair in it) by a few percent — the same
/// effect O1 suppressed by comparing best-of-6 run medians. The gate
/// does the analogue: up to this many attempts, passing on the first
/// in-budget one and reporting the minimum (the noise-floor estimate
/// of the true cost).
const OVERHEAD_ATTEMPTS: usize = 3;

fn overhead_round(service: &ApplabService, queries: &[(&'static str, String)]) -> Duration {
    let started = Instant::now();
    for _ in 0..OVERHEAD_REPS {
        for (_, sparql) in queries {
            let out = service.query("store", sparql);
            assert!(out.is_ok(), "overhead batch queries must succeed");
        }
    }
    started.elapsed()
}

/// One full measurement run: fresh service pair, warmup, then
/// `OVERHEAD_PAIRS` back-to-back rounds with alternating inner order.
/// Returns the median per-pair overhead in percent.
fn overhead_attempt(cells: usize) -> f64 {
    let log_path = std::env::temp_dir().join("applab_overhead_query_log.jsonl");
    let log_file = std::io::BufWriter::new(
        std::fs::File::create(&log_path).expect("create overhead query log"),
    );
    let plain = build_service(cells);
    let instrumented = build_service(cells)
        .with_query_log(Arc::new(applab_obs::QueryLog::new(
            Box::new(applab_obs::WriterSink(log_file)),
            applab_obs::SamplingPolicy::always(),
            4096,
        )))
        .with_flight_recorder(Arc::new(applab_obs::FlightRecorder::new(256)));
    let queries = geographica_queries();

    // Warm both services (first-touch allocation, index residency).
    overhead_round(&plain, &queries);
    overhead_round(&instrumented, &queries);

    let mut ratios = Vec::with_capacity(OVERHEAD_PAIRS);
    for pair in 0..OVERHEAD_PAIRS {
        let (plain_t, instr_t) = if pair % 2 == 0 {
            let i = overhead_round(&instrumented, &queries);
            let p = overhead_round(&plain, &queries);
            (p, i)
        } else {
            let p = overhead_round(&plain, &queries);
            let i = overhead_round(&instrumented, &queries);
            (p, i)
        };
        ratios.push(instr_t.as_secs_f64() / plain_t.as_secs_f64());
    }
    ratios.sort_by(f64::total_cmp);
    let _ = std::fs::remove_file(&log_path);
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn run_overhead_check(cells: usize) {
    let queries_per_round = geographica_queries().len();
    let mut best = f64::INFINITY;
    let mut attempts = 0usize;
    for attempt in 1..=OVERHEAD_ATTEMPTS {
        attempts = attempt;
        let pct = overhead_attempt(cells);
        println!(
            "overhead attempt {attempt}/{OVERHEAD_ATTEMPTS}: {OVERHEAD_PAIRS} interleaved pairs \
             x {queries_per_round} queries x {OVERHEAD_REPS} reps, accounting + rate-1.0 query \
             log + flight recorder vs plain => median pair ratio {pct:+.2}%"
        );
        best = best.min(pct);
        if best <= OVERHEAD_BUDGET_PCT {
            break;
        }
    }
    println!(
        "overhead check: best of {attempts} attempt(s) = {best:+.2}% \
         (budget {OVERHEAD_BUDGET_PCT:.1}%)"
    );
    let json = format!(
        "{{\n  \"experiment\": \"observability-overhead\",\n  \"pairs\": {OVERHEAD_PAIRS},\n  \
         \"queries_per_round\": {queries_per_round},\n  \"reps_per_round\": {OVERHEAD_REPS},\n  \
         \"attempts\": {attempts},\n  \
         \"estimator\": \"best attempt of median per-pair instrumented/plain wall ratios\",\n  \
         \"overhead_pct\": {best:.3},\n  \
         \"budget_pct\": {OVERHEAD_BUDGET_PCT}\n}}\n",
    );
    std::fs::write("BENCH_overhead.json", &json).expect("write BENCH_overhead.json");
    println!("wrote BENCH_overhead.json");
    if best > OVERHEAD_BUDGET_PCT {
        eprintln!(
            "FAIL: observability overhead {best:.2}% exceeds the \
             {OVERHEAD_BUDGET_PCT:.1}% budget in all {OVERHEAD_ATTEMPTS} attempts"
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--overhead-check") {
        let cells = args.iter().find_map(|a| a.parse().ok()).unwrap_or(12usize);
        run_overhead_check(cells);
        return;
    }
    let cells = args.first().and_then(|a| a.parse().ok()).unwrap_or(20usize);
    let service = build_service(cells);
    let wan = SimulatedWan::typical();
    println!(
        "service sweep: {REQUESTS_PER_SWEEP} mixed Geographica requests per sweep, \
         store backend, WAN delivery {:?} + 4 MB/s",
        Duration::from_millis(40)
    );

    let reports: Vec<SweepReport> = THREAD_COUNTS
        .iter()
        .map(|&t| sweep(&service, &wan, t))
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.2}", r.wall.as_secs_f64()),
                format!("{:.1}", r.throughput),
                format!("{:.1}", r.p50.as_secs_f64() * 1e3),
                format!("{:.1}", r.p95.as_secs_f64() * 1e3),
                format!("{:.1}", r.p99.as_secs_f64() * 1e3),
                format!("{}/{}", r.ok, r.ok + r.rejected),
            ]
        })
        .collect();
    print_table(
        "B9: service throughput vs client threads (store backend)",
        &[
            "clients", "wall s", "req/s", "p50 ms", "p95 ms", "p99 ms", "accepted",
        ],
        &rows,
    );

    let first = &reports[0];
    let last = reports.last().expect("sweeps ran");
    println!(
        "\naggregate throughput {:.1} -> {:.1} req/s from {} -> {} clients ({:.1}x)",
        first.throughput,
        last.throughput,
        first.threads,
        last.threads,
        last.throughput / first.throughput
    );
    assert!(
        last.throughput > first.throughput,
        "throughput must improve from {} to {} service threads",
        first.threads,
        last.threads
    );

    // Machine-readable sweep results (hand-rolled JSON; no serde here).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"service-throughput\",\n");
    json.push_str("  \"backend\": \"store\",\n");
    json.push_str(&format!("  \"world_cells\": {cells},\n"));
    json.push_str(&format!(
        "  \"requests_per_sweep\": {REQUESTS_PER_SWEEP},\n"
    ));
    json.push_str("  \"wan\": \"40ms latency + 4 MB/s delivery per response\",\n");
    json.push_str("  \"sweeps\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"threads\": {},\n", r.threads));
        json.push_str(&format!("      \"wall_ns\": {},\n", r.wall.as_nanos()));
        json.push_str(&format!("      \"throughput_rps\": {:.3},\n", r.throughput));
        json.push_str(&format!("      \"p50_ns\": {},\n", r.p50.as_nanos()));
        json.push_str(&format!("      \"p95_ns\": {},\n", r.p95.as_nanos()));
        json.push_str(&format!("      \"p99_ns\": {},\n", r.p99.as_nanos()));
        json.push_str(&format!("      \"accepted\": {},\n", r.ok));
        json.push_str(&format!("      \"rejected\": {}\n", r.rejected));
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    // Per-endpoint SLO quantiles straight from the service's own
    // histograms (`applab_service_query_seconds{endpoint}`), i.e. what an
    // operator would read off the registry rather than off this harness.
    let slo = applab_obs::global().slo_report("applab_service_query_seconds");
    if !slo.entries.is_empty() {
        println!("\nSLO report (service-side, from registry histograms):");
        print!("{}", slo.render());
    }

    println!();
    run_fault_experiment();

    applab_bench::dump_metrics("service");
}
