//! Experiment B9: service throughput and latency under concurrency.
//!
//! The App Lab's point is *serving* Copernicus data to app developers:
//! many short GeoSPARQL requests against one shared deployment. This
//! harness stands up an `ApplabService` over the materialized (store)
//! backend, then replays a fixed batch of mixed mini-Geographica requests
//! with 1, 2, 4, and 8 client threads. Each client pays a simulated WAN
//! delivery charge for its response bytes (`SimulatedWan::typical()`, a
//! real sleep), so the sweep measures what a deployment measures: with one
//! client the WAN wait serializes, with eight it overlaps, and aggregate
//! throughput rises even on a single-core runner while the service's
//! admission control keeps evaluation bounded.
//!
//! Writes `BENCH_service.json` (throughput + latency percentiles per
//! thread count) and `METRICS_service.json` (the service's own gauges,
//! counters, and histograms after the run).

use applab_bench::{geographica_queries, print_table};
use applab_core::MaterializedWorkflow;
use applab_dap::transport::{SimulatedWan, Transport};
use applab_data::{mappings, ParisFixture};
use applab_service::{ApplabService, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REQUESTS_PER_SWEEP: usize = 64;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct SweepReport {
    threads: usize,
    wall: Duration,
    throughput: f64,
    p50: Duration,
    p95: Duration,
    ok: usize,
    rejected: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn build_service(cells: usize) -> ApplabService {
    let fixture = ParisFixture::generate(2019, cells, 8);
    let mut mat = MaterializedWorkflow::new();
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        mat.load_table(&table, doc).expect("fixture tables load");
    }
    ApplabService::new(ServiceConfig {
        max_in_flight: 8,
        max_queue: 64,
        queue_timeout: Duration::from_secs(30),
        ..ServiceConfig::default()
    })
    .with_endpoint("store", Arc::new(mat))
}

/// Replay the request batch with `threads` clients; per-request latency is
/// queue wait + evaluation + WAN delivery of the JSON response.
fn sweep(service: &ApplabService, wan: &SimulatedWan, threads: usize) -> SweepReport {
    let queries = geographica_queries();
    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(REQUESTS_PER_SWEEP);
    let mut rejected = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut shed = 0usize;
                    for i in (t..REQUESTS_PER_SWEEP).step_by(threads) {
                        let (_, sparql) = &queries[i % queries.len()];
                        let req_start = Instant::now();
                        let out = service.query("store", sparql);
                        match &out.result {
                            Ok(results) => wan.charge(results.to_json().len()),
                            Err(_) => shed += 1,
                        }
                        mine.push(req_start.elapsed());
                    }
                    (mine, shed)
                })
            })
            .collect();
        for h in handles {
            let (mine, shed) = h.join().expect("client thread");
            latencies.extend(mine);
            rejected += shed;
        }
    });
    let wall = started.elapsed();
    latencies.sort_unstable();
    SweepReport {
        threads,
        wall,
        throughput: REQUESTS_PER_SWEEP as f64 / wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        ok: REQUESTS_PER_SWEEP - rejected,
        rejected,
    }
}

fn main() {
    let cells = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20usize);
    let service = build_service(cells);
    let wan = SimulatedWan::typical();
    println!(
        "service sweep: {REQUESTS_PER_SWEEP} mixed Geographica requests per sweep, \
         store backend, WAN delivery {:?} + 4 MB/s",
        Duration::from_millis(40)
    );

    let reports: Vec<SweepReport> = THREAD_COUNTS
        .iter()
        .map(|&t| sweep(&service, &wan, t))
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.2}", r.wall.as_secs_f64()),
                format!("{:.1}", r.throughput),
                format!("{:.1}", r.p50.as_secs_f64() * 1e3),
                format!("{:.1}", r.p95.as_secs_f64() * 1e3),
                format!("{}/{}", r.ok, r.ok + r.rejected),
            ]
        })
        .collect();
    print_table(
        "B9: service throughput vs client threads (store backend)",
        &["clients", "wall s", "req/s", "p50 ms", "p95 ms", "accepted"],
        &rows,
    );

    let first = &reports[0];
    let last = reports.last().expect("sweeps ran");
    println!(
        "\naggregate throughput {:.1} -> {:.1} req/s from {} -> {} clients ({:.1}x)",
        first.throughput,
        last.throughput,
        first.threads,
        last.threads,
        last.throughput / first.throughput
    );
    assert!(
        last.throughput > first.throughput,
        "throughput must improve from {} to {} service threads",
        first.threads,
        last.threads
    );

    // Machine-readable sweep results (hand-rolled JSON; no serde here).
    let mut json = String::from("{\n");
    json.push_str("  \"experiment\": \"service-throughput\",\n");
    json.push_str("  \"backend\": \"store\",\n");
    json.push_str(&format!("  \"world_cells\": {cells},\n"));
    json.push_str(&format!(
        "  \"requests_per_sweep\": {REQUESTS_PER_SWEEP},\n"
    ));
    json.push_str("  \"wan\": \"40ms latency + 4 MB/s delivery per response\",\n");
    json.push_str("  \"sweeps\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"threads\": {},\n", r.threads));
        json.push_str(&format!("      \"wall_ns\": {},\n", r.wall.as_nanos()));
        json.push_str(&format!("      \"throughput_rps\": {:.3},\n", r.throughput));
        json.push_str(&format!("      \"p50_ns\": {},\n", r.p50.as_nanos()));
        json.push_str(&format!("      \"p95_ns\": {},\n", r.p95.as_nanos()));
        json.push_str(&format!("      \"accepted\": {},\n", r.ok));
        json.push_str(&format!("      \"rejected\": {}\n", r.rejected));
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    applab_bench::dump_metrics("service");
}
