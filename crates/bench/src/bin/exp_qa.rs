//! Experiment QA: generative differential testing across both workflows.
//!
//! Streams seeded, replayable GeoSPARQL cases through four engines — the
//! reference evaluator, the hash-join pipeline (sequential and forced
//! parallel), and the on-the-fly OBDA workflow — and diffs canonical
//! result multisets. Periodically layers metamorphic checks (pattern
//! reordering, FILTER splitting, LIMIT monotonicity, bbox shrinking) on
//! top of the cross-engine oracle. Any failure is shrunk to a minimal
//! (query, dataset) pair and written as a replayable `*.ron` artifact.
//!
//! Usage:
//!
//! ```text
//! exp_qa [--cases N] [--seed S | --seed A..=B] [--metamorphic-every K]
//!        [--out DIR] [--replay DIR]
//! ```
//!
//! `--replay DIR` runs every corpus case in DIR through all engines
//! instead of generating. Exit code is non-zero when any case disagrees,
//! so both modes gate CI. Every generated case is reproducible from the
//! printed `(run seed, index)` pair via `applab_qa::case_seed`.

use applab_bench::print_table;
use applab_qa::corpus::CorpusCase;
use applab_qa::gen::QueryIr;
use applab_qa::{
    case_seed, generate, load_dir, metamorphic, shrink, DatasetSpec, Harness, Verdict,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    cases: usize,
    seeds: Vec<u64>,
    metamorphic_every: usize,
    out: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_seed_range(s: &str) -> Result<Vec<u64>, String> {
    if let Some((a, b)) = s.split_once("..=") {
        let a: u64 = a
            .trim()
            .parse()
            .map_err(|e| format!("bad seed `{s}`: {e}"))?;
        let b: u64 = b
            .trim()
            .parse()
            .map_err(|e| format!("bad seed `{s}`: {e}"))?;
        if a > b {
            return Err(format!("empty seed range `{s}`"));
        }
        Ok((a..=b).collect())
    } else {
        Ok(vec![s
            .trim()
            .parse()
            .map_err(|e| format!("bad seed `{s}`: {e}"))?])
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 200,
        seeds: vec![1],
        metamorphic_every: 5,
        out: PathBuf::from("qa/failing"),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--cases" => args.cases = value()?.parse().map_err(|e| format!("--cases: {e}"))?,
            "--seed" => args.seeds = parse_seed_range(&value()?)?,
            "--metamorphic-every" => {
                args.metamorphic_every = value()?
                    .parse()
                    .map_err(|e| format!("--metamorphic-every: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value()?),
            "--replay" => args.replay = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// One failure, shrunk and persisted.
fn persist_failure(
    args: &Args,
    run_seed: u64,
    index: u64,
    ir: &QueryIr,
    spec: &DatasetSpec,
    reason: &str,
) -> PathBuf {
    // Shrink against the full differential verdict: any disagreement
    // keeps the candidate. The harness is rebuilt only when a candidate
    // edits the dataset.
    let mut cache: Option<(DatasetSpec, Harness)> = None;
    let mut fails = |candidate: &QueryIr, candidate_spec: &DatasetSpec| -> bool {
        if std::env::var_os("QA_TRACE_SHRINK").is_some() {
            eprintln!(
                "  shrink try: {:?} || {}",
                candidate_spec,
                candidate.render()
            );
        }
        let rebuild = cache.as_ref().is_none_or(|(s, _)| s != candidate_spec);
        if rebuild {
            match Harness::new(candidate_spec.clone()) {
                Ok(h) => cache = Some((candidate_spec.clone(), h)),
                Err(_) => return false,
            }
        }
        let (_, h) = cache.as_ref().expect("cache populated above");
        h.run_ir(candidate).is_disagreement()
    };
    let shrunk = shrink(ir, spec, 400, &mut fails);
    let case = CorpusCase {
        name: format!("auto_{run_seed}_{index}"),
        seed: case_seed(run_seed, index),
        dataset: shrunk.spec.clone(),
        query: shrunk.ir.render(),
        note: format!("found by exp_qa --seed {run_seed} (case {index}); {reason}"),
    };
    std::fs::create_dir_all(&args.out).expect("create artifact dir");
    let path = args.out.join(format!("{}.ron", case.name));
    std::fs::write(&path, case.to_ron()).expect("write failure artifact");
    path
}

struct SeedReport {
    seed: u64,
    cases: usize,
    agree: usize,
    agree_error: usize,
    disagree: usize,
    meta_runs: usize,
    meta_failures: usize,
    secs: f64,
}

fn run_seed(
    args: &Args,
    run_seed: u64,
    coverage: &mut BTreeMap<&'static str, usize>,
) -> SeedReport {
    let spec = DatasetSpec::small(run_seed);
    let harness = Harness::new(spec.clone()).expect("dataset builds");
    let started = Instant::now();
    let (mut agree, mut agree_error, mut disagree) = (0usize, 0usize, 0usize);
    let (mut meta_runs, mut meta_failures) = (0usize, 0usize);
    for i in 0..args.cases as u64 {
        let ir = generate(case_seed(run_seed, i), &spec);
        for f in ir.features() {
            *coverage.entry(f).or_insert(0) += 1;
        }
        match harness.run_ir(&ir) {
            Verdict::Agree => agree += 1,
            Verdict::AgreeError(_) => agree_error += 1,
            Verdict::Disagree(reason) => {
                disagree += 1;
                eprintln!(
                    "DISAGREEMENT seed {run_seed} case {i} (case_seed {}):\n  {reason}\n  {}",
                    case_seed(run_seed, i),
                    ir.render()
                );
                let path = persist_failure(args, run_seed, i, &ir, &spec, &reason);
                eprintln!("  shrunk artifact: {}", path.display());
            }
        }
        if args.metamorphic_every > 0 && i % args.metamorphic_every as u64 == 0 {
            meta_runs += 1;
            if let Err(e) = metamorphic::check_all(&harness, &ir) {
                meta_failures += 1;
                eprintln!(
                    "METAMORPHIC FAILURE seed {run_seed} case {i} (case_seed {}):\n  {e}\n  {}",
                    case_seed(run_seed, i),
                    ir.render()
                );
                let path = persist_failure(args, run_seed, i, &ir, &spec, &e);
                eprintln!("  artifact: {}", path.display());
            }
        }
    }
    SeedReport {
        seed: run_seed,
        cases: args.cases,
        agree,
        agree_error,
        disagree: disagree + meta_failures,
        meta_runs,
        meta_failures,
        secs: started.elapsed().as_secs_f64(),
    }
}

fn replay(dir: &Path) -> i32 {
    let cases = match load_dir(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus load failed: {e}");
            return 2;
        }
    };
    if cases.is_empty() {
        eprintln!("no *.ron cases under {}", dir.display());
        return 2;
    }
    let mut cache: Option<(DatasetSpec, Harness)> = None;
    let mut bad = 0usize;
    let mut rows = Vec::new();
    for (path, case) in &cases {
        if cache.as_ref().is_none_or(|(s, _)| s != &case.dataset) {
            match Harness::new(case.dataset.clone()) {
                Ok(h) => cache = Some((case.dataset.clone(), h)),
                Err(e) => {
                    eprintln!("{}: dataset build failed: {e}", path.display());
                    bad += 1;
                    continue;
                }
            }
        }
        let (_, h) = cache.as_ref().expect("cache populated above");
        let verdict = h.run_text(&case.query);
        let label = match &verdict {
            Verdict::Agree => "agree".to_string(),
            Verdict::AgreeError(e) => format!("agree-error ({e})"),
            Verdict::Disagree(d) => {
                bad += 1;
                format!("DISAGREE: {d}")
            }
        };
        rows.push(vec![case.name.clone(), label]);
    }
    print_table("QA corpus replay", &["case", "verdict"], &rows);
    if bad > 0 {
        eprintln!("{bad} corpus case(s) disagree");
        1
    } else {
        println!("all {} corpus cases agree across engines", cases.len());
        0
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_qa: {e}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &args.replay {
        std::process::exit(replay(dir));
    }

    let mut coverage: BTreeMap<&'static str, usize> = BTreeMap::new();
    let reports: Vec<SeedReport> = args
        .seeds
        .iter()
        .map(|&s| run_seed(&args, s, &mut coverage))
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.seed.to_string(),
                r.cases.to_string(),
                r.agree.to_string(),
                r.agree_error.to_string(),
                r.disagree.to_string(),
                format!("{}/{}", r.meta_runs - r.meta_failures, r.meta_runs),
                format!("{:.1}", r.cases as f64 / r.secs),
            ]
        })
        .collect();
    print_table(
        "QA: four-engine differential fuzzing",
        &[
            "seed",
            "cases",
            "agree",
            "agree-err",
            "disagree",
            "meta ok",
            "cases/s",
        ],
        &rows,
    );

    let total_cases: usize = reports.iter().map(|r| r.cases).sum();
    let total_secs: f64 = reports.iter().map(|r| r.secs).sum();
    let coverage_rows: Vec<Vec<String>> = coverage
        .iter()
        .map(|(f, n)| {
            vec![
                f.to_string(),
                n.to_string(),
                format!("{:.1}%", 100.0 * *n as f64 / total_cases as f64),
            ]
        })
        .collect();
    print_table(
        "algebra coverage (feature -> generated cases)",
        &["feature", "cases", "share"],
        &coverage_rows,
    );
    println!(
        "\n{total_cases} cases across {} seed(s) in {total_secs:.1}s ({:.1} cases/s)",
        reports.len(),
        total_cases as f64 / total_secs
    );

    let disagreements: usize = reports.iter().map(|r| r.disagree).sum();
    if disagreements > 0 {
        eprintln!(
            "{disagreements} disagreement(s); artifacts under {}",
            args.out.display()
        );
        std::process::exit(1);
    }
    println!("zero cross-engine disagreements");
}
