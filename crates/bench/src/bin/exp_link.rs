//! Experiment B6: multi-core meta-blocking / link discovery.
//!
//! Paper claim C6: JedAI's "multi-core version has been shown to be
//! scalable to very large datasets" \[25\]. Expected shape: meta-blocking
//! prunes the candidate space substantially at high recall, and rule
//! evaluation speeds up near-linearly with cores.

use applab_bench::print_table;
use applab_data::er::workload;
use applab_link::{discover_links_parallel, Comparison, Entity, LinkRule};
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_500usize);
    let w = workload(2019, n);
    let left: Vec<Entity> = Entity::all_from_graph(&w.left)
        .into_iter()
        .filter(|e| e.name.is_some())
        .collect();
    let right: Vec<Entity> = Entity::all_from_graph(&w.right)
        .into_iter()
        .filter(|e| e.name.is_some())
        .collect();
    let rule = LinkRule::same_as(
        vec![
            (Comparison::NameLevenshtein, 0.6),
            (Comparison::SpatialProximity { max_distance: 0.05 }, 0.4),
        ],
        0.8,
    );

    let mut rows = Vec::new();
    let mut t1 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let result = discover_links_parallel(&left, &right, &rule, workers);
        let t = start.elapsed().as_secs_f64();
        if workers == 1 {
            t1 = t;
        }
        let found: std::collections::HashSet<(String, String)> = result
            .links
            .iter()
            .map(|l| {
                (
                    l.left.as_named().unwrap().as_str().to_string(),
                    l.right.as_named().unwrap().as_str().to_string(),
                )
            })
            .collect();
        let recall = w
            .truth
            .iter()
            .filter(|(a, b)| found.contains(&(a.clone(), b.clone())))
            .count() as f64
            / w.truth.len() as f64;
        rows.push(vec![
            format!("{workers}"),
            format!("{}", result.stats.raw_pairs),
            format!("{}", result.comparisons),
            format!("{}", result.links.len()),
            format!("{:.1}%", recall * 100.0),
            format!("{:.1}", t * 1000.0),
            format!("{:.2}x", t1 / t),
        ]);
    }
    print_table(
        &format!(
            "B6: multi-core link discovery ({} + {} entities, {} true matches)",
            left.len(),
            right.len(),
            w.truth.len()
        ),
        &[
            "workers",
            "raw pairs",
            "after meta-blocking",
            "links",
            "recall",
            "time (ms)",
            "speedup",
        ],
        &rows,
    );

    applab_bench::dump_metrics("link");
}
