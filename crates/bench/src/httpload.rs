//! A minimal blocking HTTP/1.1 client and an open-loop load generator
//! for driving `applab-http` over real sockets.
//!
//! The client speaks exactly the subset the wire plane emits — status
//! line + headers, `Content-Length` bodies, and `Transfer-Encoding:
//! chunked` (de-chunked transparently) — over a persistent keep-alive
//! connection. The load generator is *open-loop*: every request has a
//! scheduled arrival time fixed before the run starts, and latency is
//! measured from that schedule, not from when the connection got around
//! to sending. A saturated server therefore shows up as growing
//! latency (the queue it built), not as a silently reduced offered rate
//! — the coordinated-omission trap a closed loop falls into.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Percent-encode `s` for use inside a query-string value
/// (RFC 3986 unreserved characters pass through).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body, de-chunked if the transfer was chunked.
    pub body: Vec<u8>,
    /// Whether the body arrived with `Transfer-Encoding: chunked`.
    pub chunked: bool,
}

impl HttpResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent HTTP/1.1 connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Bound every subsequent socket read: a server that stalls past
    /// `dur` fails the read with `TimedOut`/`WouldBlock` instead of
    /// hanging the caller forever. Chaos harnesses use this to turn
    /// "hung connection" into a detectable (and assertable) violation.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(dur)
    }

    /// `GET` the given request target (path + query string).
    pub fn get(&mut self, target: &str) -> io::Result<HttpResponse> {
        self.request("GET", target, None, &[])
    }

    /// `POST` a body with the given content type.
    pub fn post(
        &mut self,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        self.request("POST", target, Some(content_type), body)
    }

    /// Issue one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: applab\r\n");
        if let Some(ct) = content_type {
            head.push_str(&format!("Content-Type: {ct}\r\n"));
        }
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        // A HEAD response advertises body framing but carries no body.
        self.read_response(method == "HEAD")
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        // A line without its terminator means the connection died
        // mid-line: report truncation (a connection error), never a
        // half-parsed status line or chunk size (a framing error).
        if !line.ends_with('\n') {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self, head_only: bool) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let find = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        let chunked = find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let body = if head_only {
            Vec::new()
        } else if chunked {
            self.read_chunked_body()?
        } else if let Some(len) = find("content-length").and_then(|v| v.parse::<usize>().ok()) {
            let mut body = vec![0u8; len];
            self.reader.read_exact(&mut body)?;
            body
        } else {
            Vec::new()
        };
        Ok(HttpResponse {
            status,
            headers,
            body,
            chunked,
        })
    }

    fn read_chunked_body(&mut self) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let size_line = self.read_line()?;
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad chunk size: {size_line:?}"),
                )
            })?;
            if size == 0 {
                // Trailer section: empty in our server, terminated by CRLF.
                let trailer = self.read_line()?;
                debug_assert!(trailer.is_empty(), "unexpected trailer {trailer:?}");
                return Ok(body);
            }
            let start = body.len();
            body.resize(start + size, 0);
            self.reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "chunk data not CRLF-terminated",
                ));
            }
        }
    }
}

/// Aggregate results of one open-loop sweep.
#[derive(Debug)]
pub struct LoadReport {
    /// Concurrent persistent connections used.
    pub connections: usize,
    /// Arrival rate the schedule offered, requests/second.
    pub offered_rps: f64,
    /// Completed requests / wall time.
    pub achieved_rps: f64,
    /// Total requests attempted.
    pub requests: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Non-200 responses plus transport errors.
    pub errors: usize,
    /// Total response-body bytes received.
    pub body_bytes: u64,
    /// Latency percentiles, measured from each request's *scheduled*
    /// arrival (open-loop: server backlog counts against latency).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Run an open-loop sweep: `requests` total arrivals, uniformly spaced
/// at `offered_rps`, round-robined over `connections` persistent
/// keep-alive connections cycling through `targets` (request targets
/// for `GET`). Each connection sends its share strictly on schedule;
/// if the server falls behind, the backlog shows up as latency.
pub fn open_loop_sweep(
    addr: SocketAddr,
    targets: &[String],
    connections: usize,
    offered_rps: f64,
    requests: usize,
) -> LoadReport {
    assert!(connections > 0 && !targets.is_empty() && offered_rps > 0.0);
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now() + Duration::from_millis(5);
    let mut latencies: Vec<Duration> = Vec::with_capacity(requests);
    let (mut ok, mut errors) = (0usize, 0usize);
    let mut body_bytes = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect load client");
                    let mut mine = Vec::new();
                    let (mut ok, mut errors) = (0usize, 0usize);
                    let mut bytes = 0u64;
                    // Connection c owns arrivals c, c+C, c+2C, ...
                    for k in (c..requests).step_by(connections) {
                        let scheduled = start + interval.mul_f64(k as f64);
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        match client.get(&targets[k % targets.len()]) {
                            Ok(resp) => {
                                bytes += resp.body.len() as u64;
                                if resp.status == 200 {
                                    ok += 1;
                                } else {
                                    errors += 1;
                                }
                            }
                            Err(_) => {
                                errors += 1;
                                // Transport error kills the connection;
                                // re-establish for the rest of the share.
                                client = HttpClient::connect(addr).expect("reconnect load client");
                            }
                        }
                        mine.push(scheduled.elapsed());
                    }
                    (mine, ok, errors, bytes)
                })
            })
            .collect();
        for h in handles {
            let (mine, o, e, b) = h.join().expect("load connection thread");
            latencies.extend(mine);
            ok += o;
            errors += e;
            body_bytes += b;
        }
    });
    let wall = start.elapsed();
    latencies.sort_unstable();
    LoadReport {
        connections,
        offered_rps,
        achieved_rps: requests as f64 / wall.as_secs_f64(),
        requests,
        ok,
        errors,
        body_bytes,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn percent_encode_covers_reserved_characters() {
        assert_eq!(percent_encode("abc-_.~123"), "abc-_.~123");
        assert_eq!(percent_encode("a b?&="), "a%20b%3F%26%3D");
        assert_eq!(percent_encode("ü"), "%C3%BC");
    }

    /// The client must parse both framings the server emits, over one
    /// keep-alive connection.
    #[test]
    fn client_parses_fixed_length_and_chunked_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            // First request → fixed length; second → chunked.
            let _ = conn.read(&mut buf).unwrap();
            conn.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello",
            )
            .unwrap();
            let _ = conn.read(&mut buf).unwrap();
            conn.write_all(
                b"HTTP/1.1 404 Not Found\r\nTransfer-Encoding: chunked\r\n\r\n\
                  3\r\nabc\r\n10\r\n0123456789abcdef\r\n0\r\n\r\n",
            )
            .unwrap();
        });
        let mut client = HttpClient::connect(addr).unwrap();
        let first = client.get("/one").unwrap();
        assert_eq!(first.status, 200);
        assert!(!first.chunked);
        assert_eq!(first.text(), "hello");
        assert_eq!(first.header("content-type"), Some("text/plain"));
        let second = client.get("/two").unwrap();
        assert_eq!(second.status, 404);
        assert!(second.chunked);
        assert_eq!(second.text(), "abc0123456789abcdef");
        server.join().unwrap();
    }
}
