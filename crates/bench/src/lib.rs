//! Shared benchmark workloads.
//!
//! Everything the Criterion benches and the `exp_*` table harnesses share:
//! the mini-Geographica query mix (bench B2/B3), the on-the-fly vs
//! materialized setup (B1), the viewport trace (B7) and Poisson arrivals
//! for the cache-window sweep (B4). See DESIGN.md §4 for the experiment
//! index.

pub mod httpload;

use applab_data::{mappings, ParisFixture};
use applab_geo::{Coord, Envelope};
use applab_geotriples::parse_mappings;
use applab_obda::{DataSource, VirtualGraph};
use applab_rdf::Graph;
use applab_sparql::{GraphSource, QueryResults};
use applab_store::{NaiveStore, SpatioTemporalStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The mini-Geographica query mix. Categories follow the Geographica
/// micro benchmark: non-topological functions, spatial selections, spatial
/// joins, and aggregations.
pub fn geographica_queries() -> Vec<(&'static str, String)> {
    let probe_small = "POLYGON ((2.25 48.84, 2.33 48.84, 2.33 48.9, 2.25 48.9, 2.25 48.84))";
    let probe_large = "POLYGON ((2.05 48.72, 2.55 48.72, 2.55 48.98, 2.05 48.98, 2.05 48.72))";
    vec![
        (
            "NonTopological_Area",
            "SELECT ?a (geof:area(?wkt) AS ?area) WHERE { ?a a clc:CorineArea ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }".to_string(),
        ),
        (
            "NonTopological_Envelope",
            "SELECT ?a (geof:envelope(?wkt) AS ?env) WHERE { ?a a ua:UrbanAtlasArea ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt }".to_string(),
        ),
        (
            "Selection_Intersects_Small",
            format!(
                "SELECT ?a WHERE {{ ?a a clc:CorineArea ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt . FILTER(geof:sfIntersects(?wkt, \"{probe_small}\"^^geo:wktLiteral)) }}"
            ),
        ),
        (
            "Selection_Intersects_Large",
            format!(
                "SELECT ?a WHERE {{ ?a a clc:CorineArea ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt . FILTER(geof:sfIntersects(?wkt, \"{probe_large}\"^^geo:wktLiteral)) }}"
            ),
        ),
        (
            "Selection_Within_Attribute",
            format!(
                "SELECT ?a ?p WHERE {{ ?a a ua:UrbanAtlasArea ; ua:hasPopulation ?p ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt . FILTER(?p > 5000) FILTER(geof:sfWithin(?wkt, \"{probe_large}\"^^geo:wktLiteral)) }}"
            ),
        ),
        (
            "Join_Parks_LandCover",
            "SELECT ?park ?area WHERE { ?park osm:poiType osm:park ; geo:hasGeometry ?pg . ?pg geo:asWKT ?pwkt . ?area a clc:CorineArea ; clc:hasCorineValue clc:GreenUrbanAreas ; geo:hasGeometry ?ag . ?ag geo:asWKT ?awkt . FILTER(geof:sfIntersects(?pwkt, ?awkt)) }".to_string(),
        ),
        (
            "Aggregation_CountPerClass",
            "SELECT ?class (COUNT(?a) AS ?n) WHERE { ?a a clc:CorineArea ; clc:hasCorineValue ?class } GROUP BY ?class".to_string(),
        ),
    ]
}

/// The engines of the Geographica comparison.
pub struct GeographicaSetup {
    /// Strabon: dictionary + permutation indexes + R-tree.
    pub strabon: SpatioTemporalStore,
    /// The naive baseline: linear scans, no indexes.
    pub naive: NaiveStore,
    /// Ontop-spatial: virtual graphs over indexed relational tables with
    /// BGP rewriting.
    pub ontop: VirtualGraph,
    /// Triple count of the materialized dataset.
    pub triples: usize,
}

/// Build all three engines over the same Paris fixture.
pub fn geographica_setup(seed: u64, cells: usize) -> GeographicaSetup {
    let fixture = ParisFixture::generate(seed, cells, 8);
    // Materialize through GeoTriples.
    let mut graph = Graph::new();
    for (table, doc) in [
        (fixture.world.osm_table(), mappings::OSM_MAPPING),
        (fixture.world.gadm_table(), mappings::GADM_MAPPING),
        (fixture.world.corine_table(), mappings::CORINE_MAPPING),
        (
            fixture.world.urban_atlas_table(),
            mappings::URBAN_ATLAS_MAPPING,
        ),
    ] {
        let ms = parse_mappings(doc).expect("static mapping");
        for m in &ms {
            graph.extend_from(&applab_geotriples::process(m, &table));
        }
    }
    let strabon = SpatioTemporalStore::from_graph(&graph);
    let naive = NaiveStore::from_graph(&graph);
    // Virtual graphs over the same tables.
    let mut ds = DataSource::new();
    ds.add_table(fixture.world.osm_table());
    ds.add_table(fixture.world.gadm_table());
    ds.add_table(fixture.world.corine_table());
    ds.add_table(fixture.world.urban_atlas_table());
    let mut all_mappings = Vec::new();
    for doc in [
        mappings::OSM_MAPPING,
        mappings::GADM_MAPPING,
        mappings::CORINE_MAPPING,
        mappings::URBAN_ATLAS_MAPPING,
    ] {
        all_mappings.extend(parse_mappings(doc).expect("static mapping"));
    }
    let ontop = VirtualGraph::new(ds, all_mappings).expect("valid mappings");
    GeographicaSetup {
        strabon,
        naive,
        ontop,
        triples: graph.len(),
    }
}

/// Run one query against one engine, returning the row count (keeps the
/// optimizer honest in benches).
pub fn run_query(source: &dyn GraphSource, sparql: &str) -> usize {
    match applab_sparql::query(source, sparql) {
        Ok(QueryResults::Solutions { rows, .. }) => rows.len(),
        Ok(_) => 0,
        Err(e) => panic!("query failed: {e}"),
    }
}

/// A mobile viewport trace: `pans` small pans followed by a zoom, repeated
/// (the "modest panning and zooming interaction" of Section 5).
pub fn viewport_trace(seed: u64, steps: usize) -> Vec<Envelope> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut center = Coord::new(2.3, 48.85);
    let mut half_w: f64 = 0.12;
    let mut half_h: f64 = 0.08;
    let mut out = Vec::with_capacity(steps);
    for i in 0..steps {
        if i % 17 == 16 {
            // Occasional zoom in/out.
            let f = if rng.gen_bool(0.5) { 0.7 } else { 1.4 };
            half_w = (half_w * f).clamp(0.03, 0.25);
            half_h = (half_h * f).clamp(0.02, 0.18);
        } else {
            // Modest pan: a fraction of the viewport.
            center.x += rng.gen_range(-0.3..0.3) * half_w;
            center.y += rng.gen_range(-0.3..0.3) * half_h;
            center.x = center.x.clamp(2.05, 2.55);
            center.y = center.y.clamp(48.73, 48.97);
        }
        out.push(Envelope::new(
            center.x - half_w,
            center.y - half_h,
            center.x + half_w,
            center.y + half_h,
        ));
    }
    out
}

/// Poisson-process arrival offsets with mean interval `mean_secs`.
pub fn poisson_arrivals(seed: u64, n: usize, mean_secs: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mean_secs * u.ln();
            t
        })
        .collect()
}

/// Dump the global `applab-obs` metrics registry as a JSON snapshot next
/// to the experiment's own output file: `METRICS_<experiment>.json`. Every
/// `exp_*` harness calls this last, so the counters accumulated during the
/// run (scans, pushdowns, round trips, cache hits…) land on disk with the
/// timing numbers.
pub fn dump_metrics(experiment: &str) {
    let path = format!("METRICS_{experiment}.json");
    let json = applab_obs::global().to_json();
    std::fs::write(&path, format!("{json}\n")).expect("write metrics snapshot");
    println!("wrote {path}");
}

/// Markdown-ish table printer shared by the `exp_*` harnesses.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_all_geographica_queries() {
        let setup = geographica_setup(1, 10);
        assert!(setup.triples > 0);
        for (name, q) in geographica_queries() {
            let a = run_query(&setup.strabon, &q);
            let b = run_query(&setup.naive, &q);
            let c = run_query(&setup.ontop, &q);
            assert_eq!(a, b, "{name}: strabon vs naive");
            assert_eq!(a, c, "{name}: strabon vs ontop");
            assert!(a > 0, "{name}: empty result weakens the bench");
        }
    }

    #[test]
    fn trace_stays_in_region() {
        let trace = viewport_trace(3, 100);
        assert_eq!(trace.len(), 100);
        for v in &trace {
            assert!(v.min_x >= 1.7 && v.max_x <= 2.9);
            assert!(!v.is_empty());
        }
        // Deterministic.
        assert_eq!(viewport_trace(3, 100), viewport_trace(3, 100));
    }

    #[test]
    fn poisson_is_increasing_with_roughly_right_mean() {
        let arr = poisson_arrivals(5, 2000, 10.0);
        assert!(arr.windows(2).all(|w| w[1] > w[0]));
        let mean = arr.last().unwrap() / 2000.0;
        assert!((mean - 10.0).abs() < 1.0, "mean interval {mean}");
    }
}
