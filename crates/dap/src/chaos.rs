//! Deterministic fault injection for the simulated WAN.
//!
//! The paper's on-the-fly workflow rides a real WAN hop to VITO's OPeNDAP
//! server; at the ROADMAP's target scale that hop *will* drop, stall and
//! corrupt responses. [`ChaosTransport`] decorates any [`Transport`] and
//! injects five fault kinds at configurable rates, driven by a seeded
//! splitmix64 generator so every failure sequence is exactly reproducible
//! from the seed — the chaos stress suite replays identical fault
//! schedules across runs and CI machines.
//!
//! Fault taxonomy (one draw per delivery, rates are cumulative):
//!
//! | kind      | effect on the wire                          | client sees              |
//! |-----------|---------------------------------------------|--------------------------|
//! | transient | connection reset before any byte arrives    | `DapError::Transport`    |
//! | timeout   | request exceeds its attempt deadline        | `DapError::Transport`    |
//! | stall     | response delayed by an extra latency charge | slow but correct bytes   |
//! | truncate  | a strict prefix of the payload arrives      | `DapError::Truncated`*   |
//! | corrupt   | three payload bytes flipped                 | checksum mismatch*       |
//!
//! (*) detected by the client's length + CRC-32 integrity check around
//! [`Transport::deliver`], so a damaged payload is always a typed error,
//! never a silently wrong answer.

use crate::transport::Transport;
use crate::DapError;
use applab_obs::Counter;
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A tiny deterministic PRNG (splitmix64): one u64 of state, full period,
/// good enough bit mixing for fault scheduling, and — unlike anything from
/// crates.io — available offline.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[0, bound)`; 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Per-delivery fault rates. Rates are probabilities in `[0, 1]` and are
/// applied cumulatively from one uniform draw, so `transient + timeout +
/// stall + truncate + corrupt` should stay ≤ 1.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Connection reset: the request fails before any payload arrives.
    pub transient_rate: f64,
    /// Attempt timeout: the request burns [`ChaosConfig::attempt_timeout`]
    /// and fails.
    pub timeout_rate: f64,
    /// Stall: the payload arrives intact but [`ChaosConfig::stall`] late.
    pub stall_rate: f64,
    /// Truncation: only a strict prefix of the payload arrives.
    pub truncate_rate: f64,
    /// Corruption: payload bytes are flipped in flight.
    pub corrupt_rate: f64,
    /// Extra delay charged by a stall fault.
    pub stall: Duration,
    /// The per-attempt deadline a timeout fault reports (and charges).
    pub attempt_timeout: Duration,
    /// When true, stall and timeout faults really sleep (benches); when
    /// false they only account their cost (deterministic tests).
    pub sleep: bool,
}

impl ChaosConfig {
    /// Split `rate` evenly across the five fault kinds — the shape the
    /// stress suite uses ("30% fault rate" → 6% of each kind).
    pub fn uniform(rate: f64) -> Self {
        let each = rate / 5.0;
        ChaosConfig {
            transient_rate: each,
            timeout_rate: each,
            stall_rate: each,
            truncate_rate: each,
            corrupt_rate: each,
            ..ChaosConfig::default()
        }
    }

    /// Sum of all fault rates.
    pub fn total_rate(&self) -> f64 {
        self.transient_rate
            + self.timeout_rate
            + self.stall_rate
            + self.truncate_rate
            + self.corrupt_rate
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            transient_rate: 0.0,
            timeout_rate: 0.0,
            stall_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            stall: Duration::from_millis(200),
            attempt_timeout: Duration::from_millis(500),
            sleep: false,
        }
    }
}

fn fault_counter(kind: &str, instance: &str) -> Arc<Counter> {
    applab_obs::global().counter_with(
        "applab_dap_faults_injected_total",
        &[("kind", kind), ("instance", instance)],
    )
}

/// A [`Transport`] decorator that injects faults into deliveries.
///
/// Wraps any inner transport (its latency/bandwidth accounting still
/// applies to whatever actually crosses the wire) and rolls the fault die
/// once per [`Transport::deliver`]. All injected faults are counted as
/// `applab_dap_faults_injected_total{kind=...}`.
pub struct ChaosTransport {
    inner: Arc<dyn Transport>,
    config: ChaosConfig,
    rng: Mutex<DetRng>,
    stalled_nanos: Arc<Counter>,
    transient: Arc<Counter>,
    timeout: Arc<Counter>,
    stall: Arc<Counter>,
    truncate: Arc<Counter>,
    corrupt: Arc<Counter>,
}

impl ChaosTransport {
    pub fn new(inner: Arc<dyn Transport>, config: ChaosConfig, seed: u64) -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        ChaosTransport {
            inner,
            config,
            rng: Mutex::new(DetRng::new(seed)),
            stalled_nanos: applab_obs::global().counter_with(
                "applab_dap_simulated_latency_nanos_total",
                &[("transport", "chaos"), ("instance", &instance)],
            ),
            transient: fault_counter("transient", &instance),
            timeout: fault_counter("timeout", &instance),
            stall: fault_counter("stall", &instance),
            truncate: fault_counter("truncate", &instance),
            corrupt: fault_counter("corrupt", &instance),
        }
    }

    /// Faults injected so far, by kind.
    pub fn injected(&self) -> ChaosTally {
        ChaosTally {
            transient: self.transient.get(),
            timeout: self.timeout.get(),
            stall: self.stall.get(),
            truncate: self.truncate.get(),
            corrupt: self.corrupt.get(),
        }
    }

    fn charge_delay(&self, delay: Duration) {
        self.stalled_nanos.add(delay.as_nanos() as u64);
        if self.config.sleep {
            std::thread::sleep(delay);
        }
    }
}

/// Snapshot of injected fault counts, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosTally {
    pub transient: u64,
    pub timeout: u64,
    pub stall: u64,
    pub truncate: u64,
    pub corrupt: u64,
}

impl ChaosTally {
    pub fn total(&self) -> u64 {
        self.transient + self.timeout + self.stall + self.truncate + self.corrupt
    }
}

enum Fault {
    None,
    Transient,
    Timeout,
    Stall,
    Truncate(usize),
    Corrupt([usize; 3]),
}

impl Transport for ChaosTransport {
    fn charge(&self, bytes: usize) {
        self.inner.charge(bytes);
    }

    fn total_charged(&self) -> Duration {
        self.inner.total_charged() + Duration::from_nanos(self.stalled_nanos.get())
    }

    fn round_trips(&self) -> u64 {
        self.inner.round_trips()
    }

    fn deliver(&self, payload: Bytes) -> Result<Bytes, DapError> {
        // One lock scope for all the randomness this delivery needs, so a
        // delivery consumes a fixed, order-independent number of draws.
        let fault = {
            let mut rng = self.rng.lock();
            let draw = rng.next_f64();
            let c = &self.config;
            let transient = c.transient_rate;
            let timeout = transient + c.timeout_rate;
            let stall = timeout + c.stall_rate;
            let truncate = stall + c.truncate_rate;
            let corrupt = truncate + c.corrupt_rate;
            if draw < transient {
                Fault::Transient
            } else if draw < timeout {
                Fault::Timeout
            } else if draw < stall {
                Fault::Stall
            } else if draw < truncate {
                Fault::Truncate(rng.next_below(payload.len()))
            } else if draw < corrupt {
                Fault::Corrupt([
                    rng.next_below(payload.len()),
                    rng.next_below(payload.len()),
                    rng.next_below(payload.len()),
                ])
            } else {
                Fault::None
            }
        };

        match fault {
            Fault::None => self.inner.deliver(payload),
            Fault::Transient => {
                self.transient.inc();
                // The failed round trip still pays its latency.
                self.inner.charge(0);
                Err(DapError::Transport(
                    "injected transient failure: connection reset by peer".into(),
                ))
            }
            Fault::Timeout => {
                self.timeout.inc();
                self.inner.charge(0);
                self.charge_delay(self.config.attempt_timeout);
                Err(DapError::Transport(format!(
                    "request timed out after {:?}",
                    self.config.attempt_timeout
                )))
            }
            Fault::Stall => {
                self.stall.inc();
                self.charge_delay(self.config.stall);
                self.inner.deliver(payload)
            }
            Fault::Truncate(keep) => {
                self.truncate.inc();
                // A strict prefix arrives; the inner transport only ever
                // sees (and charges for) the bytes that made it through.
                self.inner.deliver(payload.slice(..keep))
            }
            Fault::Corrupt(positions) => {
                self.corrupt.inc();
                let mut damaged = payload.to_vec();
                for pos in positions {
                    if let Some(byte) = damaged.get_mut(pos) {
                        *byte ^= 0xFF;
                    }
                }
                self.inner.deliver(Bytes::from(damaged))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Local;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = DetRng::new(43);
        assert_ne!(seq_a[0], c.next_u64());
        let mut r = DetRng::new(7);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zero_rate_chaos_is_transparent() {
        let chaos = ChaosTransport::new(Arc::new(Local::new()), ChaosConfig::default(), 1);
        let payload = Bytes::from_static(b"hello dap");
        let delivered = chaos.deliver(payload.clone()).expect("no faults at rate 0");
        assert_eq!(delivered, payload);
        assert_eq!(chaos.injected().total(), 0);
        assert_eq!(chaos.round_trips(), 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let chaos =
                ChaosTransport::new(Arc::new(Local::new()), ChaosConfig::uniform(0.5), seed);
            let outcomes: Vec<String> = (0..64)
                .map(|i| match chaos.deliver(Bytes::from(vec![i as u8; 100])) {
                    Ok(b) => format!("ok:{}", b.len()),
                    Err(e) => format!("err:{e}"),
                })
                .collect();
            (outcomes, chaos.injected())
        };
        let (out1, tally1) = run(0xC0FFEE);
        let (out2, tally2) = run(0xC0FFEE);
        assert_eq!(out1, out2, "same seed must replay the same faults");
        assert_eq!(tally1, tally2);
        let (out3, _) = run(0xBEEF);
        assert_ne!(out1, out3, "different seeds should diverge");
    }

    #[test]
    fn all_fault_kinds_fire_at_high_rate() {
        let chaos = ChaosTransport::new(Arc::new(Local::new()), ChaosConfig::uniform(1.0), 99);
        for _ in 0..256 {
            let _ = chaos.deliver(Bytes::from(vec![7u8; 64]));
        }
        let tally = chaos.injected();
        assert_eq!(tally.total(), 256, "rate 1.0 faults every delivery");
        assert!(tally.transient > 0, "{tally:?}");
        assert!(tally.timeout > 0, "{tally:?}");
        assert!(tally.stall > 0, "{tally:?}");
        assert!(tally.truncate > 0, "{tally:?}");
        assert!(tally.corrupt > 0, "{tally:?}");
    }

    #[test]
    fn truncation_delivers_a_strict_prefix() {
        let config = ChaosConfig {
            truncate_rate: 1.0,
            ..ChaosConfig::default()
        };
        let chaos = ChaosTransport::new(Arc::new(Local::new()), config, 5);
        let payload = Bytes::from(vec![0xAB; 500]);
        for _ in 0..32 {
            let out = chaos
                .deliver(payload.clone())
                .expect("truncate still delivers");
            assert!(out.len() < payload.len());
            assert_eq!(&payload[..out.len()], &out[..]);
        }
    }

    #[test]
    fn corruption_flips_bytes_but_keeps_length() {
        let config = ChaosConfig {
            corrupt_rate: 1.0,
            ..ChaosConfig::default()
        };
        let chaos = ChaosTransport::new(Arc::new(Local::new()), config, 5);
        let payload = Bytes::from(vec![0u8; 300]);
        let out = chaos
            .deliver(payload.clone())
            .expect("corrupt still delivers");
        assert_eq!(out.len(), payload.len());
        assert_ne!(out, payload);
    }

    #[test]
    fn stall_accounts_extra_latency_without_sleeping() {
        let config = ChaosConfig {
            stall_rate: 1.0,
            stall: Duration::from_millis(250),
            sleep: false,
            ..ChaosConfig::default()
        };
        let chaos = ChaosTransport::new(Arc::new(Local::new()), config, 5);
        let started = std::time::Instant::now();
        let out = chaos
            .deliver(Bytes::from_static(b"payload"))
            .expect("stall delivers");
        assert_eq!(&out[..], b"payload");
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "no real sleep"
        );
        assert_eq!(chaos.total_charged(), Duration::from_millis(250));
    }
}
