//! The DAP server: a catalog of datasets answering DDS/DAS/DODS requests.
//!
//! Mirrors the OPeNDAP deployment at VITO (Section 3.1): "Three different
//! services are exposed for each dataset: the OPeNDAP service, the
//! NetcdfSubset service and the NCML service." Here those are
//! [`DapServer::dds`]/[`DapServer::das`]/[`DapServer::dods`] (OPeNDAP),
//! [`DapServer::subset`] (NetcdfSubset-style, by coordinate values), and
//! [`crate::ncml_service`] (NCML). Access control reproduces the RAMANI
//! token scheme: "Without proper registration users will not have any
//! access to the datasets ... this will allow the tracking of which users
//! access which datasets."

use crate::constraint::Constraint;
use crate::{das, dds, dods, DapError};
use applab_array::{Dataset, NdArray, Range, Variable};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// Per-user access log entry counts (dataset → hits).
pub type AccessLog = BTreeMap<String, BTreeMap<String, u64>>;

/// A server-side fault hook: inspects `(request_kind, dataset)` before the
/// request is answered and may fail it with a typed error. `request_kind`
/// is one of `"dds"`, `"das"`, `"dods"`.
pub type FaultHook = Box<dyn Fn(&str, &str) -> Result<(), DapError> + Send + Sync>;

/// An in-process DAP server.
#[derive(Default)]
pub struct DapServer {
    catalog: RwLock<HashMap<String, Dataset>>,
    /// Registered access tokens → user names. Empty map = open server.
    tokens: RwLock<HashMap<String, String>>,
    access_log: RwLock<AccessLog>,
    /// Optional fault hook — lets chaos tests fail requests *server-side*
    /// (an unhealthy upstream, as opposed to [`crate::ChaosTransport`]'s
    /// wire faults).
    fault_hook: RwLock<Option<FaultHook>>,
}

impl DapServer {
    pub fn new() -> Self {
        DapServer::default()
    }

    /// Publish (or replace) a dataset under its name.
    pub fn publish(&self, dataset: Dataset) {
        self.catalog.write().insert(dataset.name.clone(), dataset);
    }

    /// Register an access token for a user (RAMANI-style registration).
    pub fn register_token(&self, token: impl Into<String>, user: impl Into<String>) {
        self.tokens.write().insert(token.into(), user.into());
    }

    /// Dataset names in the catalog.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Check a token and log the access. An open server (no registered
    /// tokens) accepts everything.
    fn authorize(&self, token: Option<&str>, dataset: &str) -> Result<(), DapError> {
        let tokens = self.tokens.read();
        if tokens.is_empty() {
            return Ok(());
        }
        let user = token
            .and_then(|t| tokens.get(t))
            .ok_or_else(|| DapError::NoSuchDataset(format!("{dataset} (unauthorized)")))?;
        let mut log = self.access_log.write();
        *log.entry(user.clone())
            .or_default()
            .entry(dataset.to_string())
            .or_insert(0) += 1;
        Ok(())
    }

    /// The "which users access which datasets" report.
    pub fn access_log(&self) -> AccessLog {
        self.access_log.read().clone()
    }

    /// Install a fault hook consulted before every DDS/DAS/DODS request.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        *self.fault_hook.write() = Some(hook);
    }

    /// Remove the fault hook, restoring a healthy server.
    pub fn clear_fault_hook(&self) {
        *self.fault_hook.write() = None;
    }

    fn check_fault(&self, kind: &str, dataset: &str) -> Result<(), DapError> {
        match &*self.fault_hook.read() {
            Some(hook) => hook(kind, dataset),
            None => Ok(()),
        }
    }

    fn with_dataset<T>(
        &self,
        name: &str,
        f: impl FnOnce(&Dataset) -> Result<T, DapError>,
    ) -> Result<T, DapError> {
        let catalog = self.catalog.read();
        let ds = catalog
            .get(name)
            .ok_or_else(|| DapError::NoSuchDataset(name.to_string()))?;
        f(ds)
    }

    /// The `.dds` response.
    pub fn dds(&self, name: &str, token: Option<&str>) -> Result<String, DapError> {
        self.check_fault("dds", name)?;
        self.authorize(token, name)?;
        self.with_dataset(name, |ds| Ok(dds::render(ds)))
    }

    /// The `.das` response.
    pub fn das(&self, name: &str, token: Option<&str>) -> Result<String, DapError> {
        self.check_fault("das", name)?;
        self.authorize(token, name)?;
        self.with_dataset(name, |ds| Ok(das::render(ds)))
    }

    /// The `.dods` (binary data) response for a constraint.
    pub fn dods(
        &self,
        name: &str,
        constraint: &Constraint,
        token: Option<&str>,
    ) -> Result<Bytes, DapError> {
        self.check_fault("dods", name)?;
        self.authorize(token, name)?;
        self.with_dataset(name, |ds| {
            let mut out = Vec::new();
            if constraint.projections.is_empty() {
                for v in &ds.variables {
                    out.push(v.clone());
                }
            } else {
                for p in &constraint.projections {
                    let v = ds
                        .variable(&p.variable)
                        .ok_or_else(|| DapError::NoSuchVariable(p.variable.clone()))?;
                    if p.ranges.is_empty() {
                        out.push(v.clone());
                    } else {
                        let sliced = v
                            .data
                            .slice(&p.ranges)
                            .map_err(|e| DapError::Constraint(e.to_string()))?;
                        let mut nv = Variable::new(v.name.clone(), v.dims.clone(), sliced);
                        nv.attributes = v.attributes.clone();
                        out.push(nv);
                    }
                }
            }
            Ok(dods::encode(&out))
        })
    }

    /// NetcdfSubset-style request: select a variable by **coordinate**
    /// bounds rather than indexes. Returns the sliced variable plus its
    /// sliced coordinate variables.
    pub fn subset(
        &self,
        name: &str,
        variable: &str,
        bounds: &[(String, f64, f64)],
        token: Option<&str>,
    ) -> Result<Vec<Variable>, DapError> {
        self.authorize(token, name)?;
        self.with_dataset(name, |ds| {
            let v = ds
                .variable(variable)
                .ok_or_else(|| DapError::NoSuchVariable(variable.to_string()))?;
            let mut slab: Vec<Range> = Vec::with_capacity(v.dims.len());
            for (dim, &axis_len) in v.dims.iter().zip(v.data.shape()) {
                let range = match bounds.iter().find(|(d, _, _)| d == dim) {
                    Some((_, lo, hi)) => ds
                        .index_range(dim, *lo, *hi)
                        .ok_or_else(|| DapError::Constraint(format!("empty selection on {dim}")))?,
                    None => Range::all(axis_len),
                };
                slab.push(range);
            }
            let sliced = v
                .data
                .slice(&slab)
                .map_err(|e| DapError::Constraint(e.to_string()))?;
            let mut out = vec![Variable::new(v.name.clone(), v.dims.clone(), sliced)];
            // Attach sliced coordinates.
            for (dim, range) in v.dims.iter().zip(&slab) {
                if let Some(coord) = ds.coordinate(dim) {
                    let sliced = coord
                        .data
                        .slice(&[*range])
                        .map_err(|e| DapError::Constraint(e.to_string()))?;
                    let mut nv = Variable::new(coord.name.clone(), coord.dims.clone(), sliced);
                    nv.attributes = coord.attributes.clone();
                    out.push(nv);
                }
            }
            Ok(out)
        })
    }
}

/// Build the 3-D (time, lat, lon) dataset layout used across tests and
/// benches, with a caller-supplied value function.
pub fn grid_dataset(
    name: &str,
    times: &[f64],
    lats: &[f64],
    lons: &[f64],
    value: impl Fn(usize, usize, usize) -> f64,
) -> Dataset {
    let mut ds = Dataset::new(name);
    ds.add_dim("time", times.len())
        .add_dim("lat", lats.len())
        .add_dim("lon", lons.len());
    ds.set_attr("title", name);
    ds.set_attr("Conventions", "CF-1.6, ACDD-1.3");
    ds.add_variable(
        Variable::new("time", vec!["time".into()], NdArray::vector(times.to_vec()))
            .with_attr("units", "seconds since 1970-01-01"),
    )
    .expect("time axis");
    ds.add_variable(
        Variable::new("lat", vec!["lat".into()], NdArray::vector(lats.to_vec()))
            .with_attr("units", "degrees_north"),
    )
    .expect("lat axis");
    ds.add_variable(
        Variable::new("lon", vec!["lon".into()], NdArray::vector(lons.to_vec()))
            .with_attr("units", "degrees_east"),
    )
    .expect("lon axis");
    let mut data = NdArray::zeros(vec![times.len(), lats.len(), lons.len()]);
    for t in 0..times.len() {
        for la in 0..lats.len() {
            for lo in 0..lons.len() {
                data.set(&[t, la, lo], value(t, la, lo)).expect("in bounds");
            }
        }
    }
    ds.add_variable(
        Variable::new("LAI", vec!["time".into(), "lat".into(), "lon".into()], data)
            .with_attr("units", "m2/m2")
            .with_attr("long_name", "leaf area index"),
    )
    .expect("main variable");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> DapServer {
        let s = DapServer::new();
        s.publish(grid_dataset(
            "lai_300m",
            &[0.0, 86_400.0, 172_800.0],
            &[48.0, 48.5, 49.0],
            &[2.0, 2.5, 3.0, 3.5],
            |t, la, lo| (t * 100 + la * 10 + lo) as f64,
        ));
        s
    }

    #[test]
    fn dds_and_das_served() {
        let s = server();
        let dds_text = s.dds("lai_300m", None).unwrap();
        assert!(dds_text.contains("Float64 LAI[time = 3][lat = 3][lon = 4];"));
        let das_text = s.das("lai_300m", None).unwrap();
        assert!(das_text.contains("NC_GLOBAL"));
        assert!(das_text.contains("m2/m2"));
        assert!(matches!(
            s.dds("missing", None),
            Err(DapError::NoSuchDataset(_))
        ));
    }

    #[test]
    fn dods_subsetting() {
        let s = server();
        let c = Constraint::parse("LAI[1][0:1][2]").unwrap();
        let payload = s.dods("lai_300m", &c, None).unwrap();
        let vars = dods::decode(payload).unwrap();
        assert_eq!(vars.len(), 1);
        assert_eq!(vars[0].data.shape(), &[1, 2, 1]);
        assert_eq!(vars[0].data.get(&[0, 0, 0]).unwrap(), 102.0);
        assert_eq!(vars[0].data.get(&[0, 1, 0]).unwrap(), 112.0);
    }

    #[test]
    fn dods_unconstrained_returns_everything() {
        let s = server();
        let payload = s.dods("lai_300m", &Constraint::all(), None).unwrap();
        let vars = dods::decode(payload).unwrap();
        assert_eq!(vars.len(), 4); // time, lat, lon, LAI
    }

    #[test]
    fn dods_errors() {
        let s = server();
        let bad_var = Constraint::parse("NDVI[0]").unwrap();
        assert!(matches!(
            s.dods("lai_300m", &bad_var, None),
            Err(DapError::NoSuchVariable(_))
        ));
        let oob = Constraint::parse("LAI[9][0][0]").unwrap();
        assert!(matches!(
            s.dods("lai_300m", &oob, None),
            Err(DapError::Constraint(_))
        ));
    }

    #[test]
    fn coordinate_subset() {
        let s = server();
        let vars = s
            .subset(
                "lai_300m",
                "LAI",
                &[("lat".into(), 48.2, 49.0), ("lon".into(), 2.4, 3.1)],
                None,
            )
            .unwrap();
        let lai = &vars[0];
        assert_eq!(lai.data.shape(), &[3, 2, 2]); // all times, lat 48.5..49, lon 2.5..3
        let lat = vars.iter().find(|v| v.name == "lat").unwrap();
        assert_eq!(lat.data.data(), &[48.5, 49.0]);
        // Empty selection errors.
        assert!(s
            .subset("lai_300m", "LAI", &[("lat".into(), 60.0, 61.0)], None)
            .is_err());
    }

    #[test]
    fn token_auth_and_access_log() {
        let s = server();
        s.register_token("secret-1", "alice");
        // No token → denied.
        assert!(s.dds("lai_300m", None).is_err());
        assert!(s.dds("lai_300m", Some("wrong")).is_err());
        // Valid token → served + logged.
        assert!(s.dds("lai_300m", Some("secret-1")).is_ok());
        assert!(s.das("lai_300m", Some("secret-1")).is_ok());
        let log = s.access_log();
        assert_eq!(log["alice"]["lai_300m"], 2);
    }
}
