//! Clock abstraction for the time-windowed caches.
//!
//! Both the SDL subset cache and the Ontop-spatial `opendap` adapter cache
//! expire entries after a wall-clock window `w` (Section 3.2). Tests need
//! to move time by hand; benches use the real clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic clock.
pub trait Clock: Send + Sync {
    /// Time since an arbitrary epoch.
    fn now(&self) -> Duration;
}

/// The real monotonic clock.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A manually advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    millis: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    pub fn advance(&self, by: Duration) {
        self.millis
            .fetch_add(by.as_millis() as u64, Ordering::SeqCst);
    }

    pub fn set(&self, to: Duration) {
        self.millis.store(to.as_millis() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_millis(self.millis.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now(), Duration::from_secs(5));
        c.set(Duration::from_secs(2));
        assert_eq!(c.now(), Duration::from_secs(2));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
