//! Simulated network transports.
//!
//! The paper's deployment puts the OPeNDAP server at VITO and the client —
//! the SDL / Ontop-spatial adapter — in another data centre; the dominant
//! cost of the on-the-fly workflow is the WAN round trip ("query execution
//! typically takes two orders of magnitude more time", Section 5). Since
//! this reproduction is laptop-local, the transport layer *simulates* that
//! WAN: every request pays a latency and a bandwidth charge, implemented as
//! a real sleep for benches and as pure accounting for tests.

use crate::DapError;
use applab_obs::Counter;
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

/// An instance-labeled counter in the global metrics registry:
/// `name{transport="...",instance="N"}`. Each transport keeps its own
/// handle so per-instance getters stay exact even when several transports
/// (e.g. parallel tests) run in one process, while the registry remains
/// the single source of truth for exposition.
fn transport_counter(name: &str, kind: &str, instance: &str) -> Arc<Counter> {
    applab_obs::global().counter_with(name, &[("transport", kind), ("instance", instance)])
}

/// A transport charges a cost for moving a request/response pair.
pub trait Transport: Send + Sync {
    /// Charge for a round trip carrying `bytes` of response payload.
    fn charge(&self, bytes: usize);

    /// Total simulated time charged so far.
    fn total_charged(&self) -> Duration;

    /// Number of round trips so far.
    fn round_trips(&self) -> u64;

    /// Move a response payload across the wire: charge the transfer cost
    /// and return the bytes the client observes. The default is a perfect
    /// network — everything the server sent arrives intact. Faulty
    /// transports ([`crate::ChaosTransport`]) override this to drop,
    /// delay, truncate or corrupt the payload.
    fn deliver(&self, payload: Bytes) -> Result<Bytes, DapError> {
        self.charge(payload.len());
        Ok(payload)
    }
}

/// A free transport: in-process calls, no cost (the "materialized locally"
/// side of bench B1, and unit tests).
#[derive(Debug)]
pub struct Local {
    trips: Arc<Counter>,
}

impl Local {
    pub fn new() -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        Local {
            trips: transport_counter("applab_dap_round_trips_total", "local", &instance),
        }
    }
}

impl Default for Local {
    fn default() -> Self {
        Local::new()
    }
}

impl Transport for Local {
    fn charge(&self, _bytes: usize) {
        self.trips.inc();
    }

    fn total_charged(&self) -> Duration {
        Duration::ZERO
    }

    fn round_trips(&self) -> u64 {
        self.trips.get()
    }
}

/// A simulated wide-area network: fixed round-trip latency plus a
/// throughput charge per byte.
#[derive(Debug)]
pub struct SimulatedWan {
    /// Round-trip latency.
    pub latency: Duration,
    /// Response throughput in bytes per second.
    pub bytes_per_sec: f64,
    /// When true (default), [`Transport::charge`] actually sleeps so wall
    /// clocks (and Criterion) observe the cost. When false, the cost is
    /// only accounted (fast deterministic tests).
    pub sleep: bool,
    charged_nanos: Arc<Counter>,
    trips: Arc<Counter>,
}

impl SimulatedWan {
    /// A typical intra-Europe WAN: 40 ms RTT, 4 MB/s effective throughput.
    pub fn typical() -> Self {
        SimulatedWan::new(Duration::from_millis(40), 4e6, true)
    }

    pub fn new(latency: Duration, bytes_per_sec: f64, sleep: bool) -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        SimulatedWan {
            latency,
            bytes_per_sec,
            sleep,
            charged_nanos: transport_counter(
                "applab_dap_simulated_latency_nanos_total",
                "wan",
                &instance,
            ),
            trips: transport_counter("applab_dap_round_trips_total", "wan", &instance),
        }
    }

    /// The cost of one round trip with `bytes` of payload.
    pub fn cost(&self, bytes: usize) -> Duration {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec.max(1.0));
        self.latency + transfer
    }
}

impl Transport for SimulatedWan {
    fn charge(&self, bytes: usize) {
        let cost = self.cost(bytes);
        self.charged_nanos.add(cost.as_nanos() as u64);
        self.trips.inc();
        if self.sleep {
            std::thread::sleep(cost);
        }
    }

    fn total_charged(&self) -> Duration {
        Duration::from_nanos(self.charged_nanos.get())
    }

    fn round_trips(&self) -> u64 {
        self.trips.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_is_free() {
        let t = Local::new();
        t.charge(1_000_000);
        t.charge(0);
        assert_eq!(t.total_charged(), Duration::ZERO);
        assert_eq!(t.round_trips(), 2);
    }

    #[test]
    fn wan_cost_model() {
        let wan = SimulatedWan::new(Duration::from_millis(40), 1e6, false);
        // 1 MB at 1 MB/s = 1 s transfer + 40 ms latency.
        let c = wan.cost(1_000_000);
        assert!((c.as_secs_f64() - 1.04).abs() < 1e-9);
        // Latency dominates small requests.
        let small = wan.cost(100);
        assert!(small >= Duration::from_millis(40));
        assert!(small < Duration::from_millis(41));
    }

    #[test]
    fn accounting_without_sleep() {
        let wan = SimulatedWan::new(Duration::from_millis(10), 1e6, false);
        let start = std::time::Instant::now();
        for _ in 0..100 {
            wan.charge(1000);
        }
        // No real sleeping happened.
        assert!(start.elapsed() < Duration::from_millis(500));
        assert_eq!(wan.round_trips(), 100);
        let expected = wan.cost(1000) * 100;
        let diff = wan.total_charged().abs_diff(expected);
        assert!(diff < Duration::from_millis(1));
    }

    #[test]
    fn sleeping_transport_takes_real_time() {
        let wan = SimulatedWan::new(Duration::from_millis(5), 1e9, true);
        let start = std::time::Instant::now();
        wan.charge(10);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
