//! The NcML interface service.
//!
//! Section 3.1: "For communicating metadata, we use the NetCDF Markup
//! Language (NcML) interface service. This extends a dataset's OPeNDAP
//! Dataset Attribute Structure (DAS) and Dataset Descriptor Structure (DDS)
//! into a single XML-formatted document. ... The returned document may
//! include information about both the data server itself (such as server
//! functions implemented), and the metadata and dataset referenced in the
//! URL."

use crate::server::DapServer;
use crate::{das, dds, DapError};
use applab_array::AttrValue;
use std::fmt::Write;

/// Server capabilities advertised in every NcML response.
pub const SERVER_FUNCTIONS: &[&str] = &["dds", "das", "dods", "subset", "ncml"];

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the joined NcML document for a dataset.
pub fn render(server: &DapServer, dataset: &str, token: Option<&str>) -> Result<String, DapError> {
    let dds_doc = dds::parse(&server.dds(dataset, token)?)?;
    let das_doc = das::parse(&server.das(dataset, token)?)?;

    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(
        out,
        "<netcdf xmlns=\"http://www.unidata.ucar.edu/namespaces/netcdf/ncml-2.2\" location=\"{}\">",
        xml_escape(dataset)
    );
    let _ = writeln!(
        out,
        "  <serverFunctions>{}</serverFunctions>",
        SERVER_FUNCTIONS.join(",")
    );

    // Global attributes.
    if let Some(globals) = das_doc.get("NC_GLOBAL") {
        for (name, value) in globals {
            write_attr(&mut out, 1, name, value);
        }
    }

    // Dimensions (collected from the DDS declarations).
    let mut dims: Vec<(String, usize)> = Vec::new();
    for v in &dds_doc.variables {
        for (dim, len) in &v.dims {
            if !dims.iter().any(|(d, _)| d == dim) {
                dims.push((dim.clone(), *len));
            }
        }
    }
    for (dim, len) in &dims {
        let _ = writeln!(
            out,
            "  <dimension name=\"{}\" length=\"{len}\"/>",
            xml_escape(dim)
        );
    }

    // Variables with their shapes and attributes.
    for v in &dds_doc.variables {
        let shape = v
            .dims
            .iter()
            .map(|(d, _)| d.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "  <variable name=\"{}\" shape=\"{}\" type=\"double\">",
            xml_escape(&v.name),
            xml_escape(&shape)
        );
        if let Some(attrs) = das_doc.get(&v.name) {
            for (name, value) in attrs {
                write_attr(&mut out, 2, name, value);
            }
        }
        out.push_str("  </variable>\n");
    }
    out.push_str("</netcdf>\n");
    Ok(out)
}

fn write_attr(out: &mut String, indent: usize, name: &str, value: &AttrValue) {
    let pad = "  ".repeat(indent);
    let (ty, val) = match value {
        AttrValue::Text(t) => ("String", xml_escape(t)),
        AttrValue::Number(n) => ("double", n.to_string()),
        AttrValue::Numbers(ns) => (
            "double",
            ns.iter().map(f64::to_string).collect::<Vec<_>>().join(" "),
        ),
    };
    let _ = writeln!(
        out,
        "{pad}<attribute name=\"{}\" type=\"{ty}\" value=\"{val}\"/>",
        xml_escape(name)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::grid_dataset;

    #[test]
    fn document_contains_everything() {
        let server = DapServer::new();
        server.publish(grid_dataset("lai", &[0.0], &[48.0], &[2.0], |_, _, _| 1.0));
        let doc = render(&server, "lai", None).unwrap();
        assert!(doc.starts_with("<?xml"));
        assert!(doc.contains("<serverFunctions>dds,das,dods,subset,ncml</serverFunctions>"));
        assert!(doc.contains("<dimension name=\"time\" length=\"1\"/>"));
        assert!(doc.contains("<variable name=\"LAI\" shape=\"time lat lon\""));
        assert!(doc.contains("attribute name=\"units\""));
        assert!(doc.contains("</netcdf>"));
    }

    #[test]
    fn escaping() {
        let server = DapServer::new();
        let mut ds = grid_dataset("weird", &[0.0], &[48.0], &[2.0], |_, _, _| 1.0);
        ds.set_attr("summary", "a < b & \"c\"");
        server.publish(ds);
        let doc = render(&server, "weird", None).unwrap();
        assert!(doc.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    fn missing_dataset_errors() {
        let server = DapServer::new();
        assert!(render(&server, "nope", None).is_err());
    }
}
