//! Retry, backoff and circuit breaking for the remote data plane.
//!
//! The on-the-fly workflow pays a WAN round trip per request; when that
//! hop misbehaves (see [`crate::chaos`]) the client must distinguish
//! *transient* wire faults — worth retrying — from *permanent* request
//! errors and from a *down* upstream that retries would only hammer.
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   decorrelated jitter (`sleep = min(cap, uniform(base, prev · 3))`),
//!   the schedule that avoids retry synchronisation across many clients.
//!   Backoff cooperates with the evaluator's query budget through
//!   [`applab_obs::deadline`]: a retry whose backoff would not fit in the
//!   remaining budget is abandoned instead of blowing the deadline.
//! * [`BreakerConfig`]/[`CircuitBreaker`] — a per-dataset breaker:
//!   *closed* → *open* after N consecutive failures (requests fail fast
//!   with [`DapError::Unavailable`]) → *half-open* after a cooldown, when
//!   one probe decides between closing again and re-opening.
//!
//! Observability: retries count as `applab_dap_retries_total{dataset}`,
//! breaker state is the `applab_dap_breaker_state{dataset}` gauge
//! (0 = closed, 1 = half-open, 2 = open), transitions to open count as
//! `applab_dap_breaker_opens_total`, and every retry emits a `dap.retry`
//! span (nested under the request's `dap.request` span, so retries show
//! up in query EXPLAIN output).

use crate::chaos::DetRng;
use crate::clock::Clock;
use crate::DapError;
use applab_obs::{Counter, Gauge};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded retries with decorrelated-jitter backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Lower bound of every backoff draw.
    pub base_backoff: Duration,
    /// Upper cap on any single backoff.
    pub max_backoff: Duration,
    /// When true, backoffs really sleep; when false they are accounted
    /// and checked against the deadline but return immediately
    /// (deterministic tests).
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(640),
            sleep: true,
        }
    }
}

impl RetryPolicy {
    /// A policy for deterministic tests: same schedule, no real sleeping.
    pub fn no_sleep() -> Self {
        RetryPolicy {
            sleep: false,
            ..RetryPolicy::default()
        }
    }

    /// Next backoff after `prev`, with decorrelated jitter:
    /// `min(cap, uniform(base, prev * 3))`.
    pub fn next_backoff(&self, prev: Duration, rng: &mut DetRng) -> Duration {
        let base = self.base_backoff.as_secs_f64();
        let hi = (prev.as_secs_f64() * 3.0).max(base);
        let drawn = base + (hi - base) * rng.next_f64();
        Duration::from_secs_f64(drawn).min(self.max_backoff)
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker fails fast before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(30),
        }
    }
}

/// Breaker state for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests fail fast without touching the upstream.
    Open,
    /// The cooldown elapsed; the next request is a probe.
    HalfOpen,
}

impl BreakerState {
    /// The gauge encoding: 0 = closed, 1 = half-open, 2 = open.
    fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

struct DatasetBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Duration,
    gauge: Arc<Gauge>,
}

/// Per-dataset circuit breakers sharing one config and clock.
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: Arc<dyn Clock>,
    instance: String,
    opens: Arc<Counter>,
    datasets: RwLock<HashMap<String, DatasetBreaker>>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        CircuitBreaker {
            config,
            clock,
            opens: applab_obs::global()
                .counter_with("applab_dap_breaker_opens_total", &[("instance", &instance)]),
            instance,
            datasets: RwLock::new(HashMap::new()),
        }
    }

    fn with_dataset<T>(&self, dataset: &str, f: impl FnOnce(&mut DatasetBreaker) -> T) -> T {
        let mut map = self.datasets.write();
        let entry = map.entry(dataset.to_string()).or_insert_with(|| {
            let gauge = applab_obs::global().gauge_with(
                "applab_dap_breaker_state",
                &[("dataset", dataset), ("instance", &self.instance)],
            );
            gauge.set(BreakerState::Closed.gauge_value());
            DatasetBreaker {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                gauge,
            }
        });
        f(entry)
    }

    /// Gate a request: `Ok` to proceed (closed, or a half-open probe),
    /// `Err(Unavailable)` to fail fast while the breaker is open.
    pub fn admit(&self, dataset: &str) -> Result<(), DapError> {
        let now = self.clock.now();
        let cooldown = self.config.cooldown;
        self.with_dataset(dataset, |b| match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                if now.saturating_sub(b.opened_at) >= cooldown {
                    b.state = BreakerState::HalfOpen;
                    b.gauge.set(b.state.gauge_value());
                    Ok(())
                } else {
                    Err(DapError::Unavailable {
                        dataset: dataset.to_string(),
                        retries: 0,
                    })
                }
            }
        })
    }

    /// The upstream answered (even with a permanent request error): close.
    pub fn record_success(&self, dataset: &str) {
        self.with_dataset(dataset, |b| {
            b.consecutive_failures = 0;
            if b.state != BreakerState::Closed {
                b.state = BreakerState::Closed;
                b.gauge.set(b.state.gauge_value());
            }
        });
    }

    /// A transient failure: count it, trip open past the threshold (a
    /// failed half-open probe re-opens immediately).
    pub fn record_failure(&self, dataset: &str) {
        let now = self.clock.now();
        let threshold = self.config.failure_threshold;
        let opened = self.with_dataset(dataset, |b| {
            b.consecutive_failures += 1;
            let trip = b.state == BreakerState::HalfOpen || b.consecutive_failures >= threshold;
            if trip && b.state != BreakerState::Open {
                b.state = BreakerState::Open;
                b.opened_at = now;
                b.gauge.set(b.state.gauge_value());
                true
            } else if trip {
                // Already open (e.g. repeated failures in one retry run):
                // keep the cooldown anchored at the latest failure.
                b.opened_at = now;
                false
            } else {
                false
            }
        });
        if opened {
            self.opens.inc();
        }
    }

    /// Current state for `dataset` (Closed when never seen).
    pub fn state(&self, dataset: &str) -> BreakerState {
        self.datasets
            .read()
            .get(dataset)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }
}

/// Full resilience configuration for a [`crate::DapClient`].
#[derive(Debug, Clone, Default)]
pub struct ResilienceConfig {
    pub retry: RetryPolicy,
    pub breaker: BreakerConfig,
}

impl ResilienceConfig {
    /// Deterministic-test shape: default schedule, no real sleeping.
    pub fn no_sleep() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::no_sleep(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Runtime resilience state: policy + breakers + the jitter RNG.
///
/// Owned by the client behind an `Option` so the zero-configuration path
/// stays a single branch.
pub struct ResilienceState {
    config: ResilienceConfig,
    breaker: CircuitBreaker,
    rng: Mutex<DetRng>,
    instance: String,
    retries: AtomicU64,
}

impl ResilienceState {
    pub fn new(config: ResilienceConfig, clock: Arc<dyn Clock>, seed: u64) -> Self {
        let breaker = CircuitBreaker::new(config.breaker.clone(), clock);
        ResilienceState {
            instance: breaker.instance.clone(),
            config,
            breaker,
            rng: Mutex::new(DetRng::new(seed)),
            retries: AtomicU64::new(0),
        }
    }

    /// Retries performed through this state so far.
    pub fn retries_total(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// The per-dataset breakers (for tests and diagnostics).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Run `run` under the retry policy and breaker for `dataset`.
    ///
    /// Retryable errors ([`DapError::is_retryable`]) are re-attempted up
    /// to `max_attempts` with decorrelated-jitter backoff; permanent
    /// errors return immediately. When attempts are exhausted — or a
    /// backoff no longer fits in the thread's remaining query budget —
    /// the caller gets [`DapError::Unavailable`].
    pub fn execute<T>(
        &self,
        dataset: &str,
        run: &dyn Fn() -> Result<T, DapError>,
    ) -> Result<T, DapError> {
        self.breaker.admit(dataset)?;
        let mut attempt = 0u32;
        // (backoff, cause) decided by the previous failed attempt.
        let mut pending: Option<(Duration, String)> = None;
        loop {
            attempt += 1;
            let _retry_span = pending.take().map(|(backoff, cause)| {
                self.retries.fetch_add(1, Ordering::Relaxed);
                applab_obs::querystats::dap_retry();
                applab_obs::global()
                    .counter_with(
                        "applab_dap_retries_total",
                        &[("dataset", dataset), ("instance", &self.instance)],
                    )
                    .inc();
                let mut span = applab_obs::span("dap.retry");
                span.record("dataset", dataset);
                span.record("attempt", attempt);
                span.record("backoff_us", backoff.as_micros() as u64);
                span.record("cause", cause);
                if self.config.retry.sleep {
                    std::thread::sleep(backoff);
                }
                span
            });
            match run() {
                Ok(v) => {
                    self.breaker.record_success(dataset);
                    return Ok(v);
                }
                Err(e) if !e.is_retryable() => {
                    // The upstream answered; a bad request is not an
                    // infrastructure failure.
                    self.breaker.record_success(dataset);
                    return Err(e);
                }
                Err(e) => {
                    self.breaker.record_failure(dataset);
                    if attempt >= self.config.retry.max_attempts {
                        return Err(DapError::Unavailable {
                            dataset: dataset.to_string(),
                            retries: attempt - 1,
                        });
                    }
                    let prev = pending
                        .as_ref()
                        .map(|(b, _)| *b)
                        .unwrap_or(self.config.retry.base_backoff);
                    let backoff = {
                        let mut rng = self.rng.lock();
                        self.config.retry.next_backoff(prev, &mut rng)
                    };
                    // Budget-aware: never sleep past the query deadline.
                    if let Some(remaining) = applab_obs::deadline::remaining() {
                        if remaining <= backoff {
                            return Err(DapError::Unavailable {
                                dataset: dataset.to_string(),
                                retries: attempt - 1,
                            });
                        }
                    }
                    pending = Some((backoff, e.to_string()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicU32;

    fn state(clock: Arc<ManualClock>) -> ResilienceState {
        ResilienceState::new(ResilienceConfig::no_sleep(), clock, 7)
    }

    #[test]
    fn backoff_is_jittered_within_bounds() {
        let policy = RetryPolicy::default();
        let mut rng = DetRng::new(3);
        let mut prev = policy.base_backoff;
        for _ in 0..100 {
            let next = policy.next_backoff(prev, &mut rng);
            assert!(next >= policy.base_backoff, "{next:?}");
            assert!(next <= policy.max_backoff, "{next:?}");
            prev = next;
        }
    }

    #[test]
    fn transient_failures_retry_until_success() {
        let st = state(ManualClock::new());
        let calls = AtomicU32::new(0);
        let out = st.execute("lai", &|| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(DapError::Transport("reset".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(st.retries_total(), 2);
        assert_eq!(st.breaker().state("lai"), BreakerState::Closed);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let st = state(ManualClock::new());
        let calls = AtomicU32::new(0);
        let out: Result<(), _> = st.execute("lai", &|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(DapError::NoSuchDataset("lai".into()))
        });
        assert_eq!(out, Err(DapError::NoSuchDataset("lai".into())));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(st.retries_total(), 0);
    }

    #[test]
    fn exhausted_attempts_become_unavailable() {
        let st = state(ManualClock::new());
        let out: Result<(), _> = st.execute("lai", &|| Err(DapError::Transport("down".into())));
        assert_eq!(
            out,
            Err(DapError::Unavailable {
                dataset: "lai".into(),
                retries: 3,
            })
        );
    }

    #[test]
    fn breaker_opens_fails_fast_and_recovers_via_probe() {
        let clock = ManualClock::new();
        let st = state(clock.clone());
        // Two exhausted runs = 8 consecutive failures > threshold 5.
        for _ in 0..2 {
            let _ = st.execute("lai", &|| -> Result<(), _> {
                Err(DapError::Transport("down".into()))
            });
        }
        assert_eq!(st.breaker().state("lai"), BreakerState::Open);
        // While open: fail fast without calling the upstream.
        let calls = AtomicU32::new(0);
        let out = st.execute("lai", &|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(1)
        });
        assert_eq!(
            out,
            Err(DapError::Unavailable {
                dataset: "lai".into(),
                retries: 0,
            })
        );
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        // After the cooldown, a probe is admitted and closes the breaker.
        clock.advance(Duration::from_secs(31));
        let out = st.execute("lai", &|| Ok(7));
        assert_eq!(out, Ok(7));
        assert_eq!(st.breaker().state("lai"), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let clock = ManualClock::new();
        let breaker = CircuitBreaker::new(BreakerConfig::default(), clock.clone());
        for _ in 0..5 {
            breaker.record_failure("lai");
        }
        assert_eq!(breaker.state("lai"), BreakerState::Open);
        clock.advance(Duration::from_secs(31));
        breaker.admit("lai").expect("probe admitted");
        assert_eq!(breaker.state("lai"), BreakerState::HalfOpen);
        breaker.record_failure("lai");
        assert_eq!(breaker.state("lai"), BreakerState::Open);
        // And the cooldown restarts from the probe failure.
        assert!(breaker.admit("lai").is_err());
    }

    #[test]
    fn breakers_are_per_dataset() {
        let clock = ManualClock::new();
        let breaker = CircuitBreaker::new(BreakerConfig::default(), clock);
        for _ in 0..5 {
            breaker.record_failure("lai");
        }
        assert_eq!(breaker.state("lai"), BreakerState::Open);
        assert_eq!(breaker.state("fapar"), BreakerState::Closed);
        assert!(breaker.admit("fapar").is_ok());
    }

    #[test]
    fn backoff_respects_query_deadline() {
        let st = ResilienceState::new(
            ResilienceConfig {
                retry: RetryPolicy {
                    max_attempts: 10,
                    base_backoff: Duration::from_millis(50),
                    max_backoff: Duration::from_secs(1),
                    sleep: false,
                },
                breaker: BreakerConfig::default(),
            },
            ManualClock::new(),
            7,
        );
        // 1 ms of budget left: the first 50 ms+ backoff cannot fit, so the
        // retry loop gives up after a single attempt.
        let _guard =
            applab_obs::deadline::enter(Some(std::time::Instant::now() + Duration::from_millis(1)));
        let calls = AtomicU32::new(0);
        let out: Result<(), _> = st.execute("lai", &|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(DapError::Transport("down".into()))
        });
        assert_eq!(
            out,
            Err(DapError::Unavailable {
                dataset: "lai".into(),
                retries: 0,
            })
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
