//! The binary data response (the `.dods` payload).
//!
//! Real DAP 2 uses XDR; we use an equivalent, self-describing big-endian
//! framing (magic + per-variable name/dims/values). What matters for the
//! reproduction is the *shape* of the protocol — a binary stream whose size
//! is proportional to the requested subset, so the simulated WAN transport
//! can charge realistic transfer times per byte.

use crate::DapError;
use applab_array::{NdArray, Variable};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 8] = b"ALDODS01";

/// Encode a set of variables (already sliced to the requested subset).
pub fn encode(variables: &[Variable]) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + variables
            .iter()
            .map(|v| v.data.len() * 8 + 64)
            .sum::<usize>(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32(variables.len() as u32);
    for v in variables {
        put_str(&mut buf, &v.name);
        buf.put_u16(v.dims.len() as u16);
        for (dim, &len) in v.dims.iter().zip(v.data.shape()) {
            put_str(&mut buf, dim);
            buf.put_u64(len as u64);
        }
        buf.put_u64(v.data.len() as u64);
        for &x in v.data.data() {
            buf.put_f64(x);
        }
    }
    buf.freeze()
}

/// Decode a `.dods` payload back into variables.
pub fn decode(mut payload: Bytes) -> Result<Vec<Variable>, DapError> {
    let err = |m: &str| DapError::Wire(format!("DODS: {m}"));
    if payload.remaining() < 12 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 8];
    payload.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let count = payload.get_u32() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = get_str(&mut payload).ok_or_else(|| err("truncated name"))?;
        if payload.remaining() < 2 {
            return Err(err("truncated rank"));
        }
        let rank = payload.get_u16() as usize;
        let mut dims = Vec::with_capacity(rank);
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let dim = get_str(&mut payload).ok_or_else(|| err("truncated dim"))?;
            if payload.remaining() < 8 {
                return Err(err("truncated dim length"));
            }
            let len = payload.get_u64() as usize;
            dims.push(dim);
            shape.push(len);
        }
        if payload.remaining() < 8 {
            return Err(err("truncated value count"));
        }
        let n = payload.get_u64() as usize;
        if payload.remaining() < n * 8 {
            return Err(err("truncated values"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(payload.get_f64());
        }
        let array =
            NdArray::from_vec(shape, data).map_err(|e| err(&format!("inconsistent shape: {e}")))?;
        out.push(Variable::new(name, dims, array));
    }
    Ok(out)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Option<String> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Variable> {
        vec![
            Variable::new(
                "LAI",
                vec!["time".into(), "lat".into()],
                NdArray::from_vec(vec![2, 3], vec![0.5, 1.0, f64::NAN, 2.0, 2.5, 3.0]).unwrap(),
            ),
            Variable::new(
                "time",
                vec!["time".into()],
                NdArray::vector(vec![0.0, 10.0]),
            ),
        ]
    }

    #[test]
    fn roundtrip() {
        let vars = sample();
        let payload = encode(&vars);
        let decoded = decode(payload).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].name, "LAI");
        assert_eq!(decoded[0].dims, vec!["time".to_string(), "lat".to_string()]);
        assert_eq!(decoded[0].data.shape(), &[2, 3]);
        assert!(decoded[0].data.get(&[0, 2]).unwrap().is_nan());
        assert_eq!(decoded[0].data.get(&[1, 2]).unwrap(), 3.0);
        assert_eq!(decoded[1].data.data(), &[0.0, 10.0]);
    }

    #[test]
    fn size_is_proportional_to_subset() {
        let small = encode(&[Variable::new(
            "x",
            vec!["t".into()],
            NdArray::zeros(vec![10]),
        )]);
        let large = encode(&[Variable::new(
            "x",
            vec!["t".into()],
            NdArray::zeros(vec![10_000]),
        )]);
        assert!(large.len() > small.len() * 500);
    }

    #[test]
    fn rejects_corrupt_payloads() {
        assert!(decode(Bytes::from_static(b"short")).is_err());
        assert!(decode(Bytes::from_static(b"WRONGMAG\0\0\0\0")).is_err());
        let good = encode(&sample());
        let truncated = good.slice(..good.len() - 5);
        assert!(decode(truncated).is_err());
    }

    #[test]
    fn empty_variable_list() {
        let payload = encode(&[]);
        assert_eq!(decode(payload).unwrap().len(), 0);
    }
}
