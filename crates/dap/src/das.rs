//! The Dataset Attribute Structure.
//!
//! "The DAS provides information about the variables themselves"
//! (Section 3.1). Classic DAP 2 text form; global attributes live in the
//! `NC_GLOBAL` container, per the netCDF-over-DAP convention the paper's
//! metadata machinery relies on ("we also use the netCDF variable
//! attributes and global attributes to perform machine-to-machine
//! communication of metadata").

use applab_array::{AttrValue, Dataset};
use std::collections::BTreeMap;
use std::fmt::Write;

/// A parsed DAS: container name → attribute name → value.
pub type Das = BTreeMap<String, BTreeMap<String, AttrValue>>;

fn render_attr(out: &mut String, name: &str, value: &AttrValue) {
    match value {
        AttrValue::Text(t) => {
            let _ = writeln!(out, "        String {name} \"{}\";", t.replace('"', "\\\""));
        }
        AttrValue::Number(n) => {
            let _ = writeln!(out, "        Float64 {name} {n};");
        }
        AttrValue::Numbers(ns) => {
            let list = ns.iter().map(f64::to_string).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "        Float64 {name} {list};");
        }
    }
}

/// Render a dataset's DAS.
pub fn render(ds: &Dataset) -> String {
    let mut out = String::from("Attributes {\n");
    out.push_str("    NC_GLOBAL {\n");
    for (name, value) in &ds.attributes {
        render_attr(&mut out, name, value);
    }
    out.push_str("    }\n");
    for v in &ds.variables {
        let _ = writeln!(out, "    {} {{", v.name);
        for (name, value) in &v.attributes {
            render_attr(&mut out, name, value);
        }
        out.push_str("    }\n");
    }
    out.push_str("}\n");
    out
}

/// Parse a DAS document (the subset [`render`] produces).
pub fn parse(text: &str) -> Result<Das, crate::DapError> {
    let err = |m: &str| crate::DapError::Wire(format!("DAS: {m}"));
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    match lines.next() {
        Some("Attributes {") => {}
        other => return Err(err(&format!("expected 'Attributes {{', got {other:?}"))),
    }
    let mut das = Das::new();
    let mut current: Option<String> = None;
    for line in lines {
        if line == "}" {
            match current.take() {
                Some(_) => continue,
                None => return Ok(das), // final close
            }
        }
        if let Some(container) = line.strip_suffix('{') {
            let name = container.trim().to_string();
            das.entry(name.clone()).or_default();
            current = Some(name);
            continue;
        }
        let container = current
            .clone()
            .ok_or_else(|| err(&format!("attribute outside container: {line:?}")))?;
        let decl = line.trim_end_matches(';');
        if let Some(rest) = decl.strip_prefix("String ") {
            let (name, value) = rest
                .split_once(' ')
                .ok_or_else(|| err(&format!("bad String attribute {line:?}")))?;
            // Strip exactly one pair of surrounding quotes, then unescape.
            let value = value.trim();
            let value = value.strip_prefix('"').unwrap_or(value);
            let value = value.strip_suffix('"').unwrap_or(value);
            let value = value.replace("\\\"", "\"");
            das.entry(container)
                .or_default()
                .insert(name.to_string(), AttrValue::Text(value));
        } else if let Some(rest) = decl.strip_prefix("Float64 ") {
            let (name, value) = rest
                .split_once(' ')
                .ok_or_else(|| err(&format!("bad Float64 attribute {line:?}")))?;
            let nums: Result<Vec<f64>, _> =
                value.split(',').map(|p| p.trim().parse::<f64>()).collect();
            let nums = nums.map_err(|_| err(&format!("bad number list {value:?}")))?;
            let v = if nums.len() == 1 {
                AttrValue::Number(nums[0])
            } else {
                AttrValue::Numbers(nums)
            };
            das.entry(container)
                .or_default()
                .insert(name.to_string(), v);
        } else {
            return Err(err(&format!("unsupported attribute type in {line:?}")));
        }
    }
    Err(err("missing closing brace"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_array::{NdArray, Variable};

    fn sample() -> Dataset {
        let mut ds = Dataset::new("lai");
        ds.set_attr("title", "Leaf Area Index");
        ds.set_attr("version", 2.0);
        ds.add_dim("time", 1);
        ds.add_variable(
            Variable::new("LAI", vec!["time".into()], NdArray::zeros(vec![1]))
                .with_attr("units", "m2/m2")
                .with_attr("valid_range", AttrValue::Numbers(vec![0.0, 10.0])),
        )
        .unwrap();
        ds
    }

    #[test]
    fn roundtrip() {
        let text = render(&sample());
        let das = parse(&text).unwrap();
        assert_eq!(
            das["NC_GLOBAL"]["title"],
            AttrValue::Text("Leaf Area Index".into())
        );
        assert_eq!(das["NC_GLOBAL"]["version"], AttrValue::Number(2.0));
        assert_eq!(das["LAI"]["units"], AttrValue::Text("m2/m2".into()));
        assert_eq!(
            das["LAI"]["valid_range"],
            AttrValue::Numbers(vec![0.0, 10.0])
        );
    }

    #[test]
    fn quotes_escaped() {
        let mut ds = sample();
        ds.set_attr("summary", "the \"best\" product");
        let das = parse(&render(&ds)).unwrap();
        assert_eq!(
            das["NC_GLOBAL"]["summary"],
            AttrValue::Text("the \"best\" product".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("Attributes {\n    NC_GLOBAL {\n").is_err());
        assert!(parse("Attributes {\n    Int16 x 3;\n}").is_err());
    }

    #[test]
    fn empty_containers_ok() {
        let das = parse("Attributes {\n    NC_GLOBAL {\n    }\n}\n").unwrap();
        assert!(das["NC_GLOBAL"].is_empty());
    }
}
