//! The Dataset Descriptor Structure.
//!
//! "The DDS describes the dataset's structure and the relationships between
//! its variables" (Section 3.1). We render the classic DAP 2 text form with
//! `Float64` arrays and parse it back (the client uses the parsed DDS to
//! validate constraints before asking for data).

use applab_array::Dataset;
use std::fmt::Write;

/// A variable declaration inside a DDS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdsVariable {
    pub name: String,
    /// (dimension name, length) pairs, in axis order.
    pub dims: Vec<(String, usize)>,
}

/// A parsed DDS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dds {
    pub dataset: String,
    pub variables: Vec<DdsVariable>,
}

impl Dds {
    pub fn variable(&self, name: &str) -> Option<&DdsVariable> {
        self.variables.iter().find(|v| v.name == name)
    }
}

/// Render a dataset's DDS.
pub fn render(ds: &Dataset) -> String {
    let mut out = String::from("Dataset {\n");
    for v in &ds.variables {
        let mut decl = format!("    Float64 {}", v.name);
        for (dim, len) in v.dims.iter().zip(v.data.shape()) {
            let _ = write!(decl, "[{dim} = {len}]");
        }
        decl.push_str(";\n");
        out.push_str(&decl);
    }
    let _ = writeln!(out, "}} {};", ds.name);
    out
}

/// Parse a DDS document (the subset [`render`] produces).
pub fn parse(text: &str) -> Result<Dds, crate::DapError> {
    let err = |m: &str| crate::DapError::Wire(format!("DDS: {m}"));
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    match lines.next() {
        Some("Dataset {") => {}
        other => return Err(err(&format!("expected 'Dataset {{', got {other:?}"))),
    }
    let mut variables = Vec::new();
    let mut dataset = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("}") {
            let name = rest.trim().trim_end_matches(';').trim();
            dataset = Some(name.to_string());
            break;
        }
        let decl = line.trim_end_matches(';');
        let decl = decl
            .strip_prefix("Float64 ")
            .or_else(|| decl.strip_prefix("Float32 "))
            .or_else(|| decl.strip_prefix("Int32 "))
            .ok_or_else(|| err(&format!("unsupported declaration {line:?}")))?;
        // name[dim = len][dim = len]...
        let (name, dims_part) = match decl.find('[') {
            Some(i) => (&decl[..i], &decl[i..]),
            None => (decl, ""),
        };
        let mut dims = Vec::new();
        for piece in dims_part.split('[').skip(1) {
            let piece = piece.trim_end_matches(']');
            let (dim, len) = piece
                .split_once('=')
                .ok_or_else(|| err(&format!("bad dimension {piece:?}")))?;
            dims.push((
                dim.trim().to_string(),
                len.trim()
                    .parse::<usize>()
                    .map_err(|_| err(&format!("bad length {piece:?}")))?,
            ));
        }
        variables.push(DdsVariable {
            name: name.trim().to_string(),
            dims,
        });
    }
    Ok(Dds {
        dataset: dataset.ok_or_else(|| err("missing closing line"))?,
        variables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_array::{NdArray, Variable};

    fn sample() -> Dataset {
        let mut ds = Dataset::new("lai_global");
        ds.add_dim("time", 3).add_dim("lat", 4).add_dim("lon", 5);
        ds.add_variable(Variable::new(
            "time",
            vec!["time".into()],
            NdArray::vector(vec![0.0, 1.0, 2.0]),
        ))
        .unwrap();
        ds.add_variable(Variable::new(
            "LAI",
            vec!["time".into(), "lat".into(), "lon".into()],
            NdArray::zeros(vec![3, 4, 5]),
        ))
        .unwrap();
        ds
    }

    #[test]
    fn render_form() {
        let text = render(&sample());
        assert!(text.starts_with("Dataset {\n"));
        assert!(text.contains("Float64 time[time = 3];"));
        assert!(text.contains("Float64 LAI[time = 3][lat = 4][lon = 5];"));
        assert!(text.trim_end().ends_with("} lai_global;"));
    }

    #[test]
    fn roundtrip() {
        let text = render(&sample());
        let dds = parse(&text).unwrap();
        assert_eq!(dds.dataset, "lai_global");
        assert_eq!(dds.variables.len(), 2);
        let lai = dds.variable("LAI").unwrap();
        assert_eq!(
            lai.dims,
            vec![
                ("time".to_string(), 3),
                ("lat".to_string(), 4),
                ("lon".to_string(), 5)
            ]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("NotADataset {\n} x;").is_err());
        assert!(parse("Dataset {\n    String s;\n} x;").is_err());
        assert!(parse("Dataset {\n    Float64 v[lat 4];\n} x;").is_err());
        assert!(parse("Dataset {\n    Float64 v[lat = four];\n} x;").is_err());
        assert!(parse("Dataset {\n    Float64 v;\n").is_err()); // no close
    }

    #[test]
    fn scalar_variable() {
        let dds = parse("Dataset {\n    Float64 x;\n} d;").unwrap();
        assert!(dds.variable("x").unwrap().dims.is_empty());
    }
}
