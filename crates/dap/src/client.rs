//! The DAP client used by the SDL and by the OBDA `opendap` virtual table.
//!
//! Every call goes through the configured [`Transport`], which charges the
//! simulated WAN cost — so downstream timings (bench B1) reflect the
//! remote-access behaviour the paper describes.
//!
//! Two defensive layers sit around the wire:
//!
//! * **Integrity** — every response is length- and CRC-32-checked across
//!   [`Transport::deliver`] (modelled on DAP4's response checksums), so a
//!   truncated or corrupted payload surfaces as a typed
//!   [`DapError::Truncated`]/[`DapError::Transport`] instead of a silently
//!   wrong answer.
//! * **Resilience** (optional, [`DapClient::enable_resilience`]) — a
//!   [`crate::resilience::RetryPolicy`] plus per-dataset circuit breaker;
//!   see [`crate::resilience`] for the taxonomy and metrics.

use crate::clock::Clock;
use crate::constraint::Constraint;
use crate::resilience::{ResilienceConfig, ResilienceState};
use crate::server::DapServer;
use crate::transport::Transport;
use crate::{das, dds, dods, DapError};
use applab_array::Variable;
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;

/// CRC-32 (IEEE 802.3, reflected) — the checksum DAP4 attaches to data
/// responses. Bitwise implementation; payloads here are small enough that
/// a lookup table would be noise.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn utf8(payload: Bytes) -> Result<String, DapError> {
    String::from_utf8(payload.to_vec())
        .map_err(|_| DapError::Wire("response is not valid UTF-8".to_string()))
}

/// A client bound to one server through a transport.
pub struct DapClient {
    server: Arc<DapServer>,
    transport: Arc<dyn Transport>,
    token: Option<String>,
    /// Instance-labeled handle into the global metrics registry; the
    /// [`bytes_received`](Self::bytes_received) getter reads it back.
    bytes_received: Arc<applab_obs::Counter>,
    /// Retry + breaker state; `None` (the default) keeps the legacy
    /// fail-on-first-error behaviour with zero overhead.
    resilience: RwLock<Option<Arc<ResilienceState>>>,
}

impl DapClient {
    pub fn new(server: Arc<DapServer>, transport: Arc<dyn Transport>) -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        DapClient {
            server,
            transport,
            token: None,
            bytes_received: applab_obs::global().counter_with(
                "applab_dap_bytes_received_total",
                &[("instance", &instance)],
            ),
            resilience: RwLock::new(None),
        }
    }

    /// Use an access token for every request (RAMANI registration scheme).
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }

    /// Turn on retry + circuit breaking for all requests. `clock` drives
    /// the breaker cooldown (use a `ManualClock` in deterministic tests);
    /// `seed` drives the backoff jitter.
    pub fn enable_resilience(&self, config: ResilienceConfig, clock: Arc<dyn Clock>, seed: u64) {
        *self.resilience.write() = Some(Arc::new(ResilienceState::new(config, clock, seed)));
    }

    /// Drop back to fail-on-first-error.
    pub fn disable_resilience(&self) {
        *self.resilience.write() = None;
    }

    /// The active resilience state, if any (tests, diagnostics).
    pub fn resilience(&self) -> Option<Arc<ResilienceState>> {
        self.resilience.read().clone()
    }

    /// Total payload bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.get()
    }

    /// Round trips performed so far (from the transport).
    pub fn round_trips(&self) -> u64 {
        self.transport.round_trips()
    }

    /// One integrity-checked wire exchange: checksum the authoritative
    /// server payload, push it through the transport, and verify what
    /// arrived, so wire damage can never reach a parser unnoticed.
    fn exchange(&self, payload: Bytes) -> Result<Bytes, DapError> {
        let expected_len = payload.len();
        let expected_crc = crc32(&payload);
        let delivered = self.transport.deliver(payload)?;
        if delivered.len() != expected_len {
            return Err(DapError::Truncated {
                expected: expected_len,
                delivered: delivered.len(),
            });
        }
        if crc32(&delivered) != expected_crc {
            return Err(DapError::Transport(
                "payload integrity check failed: checksum mismatch".to_string(),
            ));
        }
        self.bytes_received.add(delivered.len() as u64);
        Ok(delivered)
    }

    /// The shared request path: produce the server payload, move it across
    /// the wire with integrity checks, parse — all under the retry policy
    /// and breaker when resilience is enabled, and under one `dap.request`
    /// span either way.
    fn fetch<T>(
        &self,
        dataset: &str,
        kind: &'static str,
        produce: &dyn Fn() -> Result<Bytes, DapError>,
        parse: &dyn Fn(Bytes) -> Result<T, DapError>,
    ) -> Result<T, DapError> {
        let mut span = applab_obs::span("dap.request");
        span.record("kind", kind);
        let run = || {
            let payload = produce()?;
            let delivered = self.exchange(payload)?;
            let bytes = delivered.len();
            let value = parse(delivered)?;
            Ok((value, bytes))
        };
        let resilience = self.resilience.read().clone();
        let outcome = match resilience {
            Some(state) => state.execute(dataset, &run),
            None => run(),
        };
        match outcome {
            Ok((value, bytes)) => {
                span.record("bytes", bytes);
                applab_obs::querystats::dap_round_trip(bytes as u64);
                Ok(value)
            }
            Err(e) => {
                span.record("error", e.to_string());
                Err(e)
            }
        }
    }

    /// Fetch and parse the DDS.
    pub fn get_dds(&self, dataset: &str) -> Result<dds::Dds, DapError> {
        self.fetch(
            dataset,
            "dds",
            &|| {
                self.server
                    .dds(dataset, self.token.as_deref())
                    .map(|text| Bytes::from(text.into_bytes()))
            },
            &|payload| dds::parse(&utf8(payload)?),
        )
    }

    /// Fetch and parse the DAS.
    pub fn get_das(&self, dataset: &str) -> Result<das::Das, DapError> {
        self.fetch(
            dataset,
            "das",
            &|| {
                self.server
                    .das(dataset, self.token.as_deref())
                    .map(|text| Bytes::from(text.into_bytes()))
            },
            &|payload| das::parse(&utf8(payload)?),
        )
    }

    /// Fetch a data subset.
    pub fn get_data(
        &self,
        dataset: &str,
        constraint: &Constraint,
    ) -> Result<Vec<Variable>, DapError> {
        self.fetch(
            dataset,
            "dods",
            &|| self.server.dods(dataset, constraint, self.token.as_deref()),
            &dods::decode,
        )
    }

    /// Fetch the NcML document (DAS + DDS in one response).
    pub fn get_ncml(&self, dataset: &str) -> Result<String, DapError> {
        self.fetch(
            dataset,
            "ncml",
            &|| {
                crate::ncml_service::render(&self.server, dataset, self.token.as_deref())
                    .map(|text| Bytes::from(text.into_bytes()))
            },
            &utf8,
        )
    }

    /// Dataset names visible on the server; fallible and instrumented
    /// like every other request (span kind `catalog`).
    pub fn try_list_datasets(&self) -> Result<Vec<String>, DapError> {
        self.fetch(
            "_catalog",
            "catalog",
            &|| {
                Ok(Bytes::from(
                    self.server.dataset_names().join("\n").into_bytes(),
                ))
            },
            &|payload| {
                let text = utf8(payload)?;
                Ok(if text.is_empty() {
                    Vec::new()
                } else {
                    text.split('\n').map(String::from).collect()
                })
            },
        )
    }

    /// Dataset names visible on the server, swallowing failures (legacy
    /// shape — prefer [`DapClient::try_list_datasets`]).
    pub fn list_datasets(&self) -> Vec<String> {
        self.try_list_datasets().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosConfig, ChaosTransport};
    use crate::clock::ManualClock;
    use crate::resilience::BreakerState;
    use crate::server::grid_dataset;
    use crate::transport::{Local, SimulatedWan};
    use applab_array::Range;
    use std::time::Duration;

    fn setup() -> Arc<DapServer> {
        let s = DapServer::new();
        s.publish(grid_dataset(
            "lai",
            &[0.0, 86_400.0],
            &[48.0, 48.5],
            &[2.0, 2.5],
            |t, la, lo| (t + la + lo) as f64,
        ));
        Arc::new(s)
    }

    #[test]
    fn crc32_test_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fetch_metadata_and_data() {
        let client = DapClient::new(setup(), Arc::new(Local::new()));
        let dds = client.get_dds("lai").unwrap();
        assert_eq!(dds.dataset, "lai");
        let das = client.get_das("lai").unwrap();
        assert!(das.contains_key("NC_GLOBAL"));
        let vars = client
            .get_data(
                "lai",
                &Constraint::variable("LAI", vec![Range::index(1), Range::all(2), Range::all(2)]),
            )
            .unwrap();
        assert_eq!(vars[0].data.shape(), &[1, 2, 2]);
        assert_eq!(vars[0].data.get(&[0, 1, 1]).unwrap(), 3.0);
        assert!(client.bytes_received() > 0);
        assert_eq!(client.round_trips(), 3);
        assert_eq!(client.list_datasets(), vec!["lai".to_string()]);
        assert_eq!(client.try_list_datasets().unwrap(), vec!["lai".to_string()]);
    }

    #[test]
    fn wan_transport_accounts_cost() {
        let wan = Arc::new(SimulatedWan::new(Duration::from_millis(10), 1e6, false));
        let client = DapClient::new(setup(), wan.clone());
        client.get_dds("lai").unwrap();
        client.get_data("lai", &Constraint::all()).unwrap();
        assert_eq!(wan.round_trips(), 2);
        assert!(wan.total_charged() >= Duration::from_millis(20));
    }

    #[test]
    fn token_flows_through() {
        let server = setup();
        server.register_token("t", "bob");
        let denied = DapClient::new(server.clone(), Arc::new(Local::new()));
        assert!(denied.get_dds("lai").is_err());
        let ok = DapClient::new(server.clone(), Arc::new(Local::new())).with_token("t");
        assert!(ok.get_dds("lai").is_ok());
        assert_eq!(server.access_log()["bob"]["lai"], 1);
    }

    #[test]
    fn damaged_payloads_are_typed_errors_never_wrong_answers() {
        // 100% truncation: every request fails with Truncated or a wire
        // parse error — never a short read that decodes "successfully".
        let truncating = ChaosTransport::new(
            Arc::new(Local::new()),
            ChaosConfig {
                truncate_rate: 1.0,
                ..ChaosConfig::default()
            },
            11,
        );
        let client = DapClient::new(setup(), Arc::new(truncating));
        for _ in 0..8 {
            match client.get_data("lai", &Constraint::all()) {
                Err(DapError::Truncated {
                    expected,
                    delivered,
                }) => {
                    assert!(delivered < expected)
                }
                other => panic!("expected Truncated, got {other:?}"),
            }
        }
        // 100% corruption: CRC catches every flipped payload.
        let corrupting = ChaosTransport::new(
            Arc::new(Local::new()),
            ChaosConfig {
                corrupt_rate: 1.0,
                ..ChaosConfig::default()
            },
            11,
        );
        let client = DapClient::new(setup(), Arc::new(corrupting));
        for _ in 0..8 {
            match client.get_data("lai", &Constraint::all()) {
                Err(DapError::Transport(msg)) => assert!(msg.contains("checksum")),
                other => panic!("expected checksum failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn resilient_client_rides_through_faults() {
        // 40% transient failures, 4 attempts: P(all four attempts fail) ≈
        // 2.6% per request — with a fixed seed the sequence below is known
        // to succeed, and determinism makes this exact, not flaky.
        let chaos = ChaosTransport::new(
            Arc::new(Local::new()),
            ChaosConfig {
                transient_rate: 0.4,
                ..ChaosConfig::default()
            },
            21,
        );
        let client = DapClient::new(setup(), Arc::new(chaos));
        client.enable_resilience(ResilienceConfig::no_sleep(), ManualClock::new(), 3);
        for _ in 0..16 {
            client
                .get_data("lai", &Constraint::all())
                .expect("retries absorb faults");
        }
        let state = client.resilience().expect("resilience enabled");
        assert!(state.retries_total() > 0, "some retries must have fired");
        assert_eq!(state.breaker().state("lai"), BreakerState::Closed);
    }

    #[test]
    fn dead_upstream_trips_breaker_and_fails_fast() {
        let chaos = ChaosTransport::new(
            Arc::new(Local::new()),
            ChaosConfig {
                transient_rate: 1.0,
                ..ChaosConfig::default()
            },
            5,
        );
        let chaos = Arc::new(chaos);
        let client = DapClient::new(setup(), chaos.clone());
        let clock = ManualClock::new();
        client.enable_resilience(ResilienceConfig::no_sleep(), clock.clone(), 3);
        // Exhaust retries twice: 8 consecutive failures trip the breaker.
        for _ in 0..2 {
            match client.get_data("lai", &Constraint::all()) {
                Err(DapError::Unavailable { dataset, retries }) => {
                    assert_eq!(dataset, "lai");
                    assert_eq!(retries, 3);
                }
                other => panic!("expected Unavailable, got {other:?}"),
            }
        }
        let state = client.resilience().expect("resilience enabled");
        assert_eq!(state.breaker().state("lai"), BreakerState::Open);
        // Open breaker: fail fast, the wire is not even touched.
        let trips_before = client.round_trips();
        assert!(matches!(
            client.get_data("lai", &Constraint::all()),
            Err(DapError::Unavailable { retries: 0, .. })
        ));
        assert_eq!(client.round_trips(), trips_before);
        // After the cooldown the probe goes through (and fails again here,
        // since the transport still faults 100%).
        clock.advance(Duration::from_secs(31));
        assert!(client.get_data("lai", &Constraint::all()).is_err());
        assert!(client.round_trips() > trips_before);
    }
}
