//! The DAP client used by the SDL and by the OBDA `opendap` virtual table.
//!
//! Every call goes through the configured [`Transport`], which charges the
//! simulated WAN cost — so downstream timings (bench B1) reflect the
//! remote-access behaviour the paper describes.

use crate::constraint::Constraint;
use crate::server::DapServer;
use crate::transport::Transport;
use crate::{das, dds, dods, DapError};
use applab_array::Variable;
use std::sync::Arc;

/// A client bound to one server through a transport.
pub struct DapClient {
    server: Arc<DapServer>,
    transport: Arc<dyn Transport>,
    token: Option<String>,
    /// Instance-labeled handle into the global metrics registry; the
    /// [`bytes_received`](Self::bytes_received) getter reads it back.
    bytes_received: Arc<applab_obs::Counter>,
}

impl DapClient {
    pub fn new(server: Arc<DapServer>, transport: Arc<dyn Transport>) -> Self {
        let instance = applab_obs::next_instance_id().to_string();
        DapClient {
            server,
            transport,
            token: None,
            bytes_received: applab_obs::global().counter_with(
                "applab_dap_bytes_received_total",
                &[("instance", &instance)],
            ),
        }
    }

    /// Use an access token for every request (RAMANI registration scheme).
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }

    /// Total payload bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.get()
    }

    /// Round trips performed so far (from the transport).
    pub fn round_trips(&self) -> u64 {
        self.transport.round_trips()
    }

    fn account(&self, bytes: usize) {
        self.bytes_received.add(bytes as u64);
        self.transport.charge(bytes);
    }

    /// Fetch and parse the DDS.
    pub fn get_dds(&self, dataset: &str) -> Result<dds::Dds, DapError> {
        let mut span = applab_obs::span("dap.request");
        span.record("kind", "dds");
        let text = self.server.dds(dataset, self.token.as_deref())?;
        span.record("bytes", text.len());
        self.account(text.len());
        dds::parse(&text)
    }

    /// Fetch and parse the DAS.
    pub fn get_das(&self, dataset: &str) -> Result<das::Das, DapError> {
        let mut span = applab_obs::span("dap.request");
        span.record("kind", "das");
        let text = self.server.das(dataset, self.token.as_deref())?;
        span.record("bytes", text.len());
        self.account(text.len());
        das::parse(&text)
    }

    /// Fetch a data subset.
    pub fn get_data(
        &self,
        dataset: &str,
        constraint: &Constraint,
    ) -> Result<Vec<Variable>, DapError> {
        let mut span = applab_obs::span("dap.request");
        span.record("kind", "dods");
        let payload = self
            .server
            .dods(dataset, constraint, self.token.as_deref())?;
        span.record("bytes", payload.len());
        self.account(payload.len());
        dods::decode(payload)
    }

    /// Fetch the NcML document (DAS + DDS in one response).
    pub fn get_ncml(&self, dataset: &str) -> Result<String, DapError> {
        let mut span = applab_obs::span("dap.request");
        span.record("kind", "ncml");
        let text = crate::ncml_service::render(&self.server, dataset, self.token.as_deref())?;
        span.record("bytes", text.len());
        self.account(text.len());
        Ok(text)
    }

    /// Dataset names visible on the server.
    pub fn list_datasets(&self) -> Vec<String> {
        let names = self.server.dataset_names();
        self.account(names.iter().map(String::len).sum());
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::grid_dataset;
    use crate::transport::{Local, SimulatedWan};
    use applab_array::Range;
    use std::time::Duration;

    fn setup() -> Arc<DapServer> {
        let s = DapServer::new();
        s.publish(grid_dataset(
            "lai",
            &[0.0, 86_400.0],
            &[48.0, 48.5],
            &[2.0, 2.5],
            |t, la, lo| (t + la + lo) as f64,
        ));
        Arc::new(s)
    }

    #[test]
    fn fetch_metadata_and_data() {
        let client = DapClient::new(setup(), Arc::new(Local::new()));
        let dds = client.get_dds("lai").unwrap();
        assert_eq!(dds.dataset, "lai");
        let das = client.get_das("lai").unwrap();
        assert!(das.contains_key("NC_GLOBAL"));
        let vars = client
            .get_data(
                "lai",
                &Constraint::variable("LAI", vec![Range::index(1), Range::all(2), Range::all(2)]),
            )
            .unwrap();
        assert_eq!(vars[0].data.shape(), &[1, 2, 2]);
        assert_eq!(vars[0].data.get(&[0, 1, 1]).unwrap(), 3.0);
        assert!(client.bytes_received() > 0);
        assert_eq!(client.round_trips(), 3);
        assert_eq!(client.list_datasets(), vec!["lai".to_string()]);
    }

    #[test]
    fn wan_transport_accounts_cost() {
        let wan = Arc::new(SimulatedWan::new(Duration::from_millis(10), 1e6, false));
        let client = DapClient::new(setup(), wan.clone());
        client.get_dds("lai").unwrap();
        client.get_data("lai", &Constraint::all()).unwrap();
        assert_eq!(wan.round_trips(), 2);
        assert!(wan.total_charged() >= Duration::from_millis(20));
    }

    #[test]
    fn token_flows_through() {
        let server = setup();
        server.register_token("t", "bob");
        let denied = DapClient::new(server.clone(), Arc::new(Local::new()));
        assert!(denied.get_dds("lai").is_err());
        let ok = DapClient::new(server.clone(), Arc::new(Local::new())).with_token("t");
        assert!(ok.get_dds("lai").is_ok());
        assert_eq!(server.access_log()["bob"]["lai"], 1);
    }
}
