//! DAP constraint expressions.
//!
//! A constraint selects variables and hyperslabs:
//! `LAI[0:9][2][3],time[0:9]` — per-variable bracketed ranges in
//! `[start]`, `[start:stop]` or `[start:stride:stop]` form. An empty
//! constraint selects everything. This "serialization based on internal
//! array indices" is exactly what the paper credits for OPeNDAP's cache
//! friendliness versus WCS bounding boxes (Section 5).

use crate::DapError;
use applab_array::Range;

/// One projected variable with its (possibly empty = whole-array) slab.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Projection {
    pub variable: String,
    pub ranges: Vec<Range>,
}

/// A parsed constraint expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Constraint {
    /// Empty means "all variables, whole arrays".
    pub projections: Vec<Projection>,
}

impl Constraint {
    /// The unconstrained expression.
    pub fn all() -> Self {
        Constraint::default()
    }

    /// Constrain a single variable.
    pub fn variable(name: impl Into<String>, ranges: Vec<Range>) -> Self {
        Constraint {
            projections: vec![Projection {
                variable: name.into(),
                ranges,
            }],
        }
    }

    /// Parse a constraint expression.
    pub fn parse(text: &str) -> Result<Self, DapError> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(Constraint::all());
        }
        let mut projections = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(DapError::Constraint("empty projection".into()));
            }
            let (name, mut rest) = match part.find('[') {
                Some(i) => (&part[..i], &part[i..]),
                None => (part, ""),
            };
            if name.is_empty() {
                return Err(DapError::Constraint(format!(
                    "missing variable in {part:?}"
                )));
            }
            let mut ranges = Vec::new();
            while !rest.is_empty() {
                if !rest.starts_with('[') {
                    return Err(DapError::Constraint(format!("expected '[' in {part:?}")));
                }
                let close = rest
                    .find(']')
                    .ok_or_else(|| DapError::Constraint(format!("unclosed '[' in {part:?}")))?;
                let body = &rest[1..close];
                rest = &rest[close + 1..];
                let nums: Result<Vec<usize>, _> =
                    body.split(':').map(|p| p.trim().parse::<usize>()).collect();
                let nums = nums.map_err(|_| DapError::Constraint(format!("bad range {body:?}")))?;
                let range = match nums.as_slice() {
                    [i] => Range::index(*i),
                    [start, stop] => Range::new(*start, 1, *stop),
                    [start, stride, stop] => Range::new(*start, *stride, *stop),
                    _ => {
                        return Err(DapError::Constraint(format!(
                            "range {body:?} has {} parts",
                            nums.len()
                        )))
                    }
                };
                if range.count() == 0 {
                    return Err(DapError::Constraint(format!("empty range {body:?}")));
                }
                ranges.push(range);
            }
            projections.push(Projection {
                variable: name.to_string(),
                ranges,
            });
        }
        Ok(Constraint { projections })
    }

    /// Canonical string form (used as cache key by the client and by the
    /// OBDA `opendap` virtual table).
    pub fn to_query_string(&self) -> String {
        self.projections
            .iter()
            .map(|p| {
                let mut s = p.variable.clone();
                for r in &p.ranges {
                    s.push_str(&r.to_string());
                }
                s
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_query_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_variants() {
        let c = Constraint::parse("LAI[0:9][2][3],time[0:2:9]").unwrap();
        assert_eq!(c.projections.len(), 2);
        let lai = &c.projections[0];
        assert_eq!(lai.variable, "LAI");
        assert_eq!(lai.ranges[0], Range::new(0, 1, 9));
        assert_eq!(lai.ranges[1], Range::index(2));
        assert_eq!(lai.ranges[2], Range::index(3));
        assert_eq!(c.projections[1].ranges[0], Range::new(0, 2, 9));
    }

    #[test]
    fn empty_means_all() {
        assert_eq!(Constraint::parse("").unwrap(), Constraint::all());
        assert_eq!(Constraint::parse("  ").unwrap(), Constraint::all());
    }

    #[test]
    fn whole_variable_projection() {
        let c = Constraint::parse("time").unwrap();
        assert_eq!(c.projections[0].variable, "time");
        assert!(c.projections[0].ranges.is_empty());
    }

    #[test]
    fn roundtrip_query_string() {
        for text in [
            "LAI[0:9][2][3]",
            "time[0:2:9]",
            "LAI[0:9][0:359][0:719],time",
        ] {
            let c = Constraint::parse(text).unwrap();
            let c2 = Constraint::parse(&c.to_query_string()).unwrap();
            assert_eq!(c, c2);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Constraint::parse("LAI[").is_err());
        assert!(Constraint::parse("LAI[a:b]").is_err());
        assert!(Constraint::parse("LAI[1:2:3:4]").is_err());
        assert!(Constraint::parse("[0:2]").is_err());
        assert!(Constraint::parse("LAI[5:3]").is_err()); // empty range
        assert!(Constraint::parse("a,,b").is_err());
    }
}
