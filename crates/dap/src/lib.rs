//! An OPeNDAP-like data access protocol.
//!
//! Reproduces the DAP machinery the App Lab architecture depends on
//! (Section 3.1 and Figure 1, right workflow):
//!
//! * [`dds`] — the Dataset Descriptor Structure (structure metadata);
//! * [`das`] — the Dataset Attribute Structure (attribute metadata);
//! * [`constraint`] — DAP constraint expressions (`LAI[0:10][5][5],time`);
//! * [`dods`] — the binary data response encoding;
//! * [`server`]/[`client`] — an in-process server and its client,
//!   connected through a [`transport`] that simulates WAN latency and
//!   bandwidth (this is what lets bench B1 reproduce the
//!   "two orders of magnitude" on-the-fly vs materialized gap);
//! * [`drs`] — the "DRS-validator" command-line tool of Section 3.1;
//! * [`ncml_service`] — the NcML service joining DAS + DDS in one document.
//!
//! Client requests emit `dap.request` spans, and the transports account
//! round trips, bytes and simulated latency as instance-labeled
//! `applab_dap_*` counters in the `applab-obs` global registry.
#![cfg_attr(
    not(test),
    warn(clippy::print_stdout, clippy::print_stderr, clippy::unwrap_used)
)]

pub mod chaos;
pub mod client;
pub mod clock;
pub mod constraint;
pub mod das;
pub mod dds;
pub mod dods;
pub mod drs;
pub mod ncml_service;
pub mod resilience;
pub mod server;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosTransport, DetRng};
pub use client::DapClient;
pub use constraint::Constraint;
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, ResilienceConfig, ResilienceState, RetryPolicy,
};
pub use server::DapServer;
pub use transport::{SimulatedWan, Transport};

/// Errors across the DAP stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DapError {
    /// The requested dataset is not in the server catalog.
    NoSuchDataset(String),
    /// The requested variable does not exist.
    NoSuchVariable(String),
    /// Bad constraint expression.
    Constraint(String),
    /// Malformed wire payload.
    Wire(String),
    /// The network failed mid-exchange: connection reset, request timeout,
    /// or a payload whose integrity checksum does not match. Transient —
    /// the [`resilience::RetryPolicy`] retries these.
    Transport(String),
    /// The response arrived shorter than the server sent it. Transient.
    Truncated {
        /// Bytes the server put on the wire.
        expected: usize,
        /// Bytes that actually arrived.
        delivered: usize,
    },
    /// The dataset could not be reached even after exhausting the retry
    /// budget, or its circuit breaker is open. Not retryable — callers
    /// should degrade (serve stale) or surface `unavailable`.
    Unavailable {
        /// Dataset whose data plane is down.
        dataset: String,
        /// Retries spent before giving up (0 when the breaker fast-failed).
        retries: u32,
    },
}

impl DapError {
    /// Whether a retry could plausibly succeed: wire-level faults are
    /// transient, server-side lookup/constraint errors are permanent.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DapError::Transport(_) | DapError::Truncated { .. } | DapError::Wire(_)
        )
    }
}

impl std::fmt::Display for DapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DapError::NoSuchDataset(d) => write!(f, "no such dataset: {d}"),
            DapError::NoSuchVariable(v) => write!(f, "no such variable: {v}"),
            DapError::Constraint(m) => write!(f, "bad constraint: {m}"),
            DapError::Wire(m) => write!(f, "wire format error: {m}"),
            DapError::Transport(m) => write!(f, "transport error: {m}"),
            DapError::Truncated {
                expected,
                delivered,
            } => write!(
                f,
                "truncated response: {delivered} of {expected} bytes delivered"
            ),
            DapError::Unavailable { dataset, retries } => {
                write!(f, "dataset {dataset} unavailable after {retries} retries")
            }
        }
    }
}

impl std::error::Error for DapError {}
