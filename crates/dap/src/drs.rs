//! The DRS validator.
//!
//! Section 3.1: "A command-line tool was built and published, entitled
//! 'DRS-validator', that validates a CSP's datasets exposed through the
//! OPeNDAP interface by checking for compliance with the Data Reference
//! Syntax (DRS) metadata."
//!
//! The Data Reference Syntax names a dataset with a fixed sequence of
//! facets. We use the CMIP/Copernicus-style facet chain
//! `<activity>.<product>.<variable>.<resolution>.<version>.<YYYY-MM-DD>`
//! (e.g. `cgls.land.lai.300m.v2.2017-06-15`) and additionally require the
//! dataset's attributes to agree with its facets.

use applab_array::{AttrValue, Dataset};

/// The parsed facets of a DRS identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrsId {
    pub activity: String,
    pub product: String,
    pub variable: String,
    pub resolution: String,
    pub version: String,
    /// `YYYY-MM-DD`
    pub date: String,
}

impl DrsId {
    pub fn to_id(&self) -> String {
        format!(
            "{}.{}.{}.{}.{}.{}",
            self.activity, self.product, self.variable, self.resolution, self.version, self.date
        )
    }
}

/// One compliance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The identifier does not have exactly six facets.
    BadFacetCount(usize),
    /// A facet is empty or has invalid characters.
    BadFacet { facet: &'static str, value: String },
    /// The version facet is not `v<digits>`.
    BadVersion(String),
    /// The date facet is not `YYYY-MM-DD`.
    BadDate(String),
    /// The dataset lacks the variable its id names.
    MissingVariable(String),
    /// A required attribute is missing.
    MissingAttribute(&'static str),
    /// An attribute disagrees with a facet.
    AttributeMismatch {
        attribute: &'static str,
        expected: String,
        actual: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::BadFacetCount(n) => write!(f, "expected 6 facets, found {n}"),
            Violation::BadFacet { facet, value } => write!(f, "bad {facet} facet {value:?}"),
            Violation::BadVersion(v) => write!(f, "bad version facet {v:?} (want v<digits>)"),
            Violation::BadDate(d) => write!(f, "bad date facet {d:?} (want YYYY-MM-DD)"),
            Violation::MissingVariable(v) => write!(f, "dataset lacks variable {v:?}"),
            Violation::MissingAttribute(a) => write!(f, "missing required attribute {a:?}"),
            Violation::AttributeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "attribute {attribute:?} is {actual:?}, id says {expected:?}"
            ),
        }
    }
}

/// Parse a DRS identifier, collecting violations instead of failing fast.
pub fn parse_id(id: &str) -> Result<DrsId, Vec<Violation>> {
    let parts: Vec<&str> = id.split('.').collect();
    if parts.len() != 6 {
        return Err(vec![Violation::BadFacetCount(parts.len())]);
    }
    let mut violations = Vec::new();
    let facet_ok = |v: &str| {
        !v.is_empty()
            && v.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
    };
    for (name, value) in [
        ("activity", parts[0]),
        ("product", parts[1]),
        ("variable", parts[2]),
        ("resolution", parts[3]),
    ] {
        if !facet_ok(value) {
            violations.push(Violation::BadFacet {
                facet: match name {
                    "activity" => "activity",
                    "product" => "product",
                    "variable" => "variable",
                    _ => "resolution",
                },
                value: value.to_string(),
            });
        }
    }
    let version = parts[4];
    if !(version.len() >= 2
        && version.starts_with('v')
        && version[1..].chars().all(|c| c.is_ascii_digit()))
    {
        violations.push(Violation::BadVersion(version.to_string()));
    }
    let date = parts[5];
    let date_ok = date.len() == 10
        && date.as_bytes()[4] == b'-'
        && date.as_bytes()[7] == b'-'
        && date.chars().enumerate().all(|(i, c)| {
            if i == 4 || i == 7 {
                c == '-'
            } else {
                c.is_ascii_digit()
            }
        })
        && date[5..7]
            .parse::<u32>()
            .is_ok_and(|m| (1..=12).contains(&m))
        && date[8..10]
            .parse::<u32>()
            .is_ok_and(|d| (1..=31).contains(&d));
    if !date_ok {
        violations.push(Violation::BadDate(date.to_string()));
    }
    if !violations.is_empty() {
        return Err(violations);
    }
    Ok(DrsId {
        activity: parts[0].into(),
        product: parts[1].into(),
        variable: parts[2].into(),
        resolution: parts[3].into(),
        version: parts[4].into(),
        date: parts[5].into(),
    })
}

/// Attributes a DRS-compliant dataset must carry.
pub const REQUIRED_ATTRIBUTES: &[&str] = &["title", "institution", "product_version"];

/// Validate a dataset against its DRS identifier.
pub fn validate(id: &str, ds: &Dataset) -> Vec<Violation> {
    let drs = match parse_id(id) {
        Ok(d) => d,
        Err(v) => return v,
    };
    let mut violations = Vec::new();
    // The named variable must exist (case-insensitively: LAI vs lai).
    if !ds
        .variables
        .iter()
        .any(|v| v.name.eq_ignore_ascii_case(&drs.variable))
    {
        violations.push(Violation::MissingVariable(drs.variable.clone()));
    }
    for attr in REQUIRED_ATTRIBUTES {
        if !ds.attributes.contains_key(*attr) {
            violations.push(Violation::MissingAttribute(attr));
        }
    }
    // product_version must agree with the version facet.
    if let Some(AttrValue::Text(actual)) = ds.attributes.get("product_version") {
        if actual != &drs.version {
            violations.push(Violation::AttributeMismatch {
                attribute: "product_version",
                expected: drs.version.clone(),
                actual: actual.clone(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use applab_array::{NdArray, Variable};

    fn compliant_dataset() -> Dataset {
        let mut ds = Dataset::new("cgls.land.lai.300m.v2.2017-06-15");
        ds.set_attr("title", "CGLS LAI 300m");
        ds.set_attr("institution", "VITO");
        ds.set_attr("product_version", "v2");
        ds.add_dim("time", 1);
        ds.add_variable(Variable::new(
            "LAI",
            vec!["time".into()],
            NdArray::zeros(vec![1]),
        ))
        .unwrap();
        ds
    }

    #[test]
    fn valid_id_parses() {
        let id = parse_id("cgls.land.lai.300m.v2.2017-06-15").unwrap();
        assert_eq!(id.variable, "lai");
        assert_eq!(id.to_id(), "cgls.land.lai.300m.v2.2017-06-15");
    }

    #[test]
    fn facet_count_enforced() {
        assert_eq!(
            parse_id("cgls.land.lai").unwrap_err(),
            vec![Violation::BadFacetCount(3)]
        );
    }

    #[test]
    fn bad_facets_reported_together() {
        let violations = parse_id("CGLS.land.lai.300m.2.2017-6-15").unwrap_err();
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::BadFacet {
                facet: "activity",
                ..
            }
        )));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::BadVersion(_))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::BadDate(_))));
    }

    #[test]
    fn compliant_dataset_passes() {
        let ds = compliant_dataset();
        assert!(validate("cgls.land.lai.300m.v2.2017-06-15", &ds).is_empty());
    }

    #[test]
    fn missing_variable_and_attrs_flagged() {
        let mut ds = compliant_dataset();
        ds.variables.clear();
        ds.attributes.remove("institution");
        let violations = validate("cgls.land.lai.300m.v2.2017-06-15", &ds);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::MissingVariable(_))));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::MissingAttribute("institution"))));
    }

    #[test]
    fn version_mismatch_flagged() {
        let mut ds = compliant_dataset();
        ds.set_attr("product_version", "v1");
        let violations = validate("cgls.land.lai.300m.v2.2017-06-15", &ds);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::AttributeMismatch {
                attribute: "product_version",
                ..
            }
        )));
    }

    #[test]
    fn violations_display() {
        for v in validate("x.y", &compliant_dataset()) {
            assert!(!v.to_string().is_empty());
        }
    }
}
